#!/usr/bin/env python3
"""Parallelism planner: find the MFU-optimal strategy for a model and cluster.

Reproduces the analysis behind Tables 2 and 5: given a model (Llama 3.1-405B
or the 1.1T GPT-MoE) and a GPU count, search TP/PP/DP/EP for the highest MFU,
and show how much is lost when TP is capped at 8 (a conventional 8-GPU-node
NVLink HBD).

Run with:  python examples/training_parallelism_planner.py --model llama --gpus 8192
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.training.models import gpt_moe_1t, llama31_405b
from repro.training.mfu import MFUSimulator
from repro.training.parallelism import search_optimal_strategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", choices=("llama", "moe"), default="llama")
    parser.add_argument("--gpus", type=int, default=8192)
    parser.add_argument("--global-batch", type=int, default=None)
    parser.add_argument("--imbalance", type=float, default=0.2,
                        help="expert imbalance coefficient for MoE EP configs")
    args = parser.parse_args()

    if args.model == "llama":
        model = llama31_405b()
        global_batch = args.global_batch or 2048
        ep_choices = (1,)
    else:
        model = gpt_moe_1t()
        global_batch = args.global_batch or 1536
        ep_choices = (1, 2, 4, 8)

    simulator = MFUSimulator()
    print(f"Model: {model.name}  ({model.total_params / 1e9:.0f}B parameters, "
          f"{model.activated_params / 1e9:.0f}B activated)")
    print(f"Cluster: {args.gpus} GPUs, global batch {global_batch}\n")

    best = search_optimal_strategy(
        model, args.gpus, global_batch, simulator=simulator,
        ep_choices=ep_choices, expert_imbalance_coef=args.imbalance,
    )
    capped = search_optimal_strategy(
        model, args.gpus, global_batch, simulator=simulator,
        ep_choices=ep_choices, expert_imbalance_coef=args.imbalance, max_tp=8,
    )

    for label, result in (("Unconstrained TP (InfiniteHBD)", best),
                          ("TP capped at 8 (8-GPU NVLink HBD)", capped)):
        config = result.best_config
        estimate = result.best_estimate
        if config is None:
            print(f"{label}: no feasible configuration found")
            continue
        print(f"{label}:")
        print(f"  TP={config.tp}  PP={config.pp}  DP={config.dp}  EP={config.ep}")
        print(f"  MFU            : {estimate.mfu:.4f}")
        print(f"  iteration time : {estimate.iteration_time_s:.2f} s")
        print(f"  pipeline bubble: {estimate.bubble_fraction:.1%}")
        print(f"  TP comm (exposed): {estimate.tp_comm_time_s:.2f} s")
        print(f"  HBM per GPU    : {estimate.memory_gib_per_gpu:.1f} GiB")
        print()

    if capped.mfu > 0:
        print(f"MFU improvement from a large HBD: {best.mfu / capped.mfu:.2f}x")


if __name__ == "__main__":
    main()
