#!/usr/bin/env python3
"""Blast-radius study: packed vs spread placement under correlated failures.

The independent fault generator can never distinguish placement policies by
blast radius -- every fault takes out one node.  This study layers the
correlated overlay (:mod:`repro.faults.correlated`) on the trace: whole
failure domains go down together, arriving in bursts, so how a scheduler
*places* jobs across domains starts to matter.  The ``blast_radius``
experiment sweeps placement x correlation level x architecture and reports,
per cell, how many running jobs each fault transition descheduled
(``mean_blast_radius`` / ``max_blast_radius``) next to the usual
goodput/JCT metrics.

The spec lives in ``examples/blast_radius_spec.json`` -- the exact file
``python -m repro.cli run --spec examples/blast_radius_spec.json`` consumes;
this script runs it through the API, prints the study table, and finishes
with a calibration round-trip (fit the generator to its own output).

Run with:  python examples/blast_radius_study.py [--days 60] [--workers N]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, ExperimentSpec
from repro.faults.calibrate import fit_correlated_config
from repro.faults.correlated import CorrelatedFaultConfig, generate_correlated_trace
from repro.faults.synthetic import SyntheticTraceConfig

SPEC_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "blast_radius_spec.json")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=None,
                        help="override the spec's trace duration (days)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: one per CPU)")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1. Load the declarative study and run it.
    # ------------------------------------------------------------------
    with open(SPEC_PATH) as handle:
        spec_data = json.load(handle)
    if args.days is not None:
        spec_data["scenario"]["trace"]["days"] = args.days
    spec = ExperimentSpec.from_dict(spec_data)
    print(f"spec: {SPEC_PATH}")
    print(f"spec sha256: {spec.digest()[:16]}...\n")

    results = ExperimentRunner(spec, max_workers=args.workers).run()

    # ------------------------------------------------------------------
    # 2. The study table: placement x correlation per architecture.
    # ------------------------------------------------------------------
    print(f"{'architecture':18s} {'placement':9s} {'corr':>5s} {'events':>7s} "
          f"{'killed':>7s} {'max':>4s} {'mean':>6s} {'goodput':>8s}")
    for r in results.filter(experiment="blast_radius"):
        print(
            f"{r.architecture:18s} {r.metric('placement'):9s} "
            f"{r.metric('correlation'):5.2f} {r.metric('fault_events'):7d} "
            f"{r.metric('jobs_killed'):7d} {r.metric('max_blast_radius'):4d} "
            f"{r.metric('mean_blast_radius'):6.2f} "
            f"{r.metric('cluster_goodput'):8.4f}"
        )

    # ------------------------------------------------------------------
    # 3. Calibration round-trip: fit the generator to its own output.
    # ------------------------------------------------------------------
    trace_spec = spec.scenario.trace
    truth = CorrelatedFaultConfig(
        base=SyntheticTraceConfig(
            n_nodes=trace_spec.source_nodes,
            duration_days=trace_spec.days,
            seed=trace_spec.seed,
        ),
        correlation=1.0,
        domain_size=trace_spec.correlated.domain_size,
        domain_rate_per_day=trace_spec.correlated.domain_rate_per_day,
    )
    fit = fit_correlated_config(
        generate_correlated_trace(truth), domain_size=truth.domain_size
    )
    print("\ncalibration round-trip (correlation=1 ground truth):")
    for line in fit.report():
        print("  " + line)


if __name__ == "__main__":
    main()
