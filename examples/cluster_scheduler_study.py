#!/usr/bin/env python3
"""Cluster scheduler study: policies x architectures on one job queue.

The capacity metrics of section 6.2 say how many GPUs an architecture keeps
usable under faults; this study asks what that capacity is *worth* to a
queue of competing jobs.  One synthetic workload (Poisson arrivals,
heavy-tailed sizes and durations) is replayed:

1. across the scheduling policy zoo (FIFO, smallest-job-first,
   shortest-remaining-work, each with and without preemption) on a single
   architecture, showing the classic JCT/makespan trade-offs; then
2. across capacity models on the same architecture: the expected-value
   replay versus node-level placement (packed / spread), with and without
   EASY backfill -- placed fault hits are deterministic per seed, and the
   finish-time-fairness columns (mean rho, Jain's index) show what backfill
   buys the small jobs; then
3. across HBD architectures under one policy, via the declarative
   ``schedule`` experiment of :mod:`repro.api` -- fragmentation-prone
   architectures lose cluster goodput and stretch the queue.

Run with:  python examples/cluster_scheduler_study.py [--days 45] [--jobs 120]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import (
    ExperimentRunner,
    ExperimentSpec,
    Scenario,
    SchedulerSpec,
    TraceSpec,
    WorkloadSpec,
    default_architecture_specs,
)
from repro.hbd import InfiniteHBDArchitecture
from repro.scheduler import ClusterScheduler, WorkloadConfig, generate_workload, policy_by_name


def policy_zoo(trace_spec: TraceSpec, n_nodes: int, jobs, tp_size: int) -> None:
    print("=" * 72)
    print(f"1. Scheduling policies on InfiniteHBD(K=3), {len(jobs)} jobs")
    print("=" * 72)
    timeline = trace_spec.build().interval_timeline(n_nodes)
    architecture = InfiniteHBDArchitecture(k=3, gpus_per_node=4)
    header = f"{'policy':24s} {'makespan':>9s} {'mean JCT':>9s} {'p99 JCT':>9s} {'queue':>7s} {'preempt':>8s}"
    print(header)
    for name in ("fifo", "smallest-first", "shortest-remaining"):
        for preemptive in (False, True):
            report = ClusterScheduler(
                architecture,
                timeline,
                jobs,
                policy=policy_by_name(name, preemptive),
            ).run()
            label = f"{name}{' (preempt)' if preemptive else ''}"
            preemptions = sum(job.preemptions for job in report.jobs)
            print(
                f"{label:24s} {report.makespan_hours:9.1f} "
                f"{report.mean_jct_hours:9.2f} {report.p99_jct_hours:9.2f} "
                f"{report.mean_queueing_delay_hours:7.2f} {preemptions:8d}"
            )


def placement_study(trace_spec: TraceSpec, n_nodes: int, jobs, tp_size: int) -> None:
    print()
    print("=" * 72)
    print("2. Capacity models on InfiniteHBD(K=3): expected-value vs placed")
    print("=" * 72)
    timeline = trace_spec.build().interval_timeline(n_nodes)
    architecture = InfiniteHBDArchitecture(k=3, gpus_per_node=4)
    print(
        f"{'mode':28s} {'makespan':>9s} {'mean JCT':>9s} {'queue':>7s} "
        f"{'hits':>7s} {'rho':>6s} {'Jain':>6s}"
    )
    for placement in (None, "packed", "spread"):
        for backfill in (False, True):
            report = ClusterScheduler(
                architecture, timeline, jobs,
                placement=placement, backfill=backfill,
            ).run()
            label = (placement or "expected-value") + (" +backfill" if backfill else "")
            hits = sum(job.impacting_faults for job in report.jobs)
            print(
                f"{label:28s} {report.makespan_hours:9.1f} "
                f"{report.mean_jct_hours:9.2f} "
                f"{report.mean_queueing_delay_hours:7.2f} {hits:7.2f} "
                f"{report.mean_finish_time_fairness:6.2f} "
                f"{report.jain_fairness_index:6.3f}"
            )


def architecture_sweep(args: argparse.Namespace) -> None:
    print()
    print("=" * 72)
    print("3. Architectures under preemptive smallest-first (repro.api)")
    print("=" * 72)
    spec = ExperimentSpec.of(
        scenario=Scenario(
            name="scheduler-study",
            trace=TraceSpec(days=args.days, seed=args.seed, gpus_per_node=4),
            architectures=default_architecture_specs(),
            tp_sizes=(args.tp,),
            n_nodes=args.nodes,
            seed=args.seed,
            workload=WorkloadSpec(
                n_jobs=args.jobs,
                seed=args.seed,
                mean_interarrival_hours=args.mean_interarrival,
                median_work_hours=8.0,
            ),
            scheduler=SchedulerSpec(policy="smallest-first", preemptive=True),
        ),
        experiments=("schedule",),
        max_workers=args.workers,
    )
    results = ExperimentRunner(spec).run()
    print(f"{'architecture':20s} {'makespan':>9s} {'mean JCT':>9s} {'queue':>7s} {'goodput':>8s}")
    for result in results:
        print(
            f"{result.architecture:20s} {result.metric('makespan_hours'):9.1f} "
            f"{result.metric('mean_jct_hours'):9.2f} "
            f"{result.metric('mean_queueing_delay_hours'):7.2f} "
            f"{result.metric('cluster_goodput'):8.4f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=45, help="trace duration in days")
    parser.add_argument("--jobs", type=int, default=120, help="jobs in the queue")
    parser.add_argument("--nodes", type=int, default=288)
    parser.add_argument("--tp", type=int, default=32)
    parser.add_argument("--seed", type=int, default=348)
    parser.add_argument("--mean-interarrival", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args()

    trace_spec = TraceSpec(days=args.days, seed=args.seed, gpus_per_node=4)
    jobs = generate_workload(
        WorkloadConfig(
            n_jobs=args.jobs,
            seed=args.seed,
            tp_size=args.tp,
            max_gpus=args.nodes * 4 // 2 // args.tp * args.tp,
            mean_interarrival_hours=args.mean_interarrival,
            median_work_hours=8.0,
        )
    )
    policy_zoo(trace_spec, args.nodes, jobs, args.tp)
    placement_study(trace_spec, args.nodes, jobs, args.tp)
    architecture_sweep(args)


if __name__ == "__main__":
    main()
