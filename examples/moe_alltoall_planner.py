#!/usr/bin/env python3
"""MoE on InfiniteHBD: planning TP x EP with the power-of-two wiring.

Appendix G of the paper describes how re-wiring the backup links to
``n +- 2^i`` lets InfiniteHBD run Expert Parallelism's AllToAll with the
Binary Exchange algorithm.  This example plans a TP x EP layout on that
wiring, prints the per-round exchange schedule, and estimates the AllToAll
time versus the plain ring relay.

Run with:  python examples/moe_alltoall_planner.py --tp 16 --ep 4
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.collectives.alltoall import binary_exchange_cost, ring_alltoall_cost
from repro.collectives.cost_model import INFINITEHBD_GPU_LINK
from repro.core.alltoall_topology import AllToAllTopologyConfig, PowerOfTwoTopology
from repro.training.comm import ep_alltoall_volume_per_layer
from repro.training.models import gpt_moe_1t


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--gpus-per-node", type=int, default=8)
    parser.add_argument("--bundles", type=int, default=8)
    parser.add_argument("--tp", type=int, default=16)
    parser.add_argument("--ep", type=int, default=4)
    args = parser.parse_args()

    topology = PowerOfTwoTopology(
        AllToAllTopologyConfig(
            n_nodes=args.nodes,
            n_bundles=args.bundles,
            gpus_per_node=args.gpus_per_node,
        )
    )
    print(f"Topology: {topology} (direct link distances {topology.link_distances()})")
    print(
        f"2-D parallelism limit: TP x EP <= {topology.config.max_group_product} GPUs\n"
    )

    plan = topology.plan_tp_ep(start=0, tp_size=args.tp, ep_size=args.ep)
    print(f"TP-{args.tp} x EP-{args.ep} layout starting at node 0:")
    for lead, span in plan["tp_spans"].items():
        print(f"  EP member led by node {lead}: TP group on nodes {span}")
    for round_index, pairs in enumerate(plan["exchange_schedule"], start=1):
        print(f"  Binary Exchange round {round_index}: {pairs}")

    # ------------------------------------------------------- per-layer timing
    model = gpt_moe_1t()
    block_bytes = ep_alltoall_volume_per_layer(
        batch=1, seq_len=model.seq_len, hidden_dim=model.hidden_dim,
        ep=args.ep, top_k=model.moe_top_k,
    ) / max(1, args.ep - 1)
    ring = ring_alltoall_cost(args.ep, block_bytes, INFINITEHBD_GPU_LINK)
    bex = binary_exchange_cost(args.ep, block_bytes, INFINITEHBD_GPU_LINK)
    print(
        f"\nPer-MoE-layer AllToAll estimate for {model.name} "
        f"(EP-{args.ep}, top-{model.moe_top_k}):"
    )
    print(f"  ring relay        : {ring.time_s * 1e3:.3f} ms")
    print(f"  binary exchange   : {bex.time_s * 1e3:.3f} ms "
          f"({ring.time_s / bex.time_s:.1f}x faster)")


if __name__ == "__main__":
    main()
