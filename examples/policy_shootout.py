#!/usr/bin/env python3
"""Policy shootout: six scheduling policies on one contended cluster.

Replays a single heavy-tailed job queue (lognormal sizes and durations,
offered load near capacity) against a fault trace under every policy in
the registry:

* ``fifo``, ``smallest-first``, ``shortest-remaining`` -- the classic
  non-preemptive queue orders;
* ``gittins`` -- Tiresias-style discretized attained-service queues with
  preemption: jobs demote as they accumulate GPU-hours, so short jobs
  escape quickly without knowing durations in advance;
* ``lookahead`` -- Horus-style k-job look-ahead admission that scores
  queued jobs by how well they fill the free capacity;
* ``optimizer`` -- AdaptDL-style global re-allocation that re-solves a
  small assignment LP at each interval boundary, charging migrations as
  preemptions.

Under heavy-tailed durations the attained-service and re-allocation
policies cut mean JCT dramatically versus FIFO's head-of-line blocking;
the preemption column shows what they pay for it in restarts.

Run with:  python examples/policy_shootout.py [--days 45] [--jobs 300]
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import NVLHBD
from repro.scheduler import ClusterScheduler, WorkloadConfig, generate_workload
from repro.scheduler.policies import POLICY_NAMES, policy_by_name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=45, help="trace duration in days")
    parser.add_argument("--jobs", type=int, default=300, help="jobs in the queue")
    parser.add_argument("--nodes", type=int, default=1250)
    parser.add_argument("--tp", type=int, default=32)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    trace = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=args.nodes, duration_days=args.days, seed=90)
    )
    timeline = trace.interval_timeline()
    architecture = NVLHBD(72, gpus_per_node=8)
    jobs = generate_workload(
        WorkloadConfig(
            n_jobs=args.jobs,
            seed=args.seed,
            tp_size=args.tp,
            max_gpus=args.nodes * 8 // 4 // args.tp * args.tp,
            mean_interarrival_hours=0.5,
            median_tp_groups=4.0,
            sigma_tp_groups=1.2,
            median_work_hours=16.0,
            sigma_work_hours=1.2,
        )
    )

    print("=" * 78)
    print(f"Policy shootout: NVL-72, {args.nodes} nodes, {len(jobs)} heavy-tailed jobs")
    print("=" * 78)
    print(
        f"{'policy':20s} {'preempt':>7s} {'mean JCT':>9s} {'p99 JCT':>9s} "
        f"{'queue':>7s} {'goodput':>8s} {'rho':>6s} {'Jain':>6s} {'evict':>6s} {'sec':>6s}"
    )
    for name in POLICY_NAMES:
        start = time.perf_counter()
        report = ClusterScheduler(
            architecture, timeline, jobs, policy=policy_by_name(name)
        ).run()
        seconds = time.perf_counter() - start
        preemptions = sum(job.preemptions for job in report.jobs)
        print(
            f"{name:20s} {'yes' if report.preemptive else 'no':>7s} "
            f"{report.mean_jct_hours:9.2f} {report.p99_jct_hours:9.2f} "
            f"{report.mean_queueing_delay_hours:7.2f} {report.cluster_goodput:8.4f} "
            f"{report.mean_finish_time_fairness:6.2f} "
            f"{report.jain_fairness_index:6.3f} {preemptions:6d} {seconds:6.2f}"
        )


if __name__ == "__main__":
    main()
