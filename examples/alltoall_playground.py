#!/usr/bin/env python3
"""AllToAll on InfiniteHBD: ring relay vs the Binary Exchange algorithm.

Appendix G of the paper shows that rewiring InfiniteHBD's backup links to
distances +-2^i and using the OCSTrx Fast Switch mechanism enables the Binary
Exchange AllToAll at O(p log p) instead of the ring's O(p^2).  This example
runs the functional algorithm on real payloads (verifying the transpose) and
compares the modelled completion times.

Run with:  python examples/alltoall_playground.py [--block-mib 4]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.collectives.alltoall import (
    binary_exchange_alltoall,
    binary_exchange_cost,
    bruck_cost,
    ring_alltoall_cost,
)
from repro.collectives.cost_model import INFINITEHBD_GPU_LINK


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--block-mib", type=float, default=4.0,
                        help="per-destination block size in MiB")
    args = parser.parse_args()
    block_bytes = args.block_mib * (1 << 20)

    # ---------------------------------------------------------------- data
    p = 8
    payloads = [[f"expert-tokens[{src}->{dst}]" for dst in range(p)] for src in range(p)]
    received = binary_exchange_alltoall(payloads)
    print(f"Binary Exchange over {p} nodes finished in log2({p}) = 3 rounds.")
    print(f"Node 5 now holds: {received[5]}\n")

    # ---------------------------------------------------------------- cost
    print(f"{'p':>4s} {'ring (ms)':>12s} {'binary exch (ms)':>18s} {'speedup':>9s} {'vs Bruck':>9s}")
    for group in (4, 8, 16, 32, 64, 128):
        ring = ring_alltoall_cost(group, block_bytes, INFINITEHBD_GPU_LINK)
        bex = binary_exchange_cost(group, block_bytes, INFINITEHBD_GPU_LINK)
        bruck = bruck_cost(group, block_bytes, INFINITEHBD_GPU_LINK)
        print(
            f"{group:4d} {ring.time_s * 1e3:12.2f} {bex.time_s * 1e3:18.2f} "
            f"{ring.time_s / bex.time_s:8.1f}x {bex.time_s / bruck.time_s:8.2f}x"
        )

    print(
        "\nThe 60-80 us OCSTrx reconfiguration per round is overlapped with "
        "computation, so Binary Exchange tracks the ideal Bruck volume while "
        "needing neither a full mesh nor node-level loopback."
    )


if __name__ == "__main__":
    main()
