#!/usr/bin/env python3
"""Fault-resilience study: replay a production-style fault trace (section 6.2).

Declares the study through the Unified Experiment API: a 348-day synthetic
trace calibrated to the paper's Appendix A statistics, converted to 4-GPU
nodes and replayed on a 2,880-GPU cluster for every HBD architecture.  The
waste, max-job-scale and fault-waiting experiments run through the parallel
:class:`~repro.api.ExperimentRunner` off one shared fault timeline.

Run with:  python examples/fault_resilience_study.py [--days 120] [--tp 32]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, ExperimentSpec, Scenario, TraceSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=348, help="trace duration in days")
    parser.add_argument("--tp", type=int, default=32, help="TP group size in GPUs")
    parser.add_argument("--nodes", type=int, default=720, help="4-GPU nodes simulated")
    parser.add_argument("--job-gpus", type=int, default=2560,
                        help="job scale for the fault-waiting metric")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: one per CPU)")
    args = parser.parse_args()

    spec = ExperimentSpec.of(
        scenario=Scenario.default(
            "fault-resilience",
            trace=TraceSpec(days=args.days, seed=348, gpus_per_node=4),
            tp_sizes=(args.tp,),
            n_nodes=args.nodes,
            job_gpus=args.job_gpus,
        ),
        experiments=("waste", "max_job_scale", "fault_waiting"),
    )

    trace = spec.scenario.trace.build()
    stats = trace.statistics()
    print(f"Replaying a {args.days}-day synthetic trace (Appendix A statistics) ...")
    print(
        f"  mean faulty-node ratio {stats.mean_fault_ratio:.2%}, "
        f"p99 {stats.p99_fault_ratio:.2%}, {stats.n_events} events, "
        f"{trace.n_nodes} 4-GPU nodes\n"
    )

    results = ExperimentRunner(spec, max_workers=args.workers).run()

    header = (
        f"{'Architecture':18s} {'mean waste':>11s} {'p99 waste':>10s} "
        f"{'max job (GPUs)':>15s} {'waiting@' + str(args.job_gpus):>13s}"
    )
    print(header)
    print("-" * len(header))
    for arch in results.architectures():
        waste = results.filter("waste", arch, args.tp)[0]
        scale = results.filter("max_job_scale", arch, args.tp)[0]
        waiting = results.filter("fault_waiting", arch, args.tp)[0]
        print(
            f"{arch:18s} {waste.metric('mean_waste_ratio'):10.2%} "
            f"{waste.metric('p99_waste_ratio'):10.2%} "
            f"{scale.metric('max_job_scale'):15d} "
            f"{waiting.metric('fault_waiting_rate'):12.2%}"
        )

    print(
        "\nInfiniteHBD (K=3) tracks the Big-Switch ideal: faults are isolated at "
        "the node level and the only loss is the cluster-wide TP remainder."
    )


if __name__ == "__main__":
    main()
