#!/usr/bin/env python3
"""Fault-resilience study: replay a production-style fault trace (section 6.2).

Generates a 348-day synthetic fault trace calibrated to the paper's Appendix A
statistics, converts it to 4-GPU nodes, and replays it on a 2,880-GPU cluster
for every HBD architecture, reporting the mean GPU waste ratio, the maximum
job scale, and the fault-waiting rate of a near-full-cluster job.

Run with:  python examples/fault_resilience_study.py [--days 120] [--tp 32]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import default_architectures
from repro.simulation.cluster import ClusterSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=348, help="trace duration in days")
    parser.add_argument("--tp", type=int, default=32, help="TP group size in GPUs")
    parser.add_argument("--nodes", type=int, default=720, help="4-GPU nodes simulated")
    parser.add_argument("--job-gpus", type=int, default=2560,
                        help="job scale for the fault-waiting metric")
    args = parser.parse_args()

    print(f"Generating a {args.days}-day synthetic trace (Appendix A statistics) ...")
    trace8 = generate_synthetic_trace(
        SyntheticTraceConfig(duration_days=args.days, seed=348)
    )
    stats = trace8.statistics()
    print(
        f"  mean faulty-node ratio {stats.mean_fault_ratio:.2%}, "
        f"p99 {stats.p99_fault_ratio:.2%}, {stats.n_events} events"
    )
    trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=348)
    print(f"  converted to {trace4.n_nodes} 4-GPU nodes\n")

    header = (
        f"{'Architecture':18s} {'mean waste':>11s} {'p99 waste':>10s} "
        f"{'max job (GPUs)':>15s} {'waiting@' + str(args.job_gpus):>13s}"
    )
    print(header)
    print("-" * len(header))
    for arch in default_architectures(4):
        series = ClusterSimulator(arch, trace4, n_nodes=args.nodes).run(args.tp)
        print(
            f"{arch.name:18s} {series.mean_waste_ratio:10.2%} "
            f"{series.p99_waste_ratio:10.2%} "
            f"{series.supported_job_scale():15d} "
            f"{series.fault_waiting_rate(args.job_gpus):12.2%}"
        )

    print(
        "\nInfiniteHBD (K=3) tracks the Big-Switch ideal: faults are isolated at "
        "the node level and the only loss is the cluster-wide TP remainder."
    )


if __name__ == "__main__":
    main()
