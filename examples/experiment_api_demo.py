#!/usr/bin/env python3
"""Unified Experiment API demo: spec files, the plugin registry, the runner.

This walks the three pieces of :mod:`repro.api` end to end:

1. register a *custom* HBD architecture ("dual-rail", an NVL-144 variant)
   into the plugin registry -- no core module is edited;
2. declare a scenario as a plain JSON-able spec (trace, line-up including
   the custom architecture, TP sizes) and write it to disk, exactly the file
   ``python -m repro.cli run --spec`` consumes;
3. execute the spec with the parallel :class:`~repro.api.ExperimentRunner`
   and round-trip the serializable results.

Run with:  python examples/experiment_api_demo.py [--days 60] [--workers N]
"""

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import (
    REGISTRY,
    ExperimentRunner,
    ExperimentSpec,
    ResultSet,
)
from repro.hbd import NVLHBD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=60, help="trace duration in days")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: one per CPU)")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1. Plug a custom architecture into the registry by name.
    # ------------------------------------------------------------------
    @REGISTRY.register("dual-rail", defaults={"hbd_size": 144}, override=True,
                       description="two NVL-72 rails fused into one 144-GPU unit")
    def _dual_rail(gpus_per_node=4, hbd_size=144):
        return NVLHBD(hbd_size, gpus_per_node=gpus_per_node)

    print("registered 'dual-rail'; registry now knows:")
    print(" ", ", ".join(sorted(n for n in REGISTRY.names())), "\n")

    # ------------------------------------------------------------------
    # 2. Declare the experiment as data and write the spec file.
    # ------------------------------------------------------------------
    spec_data = {
        "scenario": {
            "name": "api-demo",
            "trace": {"days": args.days, "seed": 348, "gpus_per_node": 4},
            "architectures": [
                "InfiniteHBD(K=3)",
                "NVL-72",
                "dual-rail",               # the custom plugin, by name
                {"name": "infinitehbd", "params": {"k": 4}},  # parameterized
            ],
            "tp_sizes": [16, 32],
            "n_nodes": 288,
            "job_gpus": 1024,
        },
        "experiments": ["waste", "goodput"],
    }
    spec = ExperimentSpec.from_dict(spec_data)
    spec_path = os.path.join(tempfile.gettempdir(), "infinitehbd_demo_spec.json")
    with open(spec_path, "w") as handle:
        handle.write(spec.to_json())
    print(f"spec written to {spec_path} (sha256 {spec.digest()[:12]})")
    print(f"  equivalent CLI: python -m repro.cli run --spec {spec_path}\n")

    # ------------------------------------------------------------------
    # 3. Run it and round-trip the results.
    # ------------------------------------------------------------------
    results = ExperimentRunner(spec, max_workers=args.workers).run()

    print(f"{'architecture':18s} {'TP':>4s} {'mean waste':>11s} {'goodput':>8s}")
    for arch in results.architectures():
        for tp in spec.scenario.tp_sizes:
            waste = results.filter("waste", arch, tp)[0]
            goodput = results.filter("goodput", arch, tp)[0]
            print(
                f"{arch:18s} {tp:4d} {waste.metric('mean_waste_ratio'):10.2%} "
                f"{goodput.metric('goodput'):8.4f}"
            )

    restored = ResultSet.from_json(results.to_json())
    assert restored == results
    print(
        f"\n{len(results)} results round-tripped through JSON; every record "
        f"carries provenance (seed={results[0].provenance.seed}, "
        f"spec {results[0].provenance.spec_sha256[:12]})."
    )


if __name__ == "__main__":
    main()
