#!/usr/bin/env python3
"""Control-plane demo: the cluster manager healing rings around failures.

Section 5.2 of the paper describes a two-level control plane: a node fabric
manager that programs each node's OCSTrx modules, and a cluster manager that
coordinates global reconfiguration.  This example allocates TP-32 rings on a
small InfiniteHBD, injects node failures, and shows how the rings heal over
backup links (node-level fault isolation) until the K-hop reach is exhausted.

Run with:  python examples/control_plane_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.control.cluster_manager import ClusterManager, RingState
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace


def show_rings(manager: ClusterManager) -> None:
    for ring in manager.rings.values():
        print(
            f"  ring {ring.ring_id}: state={ring.state.value:9s} "
            f"nodes={ring.node_ids}"
        )


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Allocate TP-32 rings on a 32-node (128-GPU) InfiniteHBD, K = 2.
    # ------------------------------------------------------------------
    manager = ClusterManager(n_nodes=32, k=2, gpus_per_node=4)
    rings = manager.allocate_rings(tp_size=32)
    print(f"Allocated {len(rings)} TP-32 rings (8 nodes each):")
    show_rings(manager)

    # ------------------------------------------------------------------
    # 2. Fail a mid-ring node: the neighbours switch to backup paths.
    # ------------------------------------------------------------------
    victim = rings[0].node_ids[3]
    print(f"\nFailing node {victim} (middle of ring 0) ...")
    latency = manager.handle_fault(victim, time_hours=1.0)
    print(f"  bypass completed in {latency:.0f} us of OCSTrx switching")
    show_rings(manager)

    # ------------------------------------------------------------------
    # 3. Fail its new neighbour too: K = 2 cannot bridge a 3-hop gap.
    # ------------------------------------------------------------------
    second = rings[0].node_ids[3]
    print(f"\nFailing node {second} as well ...")
    manager.handle_fault(second, time_hours=2.0)
    show_rings(manager)
    broken = [r for r in manager.rings.values() if r.state is RingState.BROKEN]
    print(f"  rings broken: {len(broken)} (a K=3 deployment would have survived)")

    # ------------------------------------------------------------------
    # 4. Replay a synthetic fault trace and summarise control-plane work.
    # ------------------------------------------------------------------
    print("\nReplaying a 90-day synthetic fault trace on a fresh 64-node cluster ...")
    trace = convert_trace_8gpu_to_4gpu(
        generate_synthetic_trace(SyntheticTraceConfig(n_nodes=40, duration_days=90, seed=7)),
        seed=7,
    )
    for k in (2, 3):
        summary = ClusterManager(n_nodes=64, k=k).replay_trace(trace, tp_size=32)
        print(
            f"  K={k}: {summary.fault_events} faults, "
            f"{summary.bypass_reconfigurations} bypasses, "
            f"{summary.broken_rings} broken rings, "
            f"mean ring availability {summary.mean_ring_availability:.1%}, "
            f"total switching time {summary.total_switch_time_us / 1e3:.1f} ms"
        )


if __name__ == "__main__":
    main()
