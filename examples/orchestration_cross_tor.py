#!/usr/bin/env python3
"""HBD-DCN orchestration demo: minimising cross-ToR traffic (section 6.4).

Places a TP-32 job covering 85% of an 8,192-GPU InfiniteHBD cluster under a
configurable node fault ratio, using both the greedy baseline and the
binary-search Fat-Tree orchestration algorithm, and reports the cross-ToR
traffic rate of each placement.

Run with:  python examples/orchestration_cross_tor.py [--fault-ratio 0.05]
"""

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.orchestrator import JobSpec, Orchestrator
from repro.dcn.fattree import FatTreeConfig
from repro.faults.model import sample_fault_set


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=8192)
    parser.add_argument("--tp", type=int, default=32)
    parser.add_argument("--job-scale-ratio", type=float, default=0.85)
    parser.add_argument("--fault-ratio", type=float, default=0.05)
    parser.add_argument("--nodes-per-tor", type=int, default=4)
    parser.add_argument("--tors-per-domain", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    gpus_per_node = 4
    n_nodes = args.gpus // gpus_per_node
    orchestrator = Orchestrator(
        n_nodes=n_nodes,
        k=2,
        fat_tree_config=FatTreeConfig(
            n_nodes=n_nodes,
            nodes_per_tor=args.nodes_per_tor,
            tors_per_domain=args.tors_per_domain,
        ),
    )
    job_gpus = int(args.job_scale_ratio * args.gpus) // args.tp * args.tp
    job = JobSpec(total_gpus=job_gpus, tp_size=args.tp, gpus_per_node=gpus_per_node)
    faults = sample_fault_set(n_nodes, args.fault_ratio, np.random.default_rng(args.seed))

    print(
        f"Cluster: {args.gpus} GPUs ({n_nodes} nodes), Fat-Tree with "
        f"{args.nodes_per_tor} nodes/ToR and {args.tors_per_domain} ToRs/domain"
    )
    print(
        f"Job: {job_gpus} GPUs as {job.groups_needed} TP-{args.tp} groups; "
        f"{len(faults)} faulty nodes ({args.fault_ratio:.0%})\n"
    )

    for method in ("greedy", "optimized"):
        result, report = orchestrator.place_and_report(
            job, faults, method=method, seed=args.seed
        )
        print(
            f"{method:10s}  satisfied={str(result.satisfied):5s}  "
            f"constraints={result.constraints_used:3d}  "
            f"groups placed={result.placed_groups:4d}  "
            f"cross-ToR traffic={report.cross_tor_rate:.2%}  "
            f"(misaligned first-tier edges: {report.tier1_cross_fraction:.1%})"
        )

    print(
        "\nThe optimized algorithm confines TP groups to aggregation domains and "
        "aligns outer-parallel sets with ToRs, so almost all DP/CP traffic stays "
        "under its ToR switch."
    )


if __name__ == "__main__":
    main()
