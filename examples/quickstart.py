#!/usr/bin/env python3
"""Quickstart: build an InfiniteHBD, fail a node, and watch it reconfigure.

This walks through the core objects of the library:

1. an OCSTrx-equipped GPU node and the reconfigurable K-Hop Ring topology,
2. dynamic GPU-ring construction with the intra-node loopback mechanism,
3. node-level fault isolation via the backup links,
4. the GPU-waste comparison against a switch-centric NVL-72 domain.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.node import make_nodes
from repro.core.ring_builder import RingBuilder
from repro.hbd import architecture_by_name


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small InfiniteHBD: 16 nodes x 4 GPUs, K = 2 hops.
    # ------------------------------------------------------------------
    n_nodes, gpus_per_node, k = 16, 4, 2
    topology = KHopRingTopology(
        KHopTopologyConfig(n_nodes=n_nodes, k=k, gpus_per_node=gpus_per_node)
    )
    nodes = make_nodes(n_nodes, n_gpus=gpus_per_node, n_bundles=k)
    builder = RingBuilder(topology, nodes)

    print(f"Topology: {topology}")
    print(f"Node 0 reaches nodes {topology.neighbors(0)} through its OCSTrx paths\n")

    # ------------------------------------------------------------------
    # 2. Build a TP-32 GPU ring (8 nodes) using the loopback mechanism.
    # ------------------------------------------------------------------
    ring = builder.build_ring(list(range(8)))
    print(f"Built a {ring.size}-GPU ring over nodes {ring.node_order}")
    print(f"  reconfiguration latency: {ring.reconfiguration_latency_us:.0f} us")
    print(f"  per-hop ring bandwidth : {ring.bandwidth_gbps:.0f} Gbps")
    print(f"  first GPUs on the ring : {ring.gpu_order[:6]} ...\n")

    # ------------------------------------------------------------------
    # 3. Fail a node: the neighbours bypass it over their backup links.
    # ------------------------------------------------------------------
    nodes[3].fail()
    print("Node 3 failed; rebuilding the same-size ring around it ...")
    healed = builder.build_ring_bypassing_faults(start=0, n_nodes=8)
    print(f"  new ring spans nodes {healed.node_order} (node 3 isolated)")
    print(f"  ring size unchanged: {healed.size} GPUs at full bandwidth\n")

    # ------------------------------------------------------------------
    # 4. Waste-ratio comparison against NVL-72 at a 2,880-GPU scale.
    #    Architectures come from the plugin registry by legend name --
    #    the same names spec files and the CLI use.
    # ------------------------------------------------------------------
    cluster_nodes = 720
    faulty = {10, 95, 222, 402, 561, 703}
    for arch_name in ("InfiniteHBD(K=3)", "NVL-72"):
        arch = architecture_by_name(arch_name, gpus_per_node=4)
        breakdown = arch.breakdown(cluster_nodes, faulty, tp_size=32)
        print(
            f"{arch.name:18s} usable={breakdown.usable_gpus:5d} GPUs   "
            f"wasted={breakdown.wasted_gpus:4d}   waste ratio={breakdown.waste_ratio:.2%}"
        )


if __name__ == "__main__":
    main()
