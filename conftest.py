"""Pytest root configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. offline environments where ``pip install -e .`` cannot build an
editable wheel).  When the package *is* installed, the installed copy wins
only if it shadows the same path; inserting ``src`` first keeps tests running
against the working tree.

Hypothesis profiles: ``default`` keeps the library's stock example budget
for interactive runs and PR CI; ``nightly`` raises ``max_examples`` an
order of magnitude and drops the deadline so the scheduled deep-fuzz run
(.github/workflows/nightly.yml) explores the invariant space much harder.
Select with ``HYPOTHESIS_PROFILE=nightly``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass
else:
    settings.register_profile("default", settings())
    settings.register_profile("nightly", max_examples=500, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden-file snapshots (tests/goldens/) instead of diffing",
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should refresh golden snapshots instead of diffing."""
    return request.config.getoption("--update-goldens")
