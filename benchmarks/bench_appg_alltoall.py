"""Appendix G: AllToAll on InfiniteHBD -- ring vs Binary Exchange vs Bruck."""

from conftest import emit_report, format_table

from repro.collectives.alltoall import (
    binary_exchange_alltoall,
    complexity_comparison,
)
from repro.collectives.cost_model import INFINITEHBD_GPU_LINK

GROUP_SIZES = (2, 4, 8, 16, 32, 64, 128, 256)
BLOCK_BYTES = 1 << 20  # 1 MiB per (src, dst) block


def _run():
    rows = complexity_comparison(GROUP_SIZES, BLOCK_BYTES, INFINITEHBD_GPU_LINK)
    # Also run the functional algorithm once to exercise the data path.
    p = 16
    blocks = [[(s, d) for d in range(p)] for s in range(p)]
    result = binary_exchange_alltoall(blocks)
    return rows, result


def test_appg_alltoall(benchmark):
    rows, functional = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["p", "ring (s)", "binary exchange (s)", "Bruck (s)", "pairwise (s)",
         "ring / binary-exchange"],
        [
            [
                r["group_size"], r["ring_s"], r["binary_exchange_s"],
                r["bruck_s"], r["pairwise_s"],
                (r["ring_s"] / r["binary_exchange_s"]) if r["binary_exchange_s"] else 0.0,
            ]
            for r in rows
        ],
    )
    emit_report("appg_alltoall", table)

    # Functional correctness: the exchange is a transpose.
    for i in range(16):
        for j in range(16):
            assert functional[i][j] == (j, i)

    # O(p^2) vs O(p log p): the advantage grows with the group size, and for
    # small p (< 8) Binary Exchange matches the ideal Bruck volume.
    ratios = [r["ring_s"] / r["binary_exchange_s"] for r in rows if r["binary_exchange_s"]]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10.0
    small = next(r for r in rows if r["group_size"] == 4)
    assert abs(small["binary_exchange_s"] - small["bruck_s"]) / small["bruck_s"] < 1e-6
