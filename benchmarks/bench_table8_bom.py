"""Table 8: interconnect bill of materials per reference deployment."""

from conftest import emit_report, format_table

from repro.cost.architectures import all_reference_boms


def _run():
    return all_reference_boms(include_hpn=True)


def test_table8_bom(benchmark):
    boms = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for bom in boms:
        for line in bom.lines:
            rows.append(
                [
                    bom.name,
                    bom.n_gpus,
                    line.component.name,
                    line.quantity,
                    line.component.unit_cost_usd,
                    line.component.unit_bandwidth_gBps,
                    line.component.unit_power_watts,
                ]
            )
    text = format_table(
        ["Architecture", "GPUs", "Component", "Qty", "Unit cost ($)", "Unit BW (GBps)", "Unit power (W)"],
        rows,
    )
    emit_report("table8_bom", text)

    names = {bom.name for bom in boms}
    assert {"TPUv4", "NVL-36", "NVL-72", "NVL-36x2", "NVL-576",
            "Alibaba-HPN", "InfiniteHBD(K=2)", "InfiniteHBD(K=3)"} <= names
    # Spot checks against the published quantities.
    tpuv4 = next(b for b in boms if b.name == "TPUv4")
    assert {(l.component.name, l.quantity) for l in tpuv4.lines} == {
        ("palomar_ocs", 48), ("dac_50gBps", 5120),
        ("optical_400g_fr4", 6144), ("fiber_50gBps", 6144),
    }
    k2 = next(b for b in boms if b.name == "InfiniteHBD(K=2)")
    assert sum(l.quantity for l in k2.lines if l.component.name == "ocstrx_800g") == 16
