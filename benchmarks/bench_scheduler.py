"""Cluster scheduler: event-driven replay vs a naive per-hour rescan.

The multi-job scheduler replays a 1,000-job queue against a 90-day,
5,000-node fault trace.  A naive implementation advances wall-clock time in
fixed hour steps and, every step, rescans the whole event list for the fault
set, recomputes the usable capacity from scratch and re-runs the allocation
pass -- O(hours x events) before it has done any scheduling work.  The
event-driven engine sweeps the trace once into its exact interval timeline
and only wakes up at fault boundaries and job events, with capacity memoized
per distinct (fault set, TP size).

This benchmark runs both on the same workload and asserts the event-driven
path wins by >= 5x while agreeing with the hour-quantized baseline on what
was scheduled (same completed-job count, makespan within the quantization
error).
"""

import math
import time

from conftest import emit_report, format_table

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import NVLHBD
from repro.scheduler import ClusterScheduler, WorkloadConfig, generate_workload
from repro.scheduler.policies import FifoPolicy

N_NODES = 5000
DURATION_DAYS = 90
TP_SIZE = 32
N_JOBS = 1000
MIN_SPEEDUP = 5.0
MAX_NAIVE_HOURS = 20_000


def _naive_hourly_schedule(arch, trace, jobs):
    """Hour-stepped FIFO rescheduler: the pre-interval-engine algorithm shape.

    Every hour it rescans the full event list for the fault set (the
    O(hours x events) cost the exact timeline removes), recomputes the
    usable capacity without memoization, and re-runs the FIFO allocation
    pass; job progress and restart debt advance in whole-hour quanta.
    """
    n_nodes = trace.n_nodes
    total_gpus = arch.total_gpus(n_nodes)
    remaining = {job.name: job.work_hours for job in jobs}
    debt = {job.name: 0.0 for job in jobs}
    completion = {}
    order = sorted(jobs, key=lambda job: job.submit_hour)

    prev_faults = frozenset(
        e.node_id for e in trace.events if e.active_at(0.0)
    )
    t = 0
    while len(completion) < len(jobs) and t < MAX_NAIVE_HOURS:
        faults = frozenset(e.node_id for e in trace.events if e.active_at(float(t)))
        usable = arch.usable_gpus(n_nodes, faults, TP_SIZE)

        # Strict-FIFO allocation pass over the jobs in the system.
        allocated = []
        used = 0
        for job in order:
            if job.name in completion or job.submit_hour > t:
                continue
            if used + job.gpus <= usable:
                allocated.append(job)
                used += job.gpus
            else:
                break

        new_faults = faults - prev_faults
        for job in allocated:
            if new_faults:
                hits = len(new_faults) * job.gpus / total_gpus
                debt[job.name] += hits * (
                    job.checkpoint_interval_hours / 2.0 + job.restart_overhead_hours
                )
            pay = min(1.0, debt[job.name])
            debt[job.name] -= pay
            remaining[job.name] -= 1.0 - pay
            if remaining[job.name] <= 0:
                completion[job.name] = t + 1.0
        prev_faults = faults
        t += 1
    makespan = max(completion.values()) - min(job.submit_hour for job in jobs)
    return completion, makespan


def _event_driven_schedule(arch, trace, jobs):
    # First call pays the (cached thereafter) O(events log events) sweep.
    return ClusterScheduler(
        arch, trace.interval_timeline(), jobs, policy=FifoPolicy()
    ).run()


def test_scheduler_engine_speedup(benchmark):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=N_NODES, duration_days=DURATION_DAYS, seed=90)
    )
    arch = NVLHBD(72, gpus_per_node=8)
    jobs = generate_workload(
        WorkloadConfig(
            n_jobs=N_JOBS,
            seed=42,
            tp_size=TP_SIZE,
            max_gpus=8192,
            mean_interarrival_hours=1.0,
            median_work_hours=8.0,
        )
    )

    start = time.perf_counter()
    naive_done, naive_makespan = _naive_hourly_schedule(arch, trace, jobs)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = _event_driven_schedule(arch, trace, jobs)
    exact_seconds = time.perf_counter() - start
    speedup = naive_seconds / max(exact_seconds, 1e-9)

    # Report the (cached-sweep) steady-state replay through the bench harness.
    benchmark.pedantic(
        _event_driven_schedule, rounds=1, iterations=1, args=(arch, trace, jobs)
    )

    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes (8-GPU)", trace.n_nodes],
            ["trace days", trace.duration_days],
            ["fault events", len(trace)],
            ["exact intervals", len(trace.interval_timeline())],
            ["jobs", report.n_jobs],
            ["finished jobs", report.finished_jobs],
            ["naive hourly rescan (s)", naive_seconds],
            ["event-driven replay (s)", exact_seconds],
            ["speedup", speedup],
            ["makespan (h, exact)", report.makespan_hours],
            ["makespan (h, naive)", naive_makespan],
            ["mean JCT (h)", report.mean_jct_hours],
            ["p99 JCT (h)", report.p99_jct_hours],
            ["cluster goodput", report.cluster_goodput],
        ],
    )
    emit_report(
        "scheduler_engine",
        text,
        gates=[
            (
                "event-driven scheduler >= 5x naive hourly rescan",
                speedup,
                MIN_SPEEDUP,
                ">=",
            ),
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"event-driven scheduler only {speedup:.1f}x faster than the naive "
        f"per-hour rescan"
    )
    assert report.all_finished
    assert len(naive_done) == report.n_jobs
    # The naive path quantizes progress to whole hours, so it can only agree
    # with the exact replay up to that resolution.
    assert math.isclose(naive_makespan, report.makespan_hours, rel_tol=0.10)
    for job in report.jobs:
        buckets = job.productive_hours + job.waiting_hours + job.restart_hours
        assert math.isclose(buckets, job.wall_clock_hours, abs_tol=1e-6)
