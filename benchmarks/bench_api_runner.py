"""Runner vs. seed-style serial loop: wall-clock on the 8-architecture line-up.

The seed replayed the trace with one :class:`ClusterSimulator` per
architecture, re-scanning the trace's fault events eight times.  The
Unified Experiment API samples the trace into one shared fault timeline and
(on multi-core hosts) fans the line-up out over a process pool.  This
benchmark times both on the full 348-day trace and checks they produce the
same numbers, with the runner no slower than the serial loop.
"""

import time

import pytest
from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.api import ExperimentRunner, ExperimentSpec, Scenario, TraceSpec
from repro.hbd import default_architectures
from repro.simulation.cluster import ClusterSimulator

TP_SIZE = 32


def _serial_seed_style(trace_4gpu):
    """The seed's architecture_comparison_over_trace loop, verbatim."""
    results = {}
    for arch in default_architectures(4):
        simulator = ClusterSimulator(arch, trace_4gpu, n_nodes=SIM_NODES_4GPU)
        results[arch.name] = simulator.run(TP_SIZE)
    return results


def test_runner_beats_serial_loop(benchmark, trace_4gpu):
    trace_spec = TraceSpec(days=348, seed=348, gpus_per_node=4)
    trace_spec.build()  # pre-warm the memoized trace: time execution, not generation

    spec = ExperimentSpec.of(
        scenario=Scenario.default(
            "runner-vs-serial",
            trace=trace_spec,
            tp_sizes=(TP_SIZE,),
            n_nodes=SIM_NODES_4GPU,
        ),
        experiments=("waste",),
    )

    start = time.perf_counter()
    serial = _serial_seed_style(trace_4gpu)
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    results = benchmark.pedantic(
        lambda: ExperimentRunner(spec).run(), rounds=1, iterations=1
    )
    runner_elapsed = time.perf_counter() - start

    rows = [
        ["serial per-architecture loop", serial_elapsed],
        ["ExperimentRunner (shared timeline, parallel)", runner_elapsed],
        ["speedup", serial_elapsed / max(runner_elapsed, 1e-9)],
    ]
    emit_report(
        "api_runner_vs_serial",
        format_table(["Path", "seconds / x"], rows),
    )

    # Same numbers out of both paths: the trace is day-granular, so the
    # runner's exact duration-weighted mean coincides with the serial loop's
    # daily-grid mean (up to float summation order) ...
    for result in results:
        assert result.metric("mean_waste_ratio") == pytest.approx(
            serial[result.architecture].mean_waste_ratio, rel=1e-9, abs=1e-12
        )
    # ... and the runner is at least as fast as the seed's serial loop
    # (shared timeline wins even on one core; processes win on many).
    assert runner_elapsed < serial_elapsed
