"""Figures 16 and 23: job fault-waiting rate versus job scale over the trace."""

from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.sweeps import fault_waiting_comparison

JOB_SCALES = (2304, 2432, 2560, 2688, 2816)
TP_SIZES = (16, 32)


def _run(trace_4gpu, tp_size):
    return fault_waiting_comparison(
        default_architectures(4),
        trace_4gpu,
        tp_size=tp_size,
        job_scales=JOB_SCALES,
        n_nodes=SIM_NODES_4GPU,
    )


def test_fig16_fault_waiting(benchmark, trace_4gpu):
    all_tables = {}

    def run_all():
        for tp in TP_SIZES:
            all_tables[tp] = _run(trace_4gpu, tp)
        return all_tables

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for tp, table in all_tables.items():
        rows = [[name] + [rates[s] for s in JOB_SCALES] for name, rates in table.items()]
        sections.append(
            f"TP-{tp} (fault-waiting rate):\n"
            + format_table(["Architecture"] + [str(s) for s in JOB_SCALES], rows)
        )
    emit_report("fig16_fault_waiting", "\n\n".join(sections))

    # Shape: waiting rate is monotone in the job scale, and InfiniteHBD waits
    # no more than NVL-36/72 or SiP-Ring at every scale (Figure 16b).
    for tp, table in all_tables.items():
        for rates in table.values():
            series = [rates[s] for s in JOB_SCALES]
            assert series == sorted(series)
        for scale in JOB_SCALES:
            assert table["InfiniteHBD(K=3)"][scale] <= table["NVL-72"][scale]
            assert table["InfiniteHBD(K=3)"][scale] <= table["SiP-Ring"][scale]
