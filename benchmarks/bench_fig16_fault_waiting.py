"""Figures 16 and 23: job fault-waiting rate versus job scale over the trace.

Runs through the Unified Experiment API: the ``fault_waiting`` experiment
evaluates every job scale from one event-driven replay per (architecture,
TP size); waiting rates are exact fractions of trace time rather than
fractions of grid samples.
"""

from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.api import ExperimentRunner, ExperimentSpec, Scenario, TraceSpec

JOB_SCALES = (2304, 2432, 2560, 2688, 2816)
TP_SIZES = (16, 32)


def _spec():
    return ExperimentSpec.of(
        scenario=Scenario.default(
            "fig16",
            trace=TraceSpec(days=348, seed=348, gpus_per_node=4),
            tp_sizes=TP_SIZES,
            n_nodes=SIM_NODES_4GPU,
        ),
        experiments=("fault_waiting",),
        options={"fault_waiting": {"job_scales": list(JOB_SCALES)}},
    )


def _run(spec):
    results = ExperimentRunner(spec).run()
    all_tables = {}
    for tp in TP_SIZES:
        table = {}
        for arch in results.architectures():
            series = results.filter("fault_waiting", arch, tp)[0].series_dict
            table[arch] = dict(zip(series["job_scales"], series["waiting_rates"]))
        all_tables[tp] = table
    return all_tables


def test_fig16_fault_waiting(benchmark):
    spec = _spec()
    spec.scenario.trace.build()  # time the sweep, not trace generation
    all_tables = benchmark.pedantic(_run, rounds=1, iterations=1, args=(spec,))

    sections = []
    for tp, table in all_tables.items():
        rows = [[name] + [rates[s] for s in JOB_SCALES] for name, rates in table.items()]
        sections.append(
            f"TP-{tp} (fault-waiting rate):\n"
            + format_table(["Architecture"] + [str(s) for s in JOB_SCALES], rows)
        )
    emit_report("fig16_fault_waiting", "\n\n".join(sections))

    # Shape: waiting rate is monotone in the job scale, and InfiniteHBD waits
    # no more than NVL-36/72 or SiP-Ring at every scale (Figure 16b).
    for tp, table in all_tables.items():
        for rates in table.values():
            series = [rates[s] for s in JOB_SCALES]
            assert series == sorted(series)
        for scale in JOB_SCALES:
            assert table["InfiniteHBD(K=3)"][scale] <= table["NVL-72"][scale]
            assert table["InfiniteHBD(K=3)"][scale] <= table["SiP-Ring"][scale]
