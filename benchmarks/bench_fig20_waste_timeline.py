"""Figure 20: GPU waste ratio over the 348-day trace (timeline summary).

Replayed event-driven over the exact interval timeline; the per-quarter
summaries are exact duration-weighted means over each quarter's window
instead of equal-weight means over daily samples.
"""

from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.cluster import ClusterSimulator

TP_SIZE = 32
QUARTERS = 4


def _run(trace_4gpu):
    timelines = {}
    for arch in default_architectures(4):
        series = ClusterSimulator(arch, trace_4gpu, n_nodes=SIM_NODES_4GPU).run_exact(TP_SIZE)
        timelines[arch.name] = series
    return timelines


def test_fig20_waste_timeline(benchmark, trace_4gpu):
    timelines = benchmark.pedantic(_run, rounds=1, iterations=1, args=(trace_4gpu,))

    total_days = trace_4gpu.duration_days
    quarter_days = total_days / QUARTERS
    rows = []
    for name, series in timelines.items():
        quarter_means = [
            series.mean_waste_in_window(i * quarter_days, (i + 1) * quarter_days)
            for i in range(QUARTERS)
        ]
        rows.append([name] + quarter_means + [series.max_waste_ratio])
    text = format_table(
        ["Architecture"] + [f"Q{i + 1} mean" for i in range(QUARTERS)] + ["max"], rows
    )
    emit_report("fig20_waste_timeline", text)

    # The InfiniteHBD timeline stays near zero through the whole trace while
    # NVL-36/72 hover around their fragmentation floor in every quarter.
    inf3 = timelines["InfiniteHBD(K=3)"]
    assert inf3.max_waste_ratio < 0.03
    nvl = timelines["NVL-72"]
    for quarter in range(QUARTERS):
        assert nvl.mean_waste_in_window(
            quarter * quarter_days, (quarter + 1) * quarter_days
        ) > 0.07
