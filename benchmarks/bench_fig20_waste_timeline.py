"""Figure 20: GPU waste ratio over the 348-day trace (timeline summary)."""

import numpy as np
from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.cluster import ClusterSimulator

TP_SIZE = 32
QUARTERS = 4


def _run(trace_4gpu):
    timelines = {}
    for arch in default_architectures(4):
        series = ClusterSimulator(arch, trace_4gpu, n_nodes=SIM_NODES_4GPU).run(TP_SIZE)
        timelines[arch.name] = series
    return timelines


def test_fig20_waste_timeline(benchmark, trace_4gpu):
    timelines = benchmark.pedantic(_run, rounds=1, iterations=1, args=(trace_4gpu,))

    rows = []
    for name, series in timelines.items():
        values = np.asarray(series.waste_ratios)
        chunks = np.array_split(values, QUARTERS)
        rows.append([name] + [float(chunk.mean()) for chunk in chunks] + [float(values.max())])
    text = format_table(
        ["Architecture"] + [f"Q{i + 1} mean" for i in range(QUARTERS)] + ["max"], rows
    )
    emit_report("fig20_waste_timeline", text)

    # The InfiniteHBD timeline stays near zero through the whole trace while
    # NVL-36/72 hover around their fragmentation floor in every quarter.
    inf3 = timelines["InfiniteHBD(K=3)"]
    assert max(inf3.waste_ratios) < 0.03
    nvl = np.asarray(timelines["NVL-72"].waste_ratios)
    for chunk in np.array_split(nvl, QUARTERS):
        assert chunk.mean() > 0.07
