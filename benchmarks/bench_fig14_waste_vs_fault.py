"""Figures 14 and 22: GPU waste ratio versus the node fault ratio (i.i.d. model)."""

from conftest import SIM_NODES_4GPU, TP_SIZES, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.sweeps import waste_ratio_vs_fault_ratio

FAULT_RATIOS = (0.0, 0.01, 0.02, 0.05, 0.07, 0.10)


def _run(tp_size):
    return waste_ratio_vs_fault_ratio(
        default_architectures(4),
        n_nodes=SIM_NODES_4GPU,
        tp_size=tp_size,
        fault_ratios=FAULT_RATIOS,
        n_samples=10,
        seed=14,
    )


def test_fig14_waste_vs_fault(benchmark):
    all_curves = {}

    def run_all():
        for tp in TP_SIZES:
            all_curves[tp] = _run(tp)
        return all_curves

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for tp, curves in all_curves.items():
        rows = [[name] + values for name, values in curves.items()]
        sections.append(
            f"TP-{tp}:\n"
            + format_table(
                ["Architecture"] + [f"fault {r:.0%}" for r in FAULT_RATIOS], rows
            )
        )
    emit_report("fig14_waste_vs_fault", "\n\n".join(sections))

    # Shape assertions (Figure 14b, TP-32): InfiniteHBD (K=3) stays near zero
    # across the sweep, TPUv4 and SiP-Ring degrade with the fault ratio, and
    # NVL-36/72 sit near their fragmentation floor even with no faults.
    tp32 = all_curves[32]
    assert max(tp32["InfiniteHBD(K=3)"]) < 0.02
    assert tp32["TPUv4"][-1] > tp32["TPUv4"][0]
    assert tp32["SiP-Ring"][-1] > 0.1
    assert tp32["NVL-72"][0] > 0.08
    assert tp32["InfiniteHBD(K=2)"][-1] < tp32["TPUv4"][-1]
