"""Table 5: optimal parallelism strategies for GPT-MoE (1.1T) across scales."""

from conftest import emit_report, format_table

from repro.training.models import gpt_moe_1t
from repro.training.parallelism import optimal_mfu_table

GPU_COUNTS = (1024, 2048, 4096, 8192, 16384)
GLOBAL_BATCH = 1536
IMBALANCE = 0.2  # the paper sets the practical imbalance coefficient to 20%


def _run():
    return optimal_mfu_table(
        gpt_moe_1t(),
        GPU_COUNTS,
        global_batch=GLOBAL_BATCH,
        ep_choices=(1, 2, 4, 8),
        expert_imbalance_coef=IMBALANCE,
        baseline_max_tp=None,
    )


def test_table5_moe_mfu(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "TP", "DP", "PP", "EP", "MFU"],
        [[r["gpus"], r["tp"], r["dp"], r["pp"], r["ep"], r["mfu"]] for r in rows],
    )
    emit_report("table5_moe_mfu", table)

    # Shape: MoE trains efficiently with TP; the optimal TP grows with the
    # cluster while EP stays small, and MFU declines slowly with scale.
    assert rows[-1]["tp"] >= rows[0]["tp"]
    assert sum(1 for r in rows if r["ep"] == 1) >= len(rows) // 2
    mfus = [r["mfu"] for r in rows]
    assert mfus == sorted(mfus, reverse=True)
    assert all(r["mfu"] > 0.25 for r in rows)
