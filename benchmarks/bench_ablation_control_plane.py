"""Ablation: control-plane work (bypasses, broken rings) for K=2 vs K=3.

Replays the fault trace through the cluster manager (section 5.2 control
plane) and reports how often rings heal over backup links versus break, plus
the cumulative OCSTrx switching time -- the control-plane counterpart of the
capacity-oriented Figure 13/14 comparison.
"""

from conftest import emit_report, format_table

from repro.control.cluster_manager import ClusterManager

N_NODES = 256
TP_SIZE = 32


def _run(trace_4gpu):
    rows = []
    for k in (2, 3):
        manager = ClusterManager(n_nodes=N_NODES, k=k, gpus_per_node=4)
        summary = manager.replay_trace(trace_4gpu, tp_size=TP_SIZE)
        rows.append(
            [
                k,
                summary.fault_events,
                summary.bypass_reconfigurations,
                summary.broken_rings,
                summary.mean_ring_availability,
                summary.total_switch_time_us / 1e3,
            ]
        )
    return rows


def test_ablation_control_plane(benchmark, trace_4gpu):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1, args=(trace_4gpu,))
    text = format_table(
        ["K", "faults", "bypasses", "broken rings", "mean ring availability",
         "total switch time (ms)"],
        rows,
    ) + f"\n\n(cluster: {N_NODES} nodes, TP-{TP_SIZE} rings, 348-day trace)"
    emit_report("ablation_control_plane", text)

    by_k = {row[0]: row for row in rows}
    # K=3 bridges more faults, so it performs at least as many bypasses,
    # breaks no more rings, and keeps ring availability at least as high.
    assert by_k[3][2] >= by_k[2][2]
    assert by_k[3][3] <= by_k[2][3]
    assert by_k[3][4] >= by_k[2][4] - 1e-9
    # Every bypass costs one 60-80 us switch on each side of the gap.
    assert by_k[2][5] > 0.0
