"""Ablation: 4-GPU vs 8-GPU nodes (R) for the same total GPU count.

The intra-node design (Figure 4/5) supports both UBB-style 8-GPU nodes and
4-GPU nodes.  Larger nodes amplify the per-fault blast radius (a node fault
takes 8 GPUs instead of 4) but halve the number of line positions, which
changes the breakpoint statistics (Appendix C evaluates both).
"""

from conftest import emit_report, format_table

from repro.analysis.waste_bound import waste_ratio_upper_bound
from repro.faults.convert import node_fault_probability, per_gpu_fault_probability
from repro.hbd.infinitehbd import InfiniteHBDArchitecture
from repro.simulation.sweeps import waste_ratio_vs_fault_ratio

TOTAL_GPUS = 2880
TP_SIZE = 32
GPU_FAULT_RATIOS = (0.0025, 0.005, 0.01, 0.02)


def _run():
    rows = []
    for r in (4, 8):
        n_nodes = TOTAL_GPUS // r
        for k in (2, 3):
            arch = InfiniteHBDArchitecture(k=k, gpus_per_node=r)
            node_ratios = [
                node_fault_probability(p_gpu, r) for p_gpu in GPU_FAULT_RATIOS
            ]
            curves = waste_ratio_vs_fault_ratio(
                [arch],
                n_nodes=n_nodes,
                tp_size=TP_SIZE,
                fault_ratios=node_ratios,
                n_samples=10,
                seed=11,
            )[arch.name]
            bound = waste_ratio_upper_bound(
                node_fault_probability(0.0093, r), k, TP_SIZE, r
            )
            rows.append([r, k, bound] + curves)
    return rows


def test_ablation_node_size(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["R", "K", "Appendix C bound"]
        + [f"waste @ GPU fault {p:.2%}" for p in GPU_FAULT_RATIOS],
        rows,
    )
    emit_report("ablation_node_size", text)

    by_rk = {(row[0], row[1]): row for row in rows}
    # Appendix C / Table 7 shape: at equal GPU fault rate, the 8-GPU node
    # needs a larger K to reach the same bound; K=3 keeps both node sizes
    # near zero at production GPU fault rates.
    assert by_rk[(8, 2)][2] > by_rk[(4, 2)][2]
    assert by_rk[(4, 3)][-1] < 0.02
    assert by_rk[(8, 3)][-1] < 0.03
    # Per-GPU fault probability check used for the conversion is consistent.
    assert abs(per_gpu_fault_probability(0.0233, 8) - 0.0029) < 3e-4
