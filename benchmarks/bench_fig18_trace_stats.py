"""Figure 18: statistics of the (synthetic) production fault trace.

Statistics and the fault-ratio CDF are exact (duration-weighted over the
event-driven interval timeline); the per-day series keeps Figure 18a's daily
resolution via the grid resampling layer.
"""

from conftest import emit_report, format_table

from repro.analysis.cdf import weighted_quantile


def _summarise(trace):
    stats = trace.statistics()
    days, ratios = trace.fault_ratio_series()
    values, cdf = trace.fault_ratio_cdf()
    return stats, ratios, values, cdf


def test_fig18_trace_statistics(benchmark, trace_8gpu):
    stats, ratios, values, cdf = benchmark.pedantic(
        _summarise, rounds=1, iterations=1, args=(trace_8gpu,)
    )
    timeline = trace_8gpu.interval_timeline()
    deciles = [
        weighted_quantile(timeline.fault_ratios, timeline.durations_hours, q)
        for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)
    ]
    text = format_table(
        ["metric", "value"],
        [
            ["trace days", trace_8gpu.duration_days],
            ["nodes (8-GPU)", trace_8gpu.n_nodes],
            ["fault events", stats.n_events],
            ["mean fault-node ratio", stats.mean_fault_ratio],
            ["p50 fault-node ratio", stats.p50_fault_ratio],
            ["p99 fault-node ratio", stats.p99_fault_ratio],
            ["max fault-node ratio", stats.max_fault_ratio],
            ["mean repair time (hours)", stats.mean_repair_hours],
        ],
    ) + "\n\nCDF deciles (p10/p25/p50/p75/p90/p99): " + ", ".join(
        f"{d:.4f}" for d in deciles
    )
    emit_report("fig18_trace_stats", text)

    # Calibration targets from Appendix A: mean 2.33%, p99 7.22%, 348 days.
    assert trace_8gpu.duration_days == 348
    assert abs(stats.mean_fault_ratio - 0.0233) / 0.0233 < 0.15
    assert 0.04 <= stats.p99_fault_ratio <= 0.11
    assert stats.p99_fault_ratio > 2 * stats.mean_fault_ratio
    assert len(ratios) == 348
