"""Table 2: optimal parallelism and MFU for Llama 3.1-405B vs a TP-8 baseline.

Regenerates, for each cluster size, the MFU-optimal (TP, PP, DP) strategy,
the best MFU achievable when TP is capped at 8 (the conventional 8-GPU-node
NVLink HBD), and the improvement ratio.
"""

from conftest import emit_report, format_table

from repro.training.models import llama31_405b
from repro.training.parallelism import optimal_mfu_table

GPU_COUNTS = (1024, 4096, 8192, 16384, 32768, 65536, 131072)
GLOBAL_BATCH = 2048


def _run():
    return optimal_mfu_table(
        llama31_405b(), GPU_COUNTS, global_batch=GLOBAL_BATCH, baseline_max_tp=8
    )


def test_table2_llama_mfu(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "TP", "PP", "DP", "MFU", "MFU_TP-8", "Improve"],
        [
            [r["gpus"], r["tp"], r["pp"], r["dp"], r["mfu"], r["mfu_tp8"], r["improvement"]]
            for r in rows
        ],
    )
    emit_report("table2_llama_mfu", table)

    # Shape assertions mirroring the paper's observations.
    assert rows[-1]["tp"] > rows[0]["tp"], "optimal TP must grow with cluster size"
    improvements = [r["improvement"] for r in rows]
    assert improvements == sorted(improvements)
    assert improvements[-1] > 3.0
    mfus = [r["mfu"] for r in rows]
    assert mfus == sorted(mfus, reverse=True)
