"""Result cache + shared-memory fan-out: the runner's two new fast paths.

Two gated comparisons on the ``bench_api_runner`` workload (348-day 4-GPU
trace, 720 nodes, the 8-architecture line-up at TP=32):

* **warm vs cold** -- the full 3-seed Monte-Carlo waste sweep with
  ``cache="disk"`` run twice against an empty cache directory.  The cold
  run pays for per-seed trace sampling, timeline sweeps and the batched
  replay -- everything a cache hit skips; the warm run serves every task
  from the content-addressed store and must be >= 10x faster, with
  bit-for-bit identical results.
* **shm vs pickle fan-out** -- shipping one stacked Monte-Carlo event log
  to a fork pool of workers as a tiny :class:`ShmEventLog` handle (every
  worker maps the same pages zero-copy) vs pickling the whole array into
  each task.  The shared-memory path must be >= 1.3x faster.
"""

import json
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np
from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.api import ExperimentRunner, ExperimentSpec, Scenario, TraceSpec
from repro.cache import clear_memory_cache
from repro.faults.events import ShmEventLog
from repro.mc import BatchTraceConfig, sample_trace_batch

TP_SIZE = 32
MIN_WARM_SPEEDUP = 10.0
MIN_SHM_SPEEDUP = 1.3

FANOUT_SEEDS = 32
FANOUT_TASKS = 16
FANOUT_WORKERS = 4


NUM_SEEDS = 3


def _bench_spec():
    return ExperimentSpec.of(
        scenario=Scenario.default(
            "runner-cache",
            trace=TraceSpec(days=348, seed=348, gpus_per_node=4),
            tp_sizes=(TP_SIZE,),
            n_nodes=SIM_NODES_4GPU,
        ),
        experiments=("waste",),
        cache="disk",
        num_seeds=NUM_SEEDS,
    )


def test_warm_cache_beats_cold_sweep(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_memory_cache()
    spec = _bench_spec()

    start = time.perf_counter()
    cold = ExperimentRunner(spec, max_workers=1).run()
    cold_seconds = time.perf_counter() - start

    clear_memory_cache()  # the warm run must prove the *disk* tier, not the LRU
    start = time.perf_counter()
    warm = ExperimentRunner(spec, max_workers=1).run()
    warm_seconds = time.perf_counter() - start
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    # Cached results are bit-for-bit the fresh computation.
    assert cold.cache_stats.misses == len(cold) and cold.cache_stats.hits == 0
    assert warm.cache_stats.hits == len(warm) and warm.cache_stats.misses == 0
    assert warm.results == cold.results
    assert json.dumps([r.to_dict() for r in warm]) == json.dumps(
        [r.to_dict() for r in cold]
    )

    emit_report(
        "runner_cache",
        format_table(
            ["metric", "value"],
            [
                ["tasks", len(cold)],
                ["seeds per task", NUM_SEEDS],
                ["cold sweep (s)", cold_seconds],
                ["warm cached sweep (s)", warm_seconds],
                ["speedup", speedup],
            ],
        ),
        gates=[
            (
                f"warm cached sweep >= {MIN_WARM_SPEEDUP:.0f}x cold",
                speedup,
                MIN_WARM_SPEEDUP,
                ">=",
            ),
        ],
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm cached sweep only {speedup:.1f}x faster than cold"
    )


def _consume_pickled(log: np.ndarray) -> int:
    return int(log["node"].sum())


def _consume_shm(handle: ShmEventLog) -> int:
    return int(handle.log()["node"].sum())


def test_shm_fanout_beats_pickle_fanout():
    batch = sample_trace_batch(
        BatchTraceConfig(
            n_seeds=FANOUT_SEEDS,
            n_nodes=SIM_NODES_4GPU,
            duration_days=348,
            gpus_per_node=4,
        )
    )
    log = batch.log
    handle = ShmEventLog.from_log(log)
    try:
        expected = _consume_pickled(log)
        with ProcessPoolExecutor(
            max_workers=FANOUT_WORKERS, mp_context=get_context("fork")
        ) as pool:
            # Warm-up: absorb pool spin-up before either side is timed.
            assert list(pool.map(_consume_shm, [handle] * FANOUT_WORKERS)) == [
                expected
            ] * FANOUT_WORKERS

            def fanout(fn, payload):
                start = time.perf_counter()
                results = list(pool.map(fn, [payload] * FANOUT_TASKS))
                elapsed = time.perf_counter() - start
                assert results == [expected] * FANOUT_TASKS
                return elapsed

            pickle_seconds = min(
                fanout(_consume_pickled, log) for _ in range(3)
            )
            shm_seconds = min(fanout(_consume_shm, handle) for _ in range(3))
    finally:
        handle.unlink()
    speedup = pickle_seconds / max(shm_seconds, 1e-9)

    emit_report(
        "runner_shm_fanout",
        format_table(
            ["metric", "value"],
            [
                ["stacked events", len(log)],
                ["payload bytes", log.nbytes],
                ["handle bytes", len(pickle.dumps(handle))],
                ["fan-out tasks x workers", f"{FANOUT_TASKS} x {FANOUT_WORKERS}"],
                ["pickle fan-out (s)", pickle_seconds],
                ["shm fan-out (s)", shm_seconds],
                ["speedup", speedup],
            ],
        ),
        gates=[
            (
                f"shm fan-out >= {MIN_SHM_SPEEDUP}x pickle fan-out",
                speedup,
                MIN_SHM_SPEEDUP,
                ">=",
            ),
        ],
    )
    assert speedup >= MIN_SHM_SPEEDUP, (
        f"shm fan-out only {speedup:.2f}x faster than pickle fan-out"
    )
