"""Figures 10 and 11: OCSTrx insertion loss and core-module power vs temperature."""

from conftest import emit_report, format_table

from repro.hardware.optics import OpticalMeasurementCampaign, REPORTED_TEMPERATURES_C


def _run():
    campaign = OpticalMeasurementCampaign(seed=2025, n_devices=300)
    return {
        "loss": campaign.figure10a_insertion_loss(),
        "power": campaign.figure10b_power(),
        "histograms": campaign.figure11_loss_histograms(),
    }


def test_fig10_11_optics(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    loss_table = format_table(
        ["Temperature (C)", "Average loss (dB)", "Max loss (dB)", "Min loss (dB)"],
        [[r["temperature_c"], r["average_db"], r["max_db"], r["min_db"]] for r in data["loss"]],
    )
    power_rows = []
    for path, series in sorted(data["power"].items()):
        power_rows.append([f"Path {path}"] + list(series))
    power_table = format_table(
        ["Path"] + [f"{t:.0f} C" for t in REPORTED_TEMPERATURES_C], power_rows
    )
    hist_rows = []
    for temp, (counts, edges) in sorted(data["histograms"].items()):
        hist_rows.append([f"{temp:.0f} C"] + counts)
    hist_table = format_table(
        ["Temperature"] + ["2.0-2.5", "2.5-3.0", "3.0-3.5", "3.5-4.0", "4.0-4.5"],
        hist_rows,
    )
    emit_report(
        "fig10_11_optics",
        "Figure 10a (insertion loss):\n" + loss_table
        + "\n\nFigure 10b (core power, W):\n" + power_table
        + "\n\nFigure 11 (loss histograms, device counts):\n" + hist_table,
    )

    # Published envelope: 2.5-4.0 dB spread, ~3.3 dB average at 25 C, power
    # under 3.2 W for every path and temperature.
    room = next(r for r in data["loss"] if r["temperature_c"] == 25.0)
    assert abs(room["average_db"] - 3.3) < 0.2
    for row in data["loss"]:
        assert 2.0 <= row["min_db"] <= row["max_db"] <= 4.5
    for series in data["power"].values():
        assert max(series) <= 3.2
