"""Figure 15: maximal job scale supported by a 2,880-GPU cluster over the trace.

Runs through the Unified Experiment API: one declarative spec sweeps the
full architecture × TP-size grid off one shared exact interval timeline, so
the supported job scale accounts for every fault configuration in the trace
(not just the ones a sampling grid happens to observe).
"""

from conftest import SIM_NODES_4GPU, TP_SIZES, emit_report, format_table

from repro.api import ExperimentRunner, ExperimentSpec, Scenario, TraceSpec


def _spec():
    return ExperimentSpec.of(
        scenario=Scenario.default(
            "fig15",
            trace=TraceSpec(days=348, seed=348, gpus_per_node=4),
            tp_sizes=TP_SIZES,
            n_nodes=SIM_NODES_4GPU,
        ),
        experiments=("max_job_scale",),
    )


def _run(spec):
    results = ExperimentRunner(spec).run()
    return results.metric_table("max_job_scale", "max_job_scale")


def test_fig15_max_job_scale(benchmark):
    spec = _spec()
    spec.scenario.trace.build()  # time the sweep, not trace generation
    table = benchmark.pedantic(_run, rounds=1, iterations=1, args=(spec,))
    rows = [[name] + [per_tp[tp] for tp in TP_SIZES] for name, per_tp in table.items()]
    text = format_table(
        ["Architecture"] + [f"TP-{tp}" for tp in TP_SIZES], rows
    ) + f"\n\nUpper limit: {SIM_NODES_4GPU * 4} GPUs"
    emit_report("fig15_max_job_scale", text)

    # Shape: InfiniteHBD and NVL-576 lead; SiP-Ring declines as TP grows;
    # nobody exceeds the physical 2,880-GPU limit.
    upper = SIM_NODES_4GPU * 4
    for per_tp in table.values():
        assert all(0 <= v <= upper for v in per_tp.values())
    for tp in TP_SIZES:
        assert table["InfiniteHBD(K=3)"][tp] >= table["TPUv4"][tp]
        assert table["InfiniteHBD(K=3)"][tp] >= table["SiP-Ring"][tp]
        assert table["InfiniteHBD(K=2)"][tp] >= table["NVL-36"][tp]
    sip = [table["SiP-Ring"][tp] for tp in TP_SIZES]
    assert sip[-1] <= sip[0]
