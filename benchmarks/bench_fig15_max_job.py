"""Figure 15: maximal job scale supported by a 2,880-GPU cluster over the trace."""

from conftest import SIM_NODES_4GPU, TP_SIZES, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.sweeps import max_job_scale_comparison


def _run(trace_4gpu):
    return max_job_scale_comparison(
        default_architectures(4),
        trace_4gpu,
        tp_sizes=TP_SIZES,
        n_nodes=SIM_NODES_4GPU,
        availability=1.0,
    )


def test_fig15_max_job_scale(benchmark, trace_4gpu):
    table = benchmark.pedantic(_run, rounds=1, iterations=1, args=(trace_4gpu,))
    rows = [[name] + [per_tp[tp] for tp in TP_SIZES] for name, per_tp in table.items()]
    text = format_table(
        ["Architecture"] + [f"TP-{tp}" for tp in TP_SIZES], rows
    ) + f"\n\nUpper limit: {SIM_NODES_4GPU * 4} GPUs"
    emit_report("fig15_max_job_scale", text)

    # Shape: InfiniteHBD and NVL-576 lead; SiP-Ring declines as TP grows;
    # nobody exceeds the physical 2,880-GPU limit.
    upper = SIM_NODES_4GPU * 4
    for per_tp in table.values():
        assert all(0 <= v <= upper for v in per_tp.values())
    for tp in TP_SIZES:
        assert table["InfiniteHBD(K=3)"][tp] >= table["TPUv4"][tp]
        assert table["InfiniteHBD(K=3)"][tp] >= table["SiP-Ring"][tp]
        assert table["InfiniteHBD(K=2)"][tp] >= table["NVL-36"][tp]
    sip = [table["SiP-Ring"][tp] for tp in TP_SIZES]
    assert sip[-1] <= sip[0]
