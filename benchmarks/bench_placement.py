"""Placement scheduler: placed replay vs the expected-value replay.

Node-level placement upgrades the cluster scheduler from expected-value
restart accounting to deterministic per-job fault hits: every running job
holds concrete node ids, and a fault interval deschedules exactly the jobs
whose nodes went down.  That precision costs bookkeeping -- placement
domains per fault set, free-node lists, per-placement node selection -- and
this benchmark bounds the price: on the same 1,000-job, 90-day, 5,000-node
workload the scheduler benchmark gates, the placed replay must stay within
3x of the expected-value replay.

It also pins the semantics while timing:

* the placed replay is deterministic -- two runs produce byte-identical
  ``ClusterReport`` JSON;
* placed ``impacting_faults`` are integer hit counts (the expected-value
  path accumulates fractional expectations);
* the wall-clock partition invariant holds for every job in both modes.
"""

import json
import math
import time

from conftest import emit_report, format_table

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import NVLHBD
from repro.scheduler import ClusterScheduler, WorkloadConfig, generate_workload

N_NODES = 5000
DURATION_DAYS = 90
TP_SIZE = 32
N_JOBS = 1000
MAX_SLOWDOWN = 3.0
TIMING_ROUNDS = 3


def _run(arch, timeline, jobs, placement):
    return ClusterScheduler(arch, timeline, jobs, placement=placement).run()


def _best_of(rounds, fn, *args):
    best = math.inf
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_placed_replay_within_3x_of_expected(benchmark):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=N_NODES, duration_days=DURATION_DAYS, seed=90)
    )
    arch = NVLHBD(72, gpus_per_node=8)
    jobs = generate_workload(
        WorkloadConfig(
            n_jobs=N_JOBS,
            seed=42,
            tp_size=TP_SIZE,
            max_gpus=8192,
            mean_interarrival_hours=1.0,
            median_work_hours=8.0,
        )
    )
    timeline = trace.interval_timeline()  # swept once, shared by both paths

    expected_seconds, expected = _best_of(
        TIMING_ROUNDS, _run, arch, timeline, jobs, None
    )
    placed_seconds, placed = _best_of(
        TIMING_ROUNDS, _run, arch, timeline, jobs, "packed"
    )
    slowdown = placed_seconds / max(expected_seconds, 1e-9)

    benchmark.pedantic(
        _run, rounds=1, iterations=1, args=(arch, timeline, jobs, "packed")
    )

    # Semantics while we are here: determinism, integer hits, conservation.
    rerun = _run(arch, timeline, jobs, "packed")
    assert json.dumps(placed.to_dict(), sort_keys=True) == json.dumps(
        rerun.to_dict(), sort_keys=True
    )
    assert placed.all_finished and expected.all_finished
    placed_hits = sum(job.impacting_faults for job in placed.jobs)
    expected_hits = sum(job.impacting_faults for job in expected.jobs)
    assert all(
        float(job.impacting_faults).is_integer() for job in placed.jobs
    ), "placed hits must be deterministic counts"
    for report in (placed, expected):
        for job in report.jobs:
            buckets = job.productive_hours + job.waiting_hours + job.restart_hours
            assert math.isclose(buckets, job.wall_clock_hours, abs_tol=1e-6)

    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes (8-GPU)", trace.n_nodes],
            ["trace days", trace.duration_days],
            ["fault events", len(trace)],
            ["exact intervals", len(timeline)],
            ["jobs", placed.n_jobs],
            ["expected-value replay (s)", expected_seconds],
            ["placed replay (s)", placed_seconds],
            ["slowdown (placed / expected)", slowdown],
            ["fault hits (placed, exact)", placed_hits],
            ["fault hits (expected value)", expected_hits],
            ["makespan (h, placed)", placed.makespan_hours],
            ["makespan (h, expected)", expected.makespan_hours],
            ["mean JCT (h, placed)", placed.mean_jct_hours],
            ["mean rho (placed)", placed.mean_finish_time_fairness],
            ["Jain index (placed)", placed.jain_fairness_index],
        ],
    )
    emit_report(
        "placement_scheduler",
        text,
        gates=[
            (
                "placed replay <= 3x expected-value replay",
                slowdown,
                MAX_SLOWDOWN,
                "<=",
            ),
        ],
    )

    assert slowdown <= MAX_SLOWDOWN, (
        f"placed replay {slowdown:.2f}x slower than the expected-value path "
        f"(budget {MAX_SLOWDOWN}x)"
    )
