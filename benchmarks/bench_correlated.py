"""Correlated-overlay generation cost vs the independent generator.

The correlated generator reuses the independent base trace verbatim and adds
only the MMPP domain-outage overlay on top, so a full correlated sweep must
stay cheap: generating a year-scale trace at three correlation levels is
gated at <= 1.5x the cost of generating the same independent trace three
times.  The benchmark also re-verifies the structural contract the cheapness
rests on -- correlation=0 is an exact pass-through of the independent
generator, event for event.
"""

import time

from conftest import emit_report, format_table

from repro.faults.correlated import CorrelatedFaultConfig, generate_correlated_trace
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace

N_NODES = 400
DURATION_DAYS = 348
CORRELATIONS = (0.0, 0.5, 1.0)
MAX_COST_RATIO = 1.5


def _base(seed):
    return SyntheticTraceConfig(n_nodes=N_NODES, duration_days=DURATION_DAYS, seed=seed)


def _independent_sweep(seed):
    return [generate_synthetic_trace(_base(seed)) for _ in CORRELATIONS]


def _correlated_sweep(seed):
    return [
        generate_correlated_trace(
            CorrelatedFaultConfig(
                base=_base(seed), correlation=c, domain_rate_per_day=1.0
            )
        )
        for c in CORRELATIONS
    ]


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def test_correlated_sweep_cost(benchmark):
    # Warm-up outside the timed region (numpy dispatch, allocator warmup);
    # distinct seeds per timed round keep the generator honest (no caching).
    _independent_sweep(0)
    _correlated_sweep(0)

    independent_seconds = min(
        _timed(_independent_sweep, seed)[0] for seed in (1, 2, 3)
    )
    correlated_seconds = min(_timed(_correlated_sweep, seed)[0] for seed in (1, 2, 3))
    ratio = correlated_seconds / max(independent_seconds, 1e-9)

    benchmark.pedantic(_correlated_sweep, rounds=1, iterations=1, args=(4,))

    # Structural contract: correlation=0 is the independent generator.
    independent = generate_synthetic_trace(_base(7))
    passthrough = generate_correlated_trace(CorrelatedFaultConfig(base=_base(7)))
    assert passthrough.events == independent.events

    correlated = _correlated_sweep(7)
    overlay_events = len(correlated[-1].events) - len(independent.events)
    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes", N_NODES],
            ["trace days", DURATION_DAYS],
            ["correlation levels", len(CORRELATIONS)],
            ["base events", len(independent.events)],
            ["overlay events (corr=1)", overlay_events],
            ["independent sweep (s)", independent_seconds],
            ["correlated sweep (s)", correlated_seconds],
            ["cost ratio", ratio],
        ],
    )
    emit_report(
        "correlated",
        text,
        gates=[
            (
                f"correlated sweep <= {MAX_COST_RATIO}x independent generator",
                ratio,
                MAX_COST_RATIO,
                "<=",
            ),
        ],
    )
    assert ratio <= MAX_COST_RATIO, (
        f"correlated sweep costs {ratio:.2f}x the independent generator"
    )
