"""Ablation: hop count K (OCSTrx bundles per node) vs fault resilience and cost.

The paper evaluates K=2 and K=3 and argues (Appendix C, Figure 17d) that K=2
is the sweet spot below ~12% node fault ratios.  This ablation sweeps K=1..4
and reports the waste ratio at several fault ratios together with the
per-GPU interconnect cost scaled from the published K=2/K=3 BOMs.
"""

from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.analysis.waste_bound import waste_ratio_upper_bound
from repro.cost.components import component
from repro.hbd.infinitehbd import InfiniteHBDArchitecture
from repro.simulation.sweeps import waste_ratio_vs_fault_ratio

FAULT_RATIOS = (0.01, 0.03, 0.05, 0.10)
TP_SIZE = 32


def _interconnect_cost_per_gpu(k: int) -> float:
    """Per-GPU cost of a K-bundle node: K OCSTrx bundles + (R-K) DAC pairs."""
    ocstrx = component("ocstrx_800g")
    dac = component("dac_1600g")
    fiber = component("fiber_100gBps")
    n_trx = 8 * k
    n_dac = 2 * (4 - k) if k < 4 else 0
    total = n_trx * (ocstrx.unit_cost_usd + fiber.unit_cost_usd) + n_dac * dac.unit_cost_usd
    return total / 4.0


def _run():
    architectures = [InfiniteHBDArchitecture(k=k, gpus_per_node=4) for k in (1, 2, 3, 4)]
    curves = waste_ratio_vs_fault_ratio(
        architectures,
        n_nodes=SIM_NODES_4GPU,
        tp_size=TP_SIZE,
        fault_ratios=FAULT_RATIOS,
        n_samples=10,
        seed=7,
    )
    rows = []
    for k in (1, 2, 3, 4):
        name = f"InfiniteHBD(K={k})"
        rows.append(
            [
                k,
                _interconnect_cost_per_gpu(k),
                waste_ratio_upper_bound(0.0367, k, TP_SIZE, 4),
            ]
            + curves[name]
        )
    return rows


def test_ablation_k(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["K", "interconnect $/GPU", "Appendix C bound"]
        + [f"waste @ {r:.0%}" for r in FAULT_RATIOS],
        rows,
    )
    emit_report("ablation_k", text)

    by_k = {row[0]: row for row in rows}
    # Cost grows with K; waste shrinks with K; K>=2 is already near zero at
    # production fault ratios while K=1 (a plain ring) degrades quickly.
    costs = [by_k[k][1] for k in (1, 2, 3, 4)]
    assert costs == sorted(costs)
    waste_at_5pct = {k: by_k[k][3 + FAULT_RATIOS.index(0.05)] for k in (1, 2, 3, 4)}
    assert waste_at_5pct[1] > waste_at_5pct[2] >= waste_at_5pct[3] >= waste_at_5pct[4]
    assert waste_at_5pct[2] < 0.03
    assert waste_at_5pct[1] > 0.05
