"""Figure 17d: fault-aware aggregate cost versus node fault ratio."""

from conftest import emit_report, format_table

from repro.cost.analysis import aggregate_cost_sweep

FAULT_RATIOS = (0.0, 0.05, 0.10, 0.15, 0.20)


def _run():
    return aggregate_cost_sweep(
        n_nodes=768,
        fault_ratios=FAULT_RATIOS,
        tp_size=32,
        normalize=True,
        n_samples=5,
        seed=17,
    )


def test_fig17d_aggregate_cost(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[name] + values for name, values in curves.items()]
    text = format_table(
        ["Architecture"] + [f"fault {r:.0%}" for r in FAULT_RATIOS], rows
    ) + "\n\n(normalised: InfiniteHBD(K=2) at 0% faults = 100)"
    emit_report("fig17d_aggregate_cost", text)

    # Shape: one of the InfiniteHBD variants is the cheapest at every fault
    # ratio (K=2 below the ~12% crossover, K=3 may take over beyond it),
    # every curve is non-decreasing in the fault ratio, and NVL-576 is the
    # most expensive.
    for i in range(len(FAULT_RATIOS)):
        cheapest = min(curves, key=lambda name: curves[name][i])
        assert cheapest in ("InfiniteHBD(K=2)", "InfiniteHBD(K=3)")
    for i, ratio in enumerate(FAULT_RATIOS):
        if ratio <= 0.05:
            assert curves["InfiniteHBD(K=2)"][i] <= curves["InfiniteHBD(K=3)"][i]
    assert max(curves, key=lambda name: curves[name][0]) == "NVL-576"
    for series in curves.values():
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))
