"""Figure 17a-c: cross-ToR traffic of the orchestration algorithm vs the baseline.

* 17a -- sensitivity to cluster size (fixed job-scale ratio and fault ratio),
* 17b -- impact of the job-scale ratio (fixed 5% node faults),
* 17c -- sensitivity to the node fault ratio (fixed 85% job-scale ratio).
"""

import numpy as np
from conftest import emit_report, format_table

from repro.core.orchestrator import JobSpec, Orchestrator
from repro.dcn.fattree import FatTreeConfig
from repro.faults.model import sample_fault_set

TP_SIZE = 32
GPUS_PER_NODE = 4


def _orchestrator(n_nodes):
    return Orchestrator(
        n_nodes=n_nodes,
        k=2,
        fat_tree_config=FatTreeConfig(
            n_nodes=n_nodes, nodes_per_tor=4, tors_per_domain=64
        ),
    )


def _cross_tor(orch, n_nodes, job_gpus, fault_ratio, method, seed=0):
    rng = np.random.default_rng(seed)
    faults = sample_fault_set(n_nodes, fault_ratio, rng)
    job_gpus = (job_gpus // TP_SIZE) * TP_SIZE
    job = JobSpec(total_gpus=job_gpus, tp_size=TP_SIZE, gpus_per_node=GPUS_PER_NODE)
    _, report = orch.place_and_report(job, faults, method=method, seed=seed)
    return report.cross_tor_rate


def _run():
    results = {}

    # 17a: cluster-size sensitivity at 5% faults, 85% job-scale ratio.
    cluster_rows = []
    for n_gpus in (4096, 8192, 16384):
        n_nodes = n_gpus // GPUS_PER_NODE
        orch = _orchestrator(n_nodes)
        job_gpus = int(0.85 * n_gpus)
        cluster_rows.append(
            [
                n_gpus,
                _cross_tor(orch, n_nodes, job_gpus, 0.05, "greedy", seed=1),
                _cross_tor(orch, n_nodes, job_gpus, 0.05, "optimized", seed=1),
            ]
        )
    results["cluster"] = cluster_rows

    # 17b: job-scale ratio sweep at 5% faults on 8,192 GPUs.
    n_gpus = 8192
    n_nodes = n_gpus // GPUS_PER_NODE
    orch = _orchestrator(n_nodes)
    scale_rows = []
    for ratio in (0.70, 0.75, 0.80, 0.85, 0.90):
        job_gpus = int(ratio * n_gpus)
        scale_rows.append(
            [
                ratio,
                _cross_tor(orch, n_nodes, job_gpus, 0.05, "greedy", seed=2),
                _cross_tor(orch, n_nodes, job_gpus, 0.05, "optimized", seed=2),
            ]
        )
    results["job_scale"] = scale_rows

    # 17c: fault-ratio sweep at 85% job scale on 8,192 GPUs.
    fault_rows = []
    for fault_ratio in (0.0, 0.01, 0.03, 0.05, 0.07, 0.09):
        job_gpus = int(0.85 * n_gpus)
        fault_rows.append(
            [
                fault_ratio,
                _cross_tor(orch, n_nodes, job_gpus, fault_ratio, "greedy", seed=3),
                _cross_tor(orch, n_nodes, job_gpus, fault_ratio, "optimized", seed=3),
            ]
        )
    results["fault"] = fault_rows
    return results


def test_fig17_cross_tor(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    text = (
        "Figure 17a (cluster-size sensitivity, 5% faults, 85% job scale):\n"
        + format_table(["Cluster GPUs", "Baseline", "Optimized"], results["cluster"])
        + "\n\nFigure 17b (job-scale ratio, 5% faults, 8192 GPUs):\n"
        + format_table(["Job-scale ratio", "Baseline", "Optimized"], results["job_scale"])
        + "\n\nFigure 17c (fault-ratio sensitivity, 85% job scale, 8192 GPUs):\n"
        + format_table(["Node fault ratio", "Baseline", "Optimized"], results["fault"])
    )
    emit_report("fig17_cross_tor", text)

    # Shape: the optimized algorithm beats the greedy baseline everywhere;
    # the baseline hovers near the DCN share of total traffic (~10%) and is
    # insensitive to cluster size; the optimized scheme is near zero without
    # faults and degrades gracefully as faults accumulate.
    for rows in results.values():
        for row in rows:
            baseline, optimized = row[-2], row[-1]
            assert optimized < baseline
    baseline_cluster = [row[1] for row in results["cluster"]]
    assert max(baseline_cluster) - min(baseline_cluster) < 0.03
    assert results["fault"][0][2] < 0.01           # optimized, no faults
    assert all(row[1] > 0.06 for row in results["fault"])  # baseline level
    optimized_fault = [row[2] for row in results["fault"]]
    assert optimized_fault[0] <= optimized_fault[-1]
