"""Figure 12: OCSTrx bit error rate versus OMA and ambient temperature."""

from conftest import emit_report, format_table

from repro.hardware.optics import (
    BER_TEMPERATURES_C,
    INDUSTRIAL_BER_THRESHOLD,
    OpticalMeasurementCampaign,
)

OMA_SWEEP_MW = (0.25, 0.5, 0.75, 1.0, 1.25)


def _run():
    campaign = OpticalMeasurementCampaign(seed=2025)
    return campaign.figure12_ber(OMA_SWEEP_MW)


def test_fig12_ber(benchmark):
    sweeps = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for temp in BER_TEMPERATURES_C:
        rows.append([f"{temp:.0f} C"] + [ber for _, ber in sweeps[temp]])
    text = format_table(["Temperature"] + [f"OMA {o} mW" for o in OMA_SWEEP_MW], rows)
    emit_report("fig12_ber", text)

    # Paper: BER is 0 at -5 C and 25 C across the sweep; at 50/75 C errors
    # appear only at very low OMA and always stay below the industrial limit
    # at the nominal operating point.
    for oma, ber in sweeps[-5.0]:
        assert ber == 0.0
    for oma, ber in sweeps[25.0]:
        assert ber == 0.0
    assert any(ber > 0.0 for _, ber in sweeps[75.0])
    for temp in BER_TEMPERATURES_C:
        nominal = dict(sweeps[temp])[0.75]
        assert nominal <= INDUSTRIAL_BER_THRESHOLD
