"""Figures 13 and 21: CDF of the GPU waste ratio over the production-style trace.

Replays the 348-day 4-GPU-node fault trace on a 2,880-GPU cluster for every
HBD architecture (event-driven over the exact interval timeline) and reports
the exact duration-weighted mean / p50 / p99 waste ratio per TP size (the
CDFs of Figures 13 and 21 summarised by their quantiles).
"""

from conftest import SIM_NODES_4GPU, TP_SIZES, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.sweeps import architecture_comparison_over_trace


def _run(trace_4gpu, tp_size):
    return architecture_comparison_over_trace(
        default_architectures(4), trace_4gpu, tp_size=tp_size, n_nodes=SIM_NODES_4GPU
    )


def test_fig13_waste_cdf(benchmark, trace_4gpu):
    all_results = {}

    def run_all():
        for tp in TP_SIZES:
            all_results[tp] = _run(trace_4gpu, tp)
        return all_results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for tp, results in all_results.items():
        rows = []
        for name, series in results.items():
            rows.append(
                [
                    name,
                    series.mean_waste_ratio,
                    series.waste_ratio_quantile(0.50),
                    series.p99_waste_ratio,
                ]
            )
        sections.append(
            f"TP-{tp}:\n"
            + format_table(["Architecture", "mean waste", "p50 waste", "p99 waste"], rows)
        )
    emit_report("fig13_waste_cdf", "\n\n".join(sections))

    # Headline shape for TP-32 (Figure 13b): InfiniteHBD ~near-zero, far below
    # NVL-72 and TPUv4; K=2 tracks K=3; K=3 tracks the Big-Switch ideal.
    tp32 = all_results[32]
    inf3 = tp32["InfiniteHBD(K=3)"].mean_waste_ratio
    inf2 = tp32["InfiniteHBD(K=2)"].mean_waste_ratio
    assert inf3 < 0.01
    assert abs(inf3 - tp32["Big-Switch"].mean_waste_ratio) < 0.002
    assert inf2 - inf3 < 0.01
    assert tp32["NVL-72"].mean_waste_ratio > 5 * max(inf3, 1e-6)
    assert tp32["TPUv4"].mean_waste_ratio > 3 * max(inf3, 1e-6)
