"""Table 6: interconnect cost and power per GPU and per GBps."""

from conftest import emit_report, format_table

from repro.cost.analysis import cost_reduction_vs, interconnect_cost_table


def _run():
    return interconnect_cost_table()


def test_table6_interconnect_cost(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["Architecture", "Per-GPU Cost ($)", "Per-GPU Watts", "Per-GBps Cost ($)", "Per-GBps Watts"],
        [[r.name, r.cost_per_gpu, r.power_per_gpu, r.cost_per_gBps, r.power_per_gBps] for r in rows],
    )
    reductions = (
        f"\nInfiniteHBD(K=2) per-GBps cost reduction vs NVL-72:  "
        f"{cost_reduction_vs('InfiniteHBD(K=2)', 'NVL-72'):.2f}x\n"
        f"InfiniteHBD(K=2) per-GBps cost reduction vs TPUv4:   "
        f"{cost_reduction_vs('InfiniteHBD(K=2)', 'TPUv4'):.2f}x"
    )
    emit_report("table6_interconnect_cost", text + reductions)

    by_name = {r.name: r for r in rows}
    # Published headline numbers: 3.24x vs NVL-72, 1.59x vs TPUv4, and
    # InfiniteHBD (K=2) is the cheapest per GBps.
    assert abs(cost_reduction_vs("InfiniteHBD(K=2)", "NVL-72") - 3.24) < 0.05
    assert abs(cost_reduction_vs("InfiniteHBD(K=2)", "TPUv4") - 1.59) < 0.05
    assert min(by_name, key=lambda n: by_name[n].cost_per_gBps) == "InfiniteHBD(K=2)"
    assert abs(by_name["InfiniteHBD(K=2)"].cost_per_gpu - 2626.80) < 1.0
    assert abs(by_name["NVL-72"].cost_per_gpu - 9563.20) < 1.0
