"""Ablation: end-to-end job goodput over the fault trace.

Not a figure of the paper, but the job-centric consequence of its
fault-resilience results: the same near-full-cluster training job replayed on
every architecture accumulates waiting time whenever fragmentation or fault
propagation pushes the usable GPU count below the job size.
"""

from conftest import SIM_NODES_4GPU, emit_report, format_table

from repro.hbd import default_architectures
from repro.simulation.goodput import GoodputConfig, goodput_comparison

JOB_GPUS = 2560
TP_SIZE = 32


def _run(trace_4gpu):
    config = GoodputConfig(
        job_gpus=JOB_GPUS,
        tp_size=TP_SIZE,
        checkpoint_interval_hours=1.0,
        restart_overhead_hours=0.25,
    )
    return goodput_comparison(
        default_architectures(4), trace_4gpu, config, n_nodes=SIM_NODES_4GPU
    )


def test_ablation_goodput(benchmark, trace_4gpu):
    reports = benchmark.pedantic(_run, rounds=1, iterations=1, args=(trace_4gpu,))
    rows = [
        [
            name,
            report.goodput,
            report.waiting_fraction,
            report.restart_hours,
            report.job_impacting_faults,
        ]
        for name, report in reports.items()
    ]
    text = format_table(
        ["Architecture", "goodput", "waiting fraction", "restart hours", "impacting faults"],
        rows,
    ) + f"\n\n(job: {JOB_GPUS} GPUs, TP-{TP_SIZE}, cluster {SIM_NODES_4GPU * 4} GPUs)"
    emit_report("ablation_goodput", text)

    inf = reports["InfiniteHBD(K=3)"]
    assert inf.goodput >= reports["NVL-36"].goodput
    assert inf.goodput >= reports["SiP-Ring"].goodput
    assert inf.waiting_fraction <= reports["NVL-72"].waiting_fraction
    assert abs(inf.goodput - reports["Big-Switch"].goodput) < 0.02
