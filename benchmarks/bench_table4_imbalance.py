"""Table 4: TP vs EP MFU for GPT-MoE under expert-imbalance coefficients."""

from conftest import emit_report, format_table

from repro.training.parallelism import tp_vs_ep_imbalance_table

IMBALANCE_COEFS = (0.0, 0.1, 0.2, 0.3)


def _run():
    return tp_vs_ep_imbalance_table(
        world_size=1024, global_batch=1536, imbalance_coefs=IMBALANCE_COEFS
    )


def test_table4_tp_vs_ep_imbalance(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ["TP (EP=1)"] + [table["tp"][c] for c in IMBALANCE_COEFS],
        ["EP (best >1)"] + [table["ep"][c] for c in IMBALANCE_COEFS],
    ]
    text = format_table(
        ["strategy"] + [f"imbalance {c:.0%}" for c in IMBALANCE_COEFS], rows
    )
    emit_report("table4_tp_vs_ep_imbalance", text)

    # Paper shape: TP insensitive to imbalance; EP slightly ahead when
    # balanced but degrades monotonically and falls below TP by ~20-30%.
    ep_series = [table["ep"][c] for c in IMBALANCE_COEFS]
    assert ep_series == sorted(ep_series, reverse=True)
    assert table["ep"][0.0] >= table["tp"][0.0] * 0.98
    assert table["ep"][0.3] < table["tp"][0.3]
