"""Timeline engine: exact event-driven replay vs the seed's grid-sampled replay.

The seed computed every trace-driven metric by sampling the fault trace on a
fixed grid, with a full O(n_events) scan per sample -- O(samples x events)
total.  The event-driven engine sweeps the trace once into its exact interval
timeline and replays O(intervals) memoized breakdowns, independent of the
sampling resolution, and its aggregates are exact (duration-weighted) rather
than grid-dependent.

This benchmark replays a 90-day, 5,000-node trace at the seed's hourly
resolution both ways and asserts the exact path wins by >= 5x while agreeing
on the replayed metrics (the synthetic trace is day-granular, so the hourly
grid mean is already exact and the two paths must coincide).

The second benchmark gates the *incremental* layer on top of the exact
engine: on a 1-year, 10,000-node sub-hourly trace almost every interval has
a distinct fault set, so the memoized full-recompute replay pays
O(n_nodes) per interval while the delta walk
(``architecture.breakdown_delta``) pays O(events at the boundary).  The
delta replay must win by >= 3x while agreeing bit-for-bit.
"""

import time

import numpy as np
from conftest import emit_report, format_table

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.trace import FaultEvent, FaultTrace, HOURS_PER_DAY
from repro.hbd import NVLHBD
from repro.simulation.cluster import replay_intervals

N_NODES = 5000
DURATION_DAYS = 90
TP_SIZE = 32
SAMPLE_INTERVAL_HOURS = 1.0
MIN_SPEEDUP = 5.0

DELTA_N_NODES = 10_000
DELTA_DURATION_DAYS = 365
DELTA_N_EVENTS = 6_000
MIN_DELTA_SPEEDUP = 3.0


def _seed_grid_replay(arch, trace):
    """The seed algorithm: per-sample trace scans + one breakdown per sample."""
    times = trace.sample_times(SAMPLE_INTERVAL_HOURS)
    waste_ratios = []
    usable = []
    for t in times:
        fault_set = frozenset(e.node_id for e in trace.events if e.active_at(t))
        breakdown = arch.breakdown(trace.n_nodes, fault_set, TP_SIZE)
        waste_ratios.append(breakdown.waste_ratio)
        usable.append(breakdown.usable_gpus)
    return waste_ratios, usable


def _exact_replay(arch, trace):
    # First call pays the (cached thereafter) O(events log events) sweep.
    return replay_intervals(arch, trace.interval_timeline(), TP_SIZE)


def test_timeline_engine_speedup(benchmark):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=N_NODES, duration_days=DURATION_DAYS, seed=90)
    )
    arch = NVLHBD(72, gpus_per_node=8)

    start = time.perf_counter()
    grid_waste, grid_usable = _seed_grid_replay(arch, trace)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    series = _exact_replay(arch, trace)
    exact_seconds = time.perf_counter() - start
    speedup = seed_seconds / max(exact_seconds, 1e-9)

    # Report the (cached-sweep) steady-state replay through the bench harness.
    benchmark.pedantic(
        _exact_replay, rounds=1, iterations=1, args=(arch, trace)
    )

    grid_mean = sum(grid_waste) / len(grid_waste)
    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes (8-GPU)", trace.n_nodes],
            ["trace days", trace.duration_days],
            ["fault events", len(trace)],
            ["exact intervals", len(series)],
            ["grid samples (hourly)", len(grid_waste)],
            ["seed grid replay (s)", seed_seconds],
            ["exact interval replay (s)", exact_seconds],
            ["speedup", speedup],
            ["exact mean waste", series.mean_waste_ratio],
            ["exact p99 waste", series.p99_waste_ratio],
            ["exact min usable GPUs", series.min_usable_gpus],
        ],
    )
    emit_report(
        "timeline_engine",
        text,
        gates=[
            ("exact replay >= 5x seed grid scan", speedup, MIN_SPEEDUP, ">="),
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"exact replay only {speedup:.1f}x faster than the seed grid path"
    )
    # The synthetic trace is day-granular, so the hourly grid misses nothing:
    # both paths must agree exactly on the replayed aggregates.
    assert series.mean_waste_ratio == grid_mean or abs(
        series.mean_waste_ratio - grid_mean
    ) < 1e-12
    assert series.min_usable_gpus == min(grid_usable)


def _subhourly_trace(n_nodes, duration_days, n_events, seed):
    """Production-style sub-hourly trace: float start times, short repairs."""
    duration_hours = duration_days * HOURS_PER_DAY
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, duration_hours, n_events)
    repairs = rng.exponential(4.0, n_events) + 0.05
    nodes = rng.integers(0, n_nodes, n_events)
    events = [
        FaultEvent(
            node_id=int(node),
            start_hour=float(start),
            end_hour=float(min(start + repair, duration_hours)),
        )
        for node, start, repair in zip(nodes, starts, repairs)
    ]
    return FaultTrace(
        n_nodes=n_nodes, duration_days=duration_days, events=events, gpus_per_node=8
    )


def test_delta_replay_speedup(benchmark):
    trace = _subhourly_trace(
        DELTA_N_NODES, DELTA_DURATION_DAYS, DELTA_N_EVENTS, seed=365
    )
    arch = NVLHBD(72, gpus_per_node=8)
    timeline = trace.interval_timeline()  # swept once, shared by both paths

    start = time.perf_counter()
    full = replay_intervals(arch, timeline, TP_SIZE, incremental=False)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    delta = replay_intervals(arch, timeline, TP_SIZE, incremental=True)
    delta_seconds = time.perf_counter() - start
    speedup = full_seconds / max(delta_seconds, 1e-9)

    benchmark.pedantic(
        replay_intervals,
        rounds=1,
        iterations=1,
        args=(arch, timeline, TP_SIZE),
        kwargs={"incremental": True, "streaming": True},
    )

    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes (8-GPU)", trace.n_nodes],
            ["trace days", trace.duration_days],
            ["fault events", len(trace.events)],
            ["exact intervals", len(timeline)],
            ["distinct fault sets", len(set(i.nodes for i in timeline))],
            ["full-recompute replay (s)", full_seconds],
            ["delta replay (s)", delta_seconds],
            ["speedup", speedup],
            ["mean waste", delta.mean_waste_ratio],
            ["p99 waste", delta.p99_waste_ratio],
            ["min usable GPUs", delta.min_usable_gpus],
        ],
    )
    emit_report(
        "delta_replay",
        text,
        gates=[
            ("NVL delta replay >= 3x full recompute", speedup, MIN_DELTA_SPEEDUP, ">="),
        ],
    )

    # Correctness first: the delta walk must be bit-for-bit the full replay.
    assert delta == full
    assert speedup >= MIN_DELTA_SPEEDUP, (
        f"delta replay only {speedup:.1f}x faster than full recompute"
    )


def test_infinitehbd_delta_replay_speedup(benchmark):
    """The K-hop local update vs the full segment recompute.

    InfiniteHBD's ``usable_gpus`` rebuilds every healthy segment -- O(n)
    Python per interval -- while the local update only re-sweeps the faults
    between the breakpoints around each flipped node.  A smaller sub-hourly
    trace keeps the (gated, slow) full-recompute side affordable in CI.
    """
    from repro.hbd import InfiniteHBDArchitecture

    trace = _subhourly_trace(2000, 120, 2500, seed=120)
    arch = InfiniteHBDArchitecture(k=3, gpus_per_node=8)
    timeline = trace.interval_timeline()

    start = time.perf_counter()
    full = replay_intervals(arch, timeline, TP_SIZE, incremental=False)
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    delta = replay_intervals(arch, timeline, TP_SIZE, incremental=True)
    delta_seconds = time.perf_counter() - start
    speedup = full_seconds / max(delta_seconds, 1e-9)

    benchmark.pedantic(
        replay_intervals,
        rounds=1,
        iterations=1,
        args=(arch, timeline, TP_SIZE),
        kwargs={"incremental": True, "streaming": True},
    )

    text = format_table(
        ["metric", "value"],
        [
            ["trace nodes (8-GPU)", trace.n_nodes],
            ["trace days", trace.duration_days],
            ["fault events", len(trace.events)],
            ["exact intervals", len(timeline)],
            ["full-recompute replay (s)", full_seconds],
            ["K-hop local delta replay (s)", delta_seconds],
            ["speedup", speedup],
            ["mean waste", delta.mean_waste_ratio],
            ["min usable GPUs", delta.min_usable_gpus],
        ],
    )
    emit_report(
        "infinitehbd_delta_replay",
        text,
        gates=[
            (
                "InfiniteHBD K-hop delta >= 3x full recompute",
                speedup,
                MIN_DELTA_SPEEDUP,
                ">=",
            ),
        ],
    )

    assert delta == full
    assert speedup >= MIN_DELTA_SPEEDUP, (
        f"InfiniteHBD delta replay only {speedup:.1f}x faster than full recompute"
    )
