"""Policy shootout: all six scheduling policies on the same congested cluster.

The six policies in the registry -- FIFO, smallest-first, shortest-remaining
(non-preemptive queue orders), Tiresias-style Gittins attained-service queues,
Horus-style k-job look-ahead scoring and the AdaptDL-style re-allocation
optimizer -- replay identical 1,000-job workloads against the 90-day,
5,000-node fault trace: a heavy-tailed mix (lognormal sizes and durations,
sigma ~1.2, offered load ~1x capacity) where head-of-line blocking is
punishing, and a light-tailed "poisson" mix (tight lognormals, moderate
load) where the policies should bunch together.

Two CI gates anchor the comparison:

* ``gittins`` must achieve >= 15% lower mean JCT than non-preemptive FIFO on
  the heavy-tailed workload (mean-JCT ratio >= 1.18) -- the Tiresias result
  that attained-service preemption beats arrival order when job durations
  are heavy-tailed;
* the ``optimizer`` replay must stay <= 3x the expected-value engine's
  (FIFO) runtime -- re-solving the global assignment each boundary may not
  blow up the event sweep.
"""

import math
import time

from conftest import emit_report, format_table

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import NVLHBD
from repro.scheduler import ClusterScheduler, WorkloadConfig, generate_workload
from repro.scheduler.policies import POLICY_NAMES, policy_by_name

N_NODES = 5000
DURATION_DAYS = 90
TP_SIZE = 32
N_JOBS = 1000
MIN_GITTINS_JCT_RATIO = 1.18  # >= 15% lower mean JCT than FIFO
MAX_OPTIMIZER_RUNTIME_RATIO = 3.0

WORKLOADS = {
    "heavy-tailed": WorkloadConfig(
        n_jobs=N_JOBS,
        seed=42,
        tp_size=TP_SIZE,
        max_gpus=8192,
        mean_interarrival_hours=0.5,
        median_tp_groups=8.0,
        sigma_tp_groups=1.2,
        median_work_hours=16.0,
        sigma_work_hours=1.2,
    ),
    "poisson": WorkloadConfig(
        n_jobs=N_JOBS,
        seed=42,
        tp_size=TP_SIZE,
        max_gpus=8192,
        mean_interarrival_hours=0.25,
        median_tp_groups=8.0,
        sigma_tp_groups=0.5,
        median_work_hours=16.0,
        sigma_work_hours=0.4,
    ),
}


def _run_policy(arch, timeline, jobs, name):
    policy = policy_by_name(name)  # per-policy default preemption and knobs
    start = time.perf_counter()
    report = ClusterScheduler(arch, timeline, jobs, policy=policy).run()
    seconds = time.perf_counter() - start
    assert report.all_finished
    for job in report.jobs:
        buckets = job.productive_hours + job.waiting_hours + job.restart_hours
        assert math.isclose(buckets, job.wall_clock_hours, abs_tol=1e-6)
    return report, seconds


def test_policy_shootout(benchmark):
    trace = generate_synthetic_trace(
        SyntheticTraceConfig(n_nodes=N_NODES, duration_days=DURATION_DAYS, seed=90)
    )
    timeline = trace.interval_timeline()
    arch = NVLHBD(72, gpus_per_node=8)

    rows = []
    results = {}
    for workload_name, config in WORKLOADS.items():
        jobs = generate_workload(config)
        for policy_name in POLICY_NAMES:
            report, seconds = _run_policy(arch, timeline, jobs, policy_name)
            results[(workload_name, policy_name)] = (report, seconds)
            rows.append(
                [
                    workload_name,
                    policy_name,
                    "yes" if report.preemptive else "no",
                    report.mean_jct_hours,
                    report.p99_jct_hours,
                    report.mean_queueing_delay_hours,
                    report.cluster_goodput,
                    report.mean_finish_time_fairness,
                    report.jain_fairness_index,
                    sum(job.preemptions for job in report.jobs),
                    seconds,
                ]
            )

    # Steady-state replay of the headline configuration for the bench table.
    heavy = WORKLOADS["heavy-tailed"]
    benchmark.pedantic(
        _run_policy,
        rounds=1,
        iterations=1,
        args=(arch, timeline, generate_workload(heavy), "gittins"),
    )

    fifo_report, fifo_seconds = results[("heavy-tailed", "fifo")]
    gittins_report, _ = results[("heavy-tailed", "gittins")]
    _, optimizer_seconds = results[("heavy-tailed", "optimizer")]
    gittins_ratio = fifo_report.mean_jct_hours / gittins_report.mean_jct_hours
    optimizer_ratio = optimizer_seconds / max(fifo_seconds, 1e-9)

    text = format_table(
        [
            "workload",
            "policy",
            "preempt",
            "mean JCT",
            "p99 JCT",
            "queue",
            "goodput",
            "rho",
            "Jain",
            "preemptions",
            "seconds",
        ],
        rows,
    )
    emit_report(
        "policy_shootout",
        text,
        gates=[
            (
                "gittins mean JCT >= 1.18x lower than FIFO (heavy-tailed)",
                gittins_ratio,
                MIN_GITTINS_JCT_RATIO,
                ">=",
            ),
            (
                "optimizer replay <= 3x expected-value engine runtime",
                optimizer_ratio,
                MAX_OPTIMIZER_RUNTIME_RATIO,
                "<=",
            ),
        ],
    )

    assert gittins_ratio >= MIN_GITTINS_JCT_RATIO, (
        f"gittins mean JCT only {gittins_ratio:.2f}x lower than FIFO on the "
        f"heavy-tailed workload (need >= {MIN_GITTINS_JCT_RATIO}x)"
    )
    assert optimizer_ratio <= MAX_OPTIMIZER_RUNTIME_RATIO, (
        f"optimizer replay {optimizer_ratio:.2f}x the expected-value engine "
        f"runtime (allowed <= {MAX_OPTIMIZER_RUNTIME_RATIO}x)"
    )
