"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed to stdout (visible with ``pytest -s`` or on failure) and persisted to
``benchmarks/results/<name>.txt`` so the regenerated numbers can be inspected
and diffed against the paper after a run.

Benchmarks that *gate* CI (asserted speedup / slowdown bounds) additionally
pass ``gates=[(label, measured, bound, direction), ...]`` to
:func:`emit_report`; the machine-readable ``results/<name>.json`` feeds
``benchmarks/perf_summary.py``, which renders the consolidated markdown perf
table the CI ``perf`` job publishes to ``$GITHUB_STEP_SUMMARY``.
"""

import json
import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.faults.convert import convert_trace_8gpu_to_4gpu          # noqa: E402
from repro.faults.synthetic import (                                  # noqa: E402
    SyntheticTraceConfig,
    generate_synthetic_trace,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Cluster size used by the section 6.2 simulations (2,880 GPUs, 4-GPU nodes).
SIM_NODES_4GPU = 720

#: TP sizes evaluated in the fault-resilience experiments.
TP_SIZES = (8, 16, 32, 64)


def emit_report(name: str, text: str, gates=None) -> None:
    """Print a report block and persist it under benchmarks/results/.

    ``gates`` is an optional list of ``(label, measured, bound, direction)``
    tuples (direction ``">="`` or ``"<="``) describing the CI assertions the
    benchmark enforces; they are persisted as ``results/<name>.json`` for
    the perf-summary table.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    header = f"\n===== {name} =====\n"
    print(header + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    if gates:
        payload = {
            "name": name,
            "gates": [
                {
                    "label": label,
                    "measured": measured,
                    "bound": bound,
                    "direction": direction,
                }
                for label, measured, bound, direction in gates
            ],
        }
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def format_table(headers, rows) -> str:
    """Render a list of rows as a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


@pytest.fixture(scope="session")
def trace_8gpu():
    """Synthetic 348-day production-style trace (8-GPU nodes, Appendix A)."""
    return generate_synthetic_trace(SyntheticTraceConfig(seed=348))


@pytest.fixture(scope="session")
def trace_4gpu(trace_8gpu):
    """The 8-GPU trace converted to 4-GPU nodes (Appendix A Bayes rule)."""
    return convert_trace_8gpu_to_4gpu(trace_8gpu, seed=348)
