"""Section 5.2: ring AllReduce bandwidth utilisation on the mini-cluster."""

from conftest import emit_report, format_table

from repro.collectives.ring_allreduce import RingAllReduceModel


def _run():
    model = RingAllReduceModel()
    summary = model.section52_summary()
    summary["small_packet_latency_advantage"] = model.small_packet_latency_advantage()
    return summary


def test_sec52_ring_allreduce(benchmark):
    summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["metric", "value"],
        [
            ["16-GPU ring AllReduce utilisation", summary["ring_16_gpu_utilization"]],
            ["32-GPU ring AllReduce utilisation", summary["ring_32_gpu_utilization"]],
            ["NVLink-switch 8-GPU utilisation", summary["nvlink_8_gpu_utilization"]],
            ["small-packet latency advantage", summary["small_packet_latency_advantage"]],
        ],
    ) + (
        "\n\nPaper reference: 77.11% (16 GPU), 77.26% (32 GPU), 81.77% "
        "(NVLink 8 GPU), ~13% small-packet latency reduction."
    )
    emit_report("sec52_ring_allreduce", text)

    u16 = summary["ring_16_gpu_utilization"]
    u32 = summary["ring_32_gpu_utilization"]
    assert 0.72 <= u16 <= 0.82
    assert 0.72 <= u32 <= 0.82
    assert abs(u32 - u16) < 0.02                      # minimal degradation with scale
    assert summary["nvlink_8_gpu_utilization"] > u16  # single-node switch is higher
    assert 0.05 < summary["small_packet_latency_advantage"] < 0.25
