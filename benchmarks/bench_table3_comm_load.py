"""Table 3: per-MoE-layer communication load of TP AllReduce vs EP AllToAll."""

from conftest import emit_report, format_table

from repro.training.comm import (
    ep_alltoall_volume_per_layer,
    tp_allreduce_volume_per_layer,
)
from repro.training.models import gpt_moe_1t


def _run():
    model = gpt_moe_1t()
    batch = 1
    rows = []
    for n in (2, 4, 8, 16, 32, 64):
        tp_volume = tp_allreduce_volume_per_layer(
            batch, model.seq_len, model.hidden_dim, n
        )
        ep_volume = ep_alltoall_volume_per_layer(
            batch, model.seq_len, model.hidden_dim, n, model.moe_top_k
        )
        rows.append(
            {
                "parallel_size": n,
                "tp_allreduce_MB": tp_volume / 1e6,
                "ep_alltoall_MB": ep_volume / 1e6,
                "ep_over_tp": ep_volume / tp_volume if tp_volume else 0.0,
            }
        )
    return rows


def test_table3_comm_load(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["n", "TP AllReduce (MB/layer)", "EP AllToAll (MB/layer)", "EP/TP ratio"],
        [
            [r["parallel_size"], r["tp_allreduce_MB"], r["ep_alltoall_MB"], r["ep_over_tp"]]
            for r in rows
        ],
    )
    emit_report("table3_comm_load", table)

    # Table 3 conclusion: EP volume = TP volume * k/n, so EP is cheaper
    # whenever k < n (here k = 2, so every n > 2) and the ratio shrinks as n
    # grows.
    ratios = {r["parallel_size"]: r["ep_over_tp"] for r in rows}
    assert ratios[2] == 1.0
    assert all(ratios[n] < 1.0 for n in (4, 8, 16, 32, 64))
    ordered = [ratios[n] for n in sorted(ratios)]
    assert ordered == sorted(ordered, reverse=True)
