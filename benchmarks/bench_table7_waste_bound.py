"""Table 7: theoretical upper bound on the expected GPU waste ratio."""

from conftest import emit_report, format_table

from repro.analysis.waste_bound import waste_bound_table


def _run():
    return waste_bound_table(tp_size=32)


def test_table7_waste_bound(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["R (GPUs/node)", "node failure rate", "K=2", "K=3", "K=4"],
        [
            [r["gpus_per_node"], r["node_failure_rate"], r["k2_bound"], r["k3_bound"], r["k4_bound"]]
            for r in rows
        ],
    )
    emit_report("table7_waste_bound", text)

    by_r = {r["gpus_per_node"]: r for r in rows}
    # Exact published values (Appendix C, Table 7).
    assert abs(by_r[4]["k2_bound"] - 0.0754) < 0.001
    assert abs(by_r[4]["k3_bound"] - 0.0028) < 0.0005
    assert abs(by_r[8]["k2_bound"] - 0.2502) < 0.001
    assert abs(by_r[8]["k3_bound"] - 0.0181) < 0.001
    # The bound decays rapidly with K.
    for row in rows:
        assert row["k4_bound"] < row["k3_bound"] < row["k2_bound"]
