#!/usr/bin/env python3
"""Render the consolidated CI perf table from the benchmark gate JSONs.

Each gated benchmark persists ``benchmarks/results/<name>.json`` (via
``conftest.emit_report(..., gates=...)``) describing the speedup / slowdown
bounds it asserted and the values it measured.  This script folds them into
one markdown table; the CI ``perf`` job appends its output to
``$GITHUB_STEP_SUMMARY`` so every run publishes the measured numbers next to
their floors.

Usage:  python benchmarks/perf_summary.py [results_dir]
"""

import json
import operator
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

_OPERATORS = {">=": operator.ge, "<=": operator.le}


def load_gates(results_dir):
    """All persisted gate records, sorted by benchmark name."""
    gates = []
    if not os.path.isdir(results_dir):
        return gates
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".json"):
            continue
        with open(os.path.join(results_dir, entry)) as handle:
            payload = json.load(handle)
        for gate in payload.get("gates", ()):
            gates.append(
                {
                    "benchmark": payload.get("name", entry[: -len(".json")]),
                    "label": gate["label"],
                    "measured": float(gate["measured"]),
                    "bound": float(gate["bound"]),
                    "direction": gate["direction"],
                }
            )
    return gates


def render_markdown(gates):
    """The perf table as GitHub-flavoured markdown."""
    lines = [
        "## Benchmark perf gates",
        "",
        "| benchmark | gate | measured | bound | status |",
        "| --- | --- | ---: | ---: | :---: |",
    ]
    if not gates:
        lines.append("| _no gate results found_ | | | | |")
        return "\n".join(lines)
    for gate in gates:
        passed = _OPERATORS[gate["direction"]](gate["measured"], gate["bound"])
        lines.append(
            f"| {gate['benchmark']} | {gate['label']} "
            f"| {gate['measured']:.2f}x | {gate['direction']} {gate['bound']:g}x "
            f"| {'✅' if passed else '❌'} |"
        )
    return "\n".join(lines)


def main(argv):
    results_dir = argv[1] if len(argv) > 1 else RESULTS_DIR
    gates = load_gates(results_dir)
    print(render_markdown(gates))
    return 0 if all(
        _OPERATORS[g["direction"]](g["measured"], g["bound"]) for g in gates
    ) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
