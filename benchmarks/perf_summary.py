#!/usr/bin/env python3
"""Render the consolidated CI perf table from the benchmark gate JSONs.

Each gated benchmark persists ``benchmarks/results/<name>.json`` (via
``conftest.emit_report(..., gates=...)``) describing the speedup / slowdown
bounds it asserted and the values it measured.  This script folds them into
one markdown table; the CI ``perf`` job appends its output to
``$GITHUB_STEP_SUMMARY`` so every run publishes the measured numbers next to
their floors.

Trend tracking: with ``--emit-bench --sha <sha>`` the collected measurements
are also persisted as ``results/BENCH_<sha>.json`` (uploaded as a CI
artifact, and one snapshot per landed tentpole is committed to the repo so a
fresh checkout always has a baseline).  The table then grows a ``trend``
column comparing each gate's measured value against the most recent previous
``BENCH_*.json`` -- perf regressions show up as a percentage drift next to
the hard bound, before they ever trip it.

Usage:  python benchmarks/perf_summary.py [results_dir]
                                          [--sha SHA] [--emit-bench]
                                          [--previous BENCH_JSON]
"""

import argparse
import json
import operator
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

_OPERATORS = {">=": operator.ge, "<=": operator.le}

_BENCH_PREFIX = "BENCH_"


def load_gates(results_dir):
    """All persisted gate records, sorted by benchmark name.

    ``BENCH_<sha>.json`` snapshots live in the same directory but are
    aggregates of these records, not gate sources -- skip them.
    """
    gates = []
    if not os.path.isdir(results_dir):
        return gates
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".json") or entry.startswith(_BENCH_PREFIX):
            continue
        with open(os.path.join(results_dir, entry)) as handle:
            payload = json.load(handle)
        for gate in payload.get("gates", ()):
            gates.append(
                {
                    "benchmark": payload.get("name", entry[: -len(".json")]),
                    "label": gate["label"],
                    "measured": float(gate["measured"]),
                    "bound": float(gate["bound"]),
                    "direction": gate["direction"],
                }
            )
    return gates


def emit_bench(results_dir, sha, gates):
    """Persist this run's measurements as ``BENCH_<sha>.json``."""
    path = os.path.join(results_dir, f"{_BENCH_PREFIX}{sha}.json")
    os.makedirs(results_dir, exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"sha": sha, "gates": gates}, handle, indent=2)
        handle.write("\n")
    return path


def find_previous_bench(results_dir, current_sha=None):
    """Path of the most recent ``BENCH_*.json``, excluding the current sha.

    "Most recent" is by mtime with filename as tie-break: in CI the
    committed baseline and the just-emitted snapshot are distinguished by
    mtime; in a fresh checkout all committed snapshots share one mtime and
    the name ordering keeps the choice deterministic.
    """
    if not os.path.isdir(results_dir):
        return None
    candidates = []
    for entry in os.listdir(results_dir):
        if not entry.startswith(_BENCH_PREFIX) or not entry.endswith(".json"):
            continue
        sha = entry[len(_BENCH_PREFIX) : -len(".json")]
        if current_sha is not None and sha == current_sha:
            continue
        path = os.path.join(results_dir, entry)
        candidates.append((os.path.getmtime(path), entry, path))
    if not candidates:
        return None
    return max(candidates)[2]


def load_previous(path):
    """Previous measurements keyed by (benchmark, label), or empty."""
    if path is None or not os.path.isfile(path):
        return {}
    with open(path) as handle:
        payload = json.load(handle)
    return {
        (gate["benchmark"], gate["label"]): float(gate["measured"])
        for gate in payload.get("gates", ())
    }


def _trend(gate, previous):
    baseline = previous.get((gate["benchmark"], gate["label"]))
    if baseline is None:
        return "new"
    if baseline == 0.0:
        return "n/a"
    delta = (gate["measured"] - baseline) / abs(baseline) * 100.0
    if abs(delta) < 0.5:
        return "= 0%"
    arrow = "▲" if delta > 0 else "▼"
    return f"{arrow} {delta:+.1f}%"


def render_markdown(gates, previous=None):
    """The perf table as GitHub-flavoured markdown.

    ``previous`` (a ``load_previous`` mapping) adds a trend column with the
    drift of each measured value versus the prior run's snapshot.
    """
    with_trend = previous is not None
    header = "| benchmark | gate | measured | bound | status |"
    rule = "| --- | --- | ---: | ---: | :---: |"
    if with_trend:
        header += " trend |"
        rule += " ---: |"
    lines = ["## Benchmark perf gates", "", header, rule]
    if not gates:
        lines.append("| _no gate results found_ | | | | |" + (" |" if with_trend else ""))
        return "\n".join(lines)
    for gate in gates:
        passed = _OPERATORS[gate["direction"]](gate["measured"], gate["bound"])
        row = (
            f"| {gate['benchmark']} | {gate['label']} "
            f"| {gate['measured']:.2f}x | {gate['direction']} {gate['bound']:g}x "
            f"| {'✅' if passed else '❌'} |"
        )
        if with_trend:
            row += f" {_trend(gate, previous)} |"
        lines.append(row)
    return "\n".join(lines)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results_dir", nargs="?", default=RESULTS_DIR)
    parser.add_argument("--sha", default=None, help="commit sha of this run")
    parser.add_argument(
        "--emit-bench",
        action="store_true",
        help="persist this run's measurements as BENCH_<sha>.json (needs --sha)",
    )
    parser.add_argument(
        "--previous",
        default=None,
        help="explicit previous BENCH_*.json (default: newest in results_dir)",
    )
    args = parser.parse_args(argv[1:])

    gates = load_gates(args.results_dir)
    previous_path = args.previous or find_previous_bench(args.results_dir, args.sha)
    previous = load_previous(previous_path)
    if args.emit_bench:
        if not args.sha:
            parser.error("--emit-bench requires --sha")
        emit_bench(args.results_dir, args.sha, gates)
    print(render_markdown(gates, previous))
    return 0 if all(
        _OPERATORS[g["direction"]](g["measured"], g["bound"]) for g in gates
    ) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
