"""Monte-Carlo replay: one vectorized batch pass vs a loop of scalar replays.

A 100-seed uncertainty sweep used to mean 100 independent Python interval
replays.  ``repro.mc.replay_batch`` replays the whole seed block in one
vectorized pass over the stacked columnar event log (segmented cumsums +
per-domain table gathers), with per-seed results bit-for-bit equal to the
scalar ``replay_intervals`` output.  This benchmark stacks 100 synthetic
seeds, replays them both ways, verifies the bit-for-bit contract, and gates
the batched engine at >= 10x over the scalar loop.

Trace sampling and the per-seed timeline materialisation both happen
*outside* the timed regions: the comparison is replay vs replay.
"""

import time

from conftest import emit_report, format_table

from repro.hbd import NVLHBD
from repro.mc import BatchTraceConfig, replay_batch, sample_trace_batch
from repro.simulation.cluster import replay_intervals

N_SEEDS = 100
N_NODES = 400
DURATION_DAYS = 348
TP_SIZE = 32
MIN_SPEEDUP = 10.0


def _scalar_loop(architecture, timelines):
    return [replay_intervals(architecture, tl, TP_SIZE) for tl in timelines]


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_mc_replay_speedup(benchmark):
    batch = sample_trace_batch(
        BatchTraceConfig(
            n_seeds=N_SEEDS,
            n_nodes=N_NODES,
            duration_days=DURATION_DAYS,
            gpus_per_node=8,
            seed=120,
        )
    )
    architecture = NVLHBD(72, gpus_per_node=8)
    # Materialised outside the timed region: the scalar loop is charged for
    # its replays only, not for slicing timelines back out of the batch.
    timelines = [batch.timeline_for_seed(i) for i in range(batch.n_seeds)]

    # Warm-up: one untimed pass each, so neither side is charged for
    # first-call setup (columnar caches, numpy kernel dispatch).
    scalar_series = _scalar_loop(architecture, timelines)
    batch_series = replay_batch(architecture, batch, TP_SIZE)

    scalar_seconds = min(
        _timed(_scalar_loop, architecture, timelines) for _ in range(3)
    )
    batch_seconds = min(
        _timed(replay_batch, architecture, batch, TP_SIZE) for _ in range(3)
    )
    speedup = scalar_seconds / max(batch_seconds, 1e-9)

    benchmark.pedantic(
        replay_batch, rounds=1, iterations=1, args=(architecture, batch, TP_SIZE)
    )

    # The whole point of the batched engine: per-seed bit-for-bit equality.
    for index, reference in enumerate(scalar_series):
        got = batch_series.series_for_seed(index)
        assert got.starts_hours == reference.starts_hours
        assert got.ends_hours == reference.ends_hours
        assert got.waste_ratios == reference.waste_ratios
        assert got.usable_gpus == reference.usable_gpus
        assert got.faulty_gpus == reference.faulty_gpus
    means = batch_series.mean_waste_ratios()
    assert all(
        means[i] == scalar_series[i].mean_waste_ratio for i in range(N_SEEDS)
    )

    text = format_table(
        ["metric", "value"],
        [
            ["seeds", N_SEEDS],
            ["trace nodes (8-GPU)", N_NODES],
            ["trace days", DURATION_DAYS],
            ["stacked events", len(batch.log)],
            ["stacked intervals", len(batch_series)],
            ["scalar loop (s)", scalar_seconds],
            ["batched pass (s)", batch_seconds],
            ["speedup", speedup],
            ["mean waste (seed 0)", means[0]],
            ["cross-seed mean waste", sum(means) / len(means)],
        ],
    )
    emit_report(
        "mc_replay",
        text,
        gates=[
            (
                f"batched {N_SEEDS}-seed replay >= {MIN_SPEEDUP:.0f}x scalar loop",
                speedup,
                MIN_SPEEDUP,
                ">=",
            ),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched replay only {speedup:.1f}x faster than the scalar loop"
    )
