"""Rule engine for the ``repro`` determinism linter.

The repo's headline guarantees are determinism contracts: byte-identical
:class:`~repro.scheduler.report.ClusterReport` JSON per seed, bit-for-bit
delta-vs-full replay equality, sha256 spec digests as cache keys.  Those
contracts rest on coding rules (seeded RNG only, no wall-clock reads in
engine code, ordered iteration over fault sets, frozen specs) that nothing
used to enforce.  This module is the framework that machine-checks them:
findings, configuration, ``# repro: allow[...]`` suppression comments, and
the per-file driver.  The concrete D0xx rules live in
:mod:`repro.devtools.rules`; the command-line front end in
:mod:`repro.devtools.lint`.

Configuration is read from ``[tool.repro-lint]`` in ``pyproject.toml``
(kebab-case keys).  The built-in defaults mirror the repository's committed
configuration, so the linter behaves identically when no ``pyproject.toml``
is found (or when :mod:`tomllib` is unavailable on Python 3.10).
"""

from __future__ import annotations

import ast
import fnmatch
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Inline suppression comment: ``# repro: allow[D001]`` / ``allow[D001, D003]``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\]")

_CODE_RE = re.compile(r"^[A-Z]\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (or suppressed violation) at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    module: str = ""

    def render(self) -> str:
        """Human-readable one-liner in the classic ``path:line:col`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "module": self.module,
        }


@dataclass(frozen=True)
class LintConfig:
    """Linter configuration (``[tool.repro-lint]`` in ``pyproject.toml``).

    Module lists are dotted-prefix filters: ``"repro.scheduler"`` matches the
    package and everything below it.

    >>> config = LintConfig()
    >>> config.applies("repro.scheduler.engine", config.ordered_modules)
    True
    >>> config.applies("repro.simulation.cluster", config.ordered_modules)
    False
    """

    #: Modules where unseeded RNG (D001) and wall-clock reads (D002) are
    #: forbidden.  Everything under ``repro`` is engine code; benchmarks and
    #: scripts live outside ``src/``.
    engine_modules: tuple[str, ...] = ("repro",)
    #: Modules whose outputs feed reports or digests: unordered set iteration
    #: (D003) and bare float accumulation (D004) are forbidden here.
    ordered_modules: tuple[str, ...] = (
        "repro.api",
        "repro.scheduler",
        "repro.faults",
        "repro.analysis",
        "repro.hbd.base",
    )
    #: Modules whose dataclasses are serialized specs and must be frozen (D006).
    spec_modules: tuple[str, ...] = (
        "repro.api.spec",
        "repro.scheduler.jobs",
        "repro.scheduler.report",
        "repro.scheduler.workload",
    )
    #: Modules allowed to accumulate floats bare (D004) because they *are* the
    #: blessed accumulators (e.g. ``StreamingDistribution``).
    accumulation_allow_modules: tuple[str, ...] = ("repro.analysis.cdf",)
    #: Rule codes disabled globally.
    ignore: tuple[str, ...] = ()
    #: Path glob patterns skipped entirely.
    exclude: tuple[str, ...] = ()
    #: Mapping of path glob -> rule codes ignored for matching files.
    per_file_ignores: tuple[tuple[str, tuple[str, ...]], ...] = ()

    @staticmethod
    def applies(module: str, prefixes: Sequence[str]) -> bool:
        """True when ``module`` equals or lives under one of ``prefixes``."""
        return any(module == p or module.startswith(p + ".") for p in prefixes)

    def ignored_codes_for(self, path: str) -> set[str]:
        codes = set(self.ignore)
        posix = Path(path).as_posix()
        for pattern, extra in self.per_file_ignores:
            if fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch(Path(posix).name, pattern):
                codes.update(extra)
        return codes

    @classmethod
    def from_mapping(cls, data: dict[str, Any]) -> LintConfig:
        """Build a config from a parsed ``[tool.repro-lint]`` table."""
        known = {f.name for f in fields(cls)}
        kwargs: dict[str, Any] = {}
        for raw_key, value in data.items():
            key = raw_key.replace("-", "_")
            if key not in known:
                raise ValueError(f"unknown [tool.repro-lint] key: {raw_key!r}")
            if key == "per_file_ignores":
                if not isinstance(value, dict):
                    raise ValueError("per-file-ignores must be a table of glob -> code list")
                kwargs[key] = tuple(
                    (pattern, tuple(_check_codes(codes, raw_key)))
                    for pattern, codes in sorted(value.items())
                )
            elif key == "ignore":
                kwargs[key] = tuple(_check_codes(value, raw_key))
            else:
                if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
                    raise ValueError(f"[tool.repro-lint] {raw_key} must be a list of strings")
                kwargs[key] = tuple(value)
        return cls(**kwargs)

    @classmethod
    def from_pyproject(cls, path: Path) -> LintConfig:
        """Load ``[tool.repro-lint]`` from a ``pyproject.toml`` file."""
        if tomllib is None:  # pragma: no cover - Python 3.10 fallback
            raise RuntimeError(
                "tomllib is unavailable (Python < 3.11); "
                "run the linter with its built-in defaults instead of --config"
            )
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("repro-lint", {})
        return cls.from_mapping(table)


def _check_codes(codes: Any, key: str) -> list[str]:
    if not isinstance(codes, list) or not all(
        isinstance(c, str) and _CODE_RE.match(c) for c in codes
    ):
        raise ValueError(f"[tool.repro-lint] {key} entries must be rule codes like 'D001'")
    return codes


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Path | None = None) -> LintConfig:
    """Locate and load the nearest ``pyproject.toml`` config, else defaults."""
    pyproject = find_pyproject(start or Path.cwd())
    if pyproject is None or tomllib is None:
        return LintConfig()
    return LintConfig.from_pyproject(pyproject)


def module_name_for_path(path: Path) -> str:
    """Dotted module name of ``path``, walking up through ``__init__.py`` packages.

    >>> module_name_for_path(Path("src/repro/scheduler/engine.py"))
    'repro.scheduler.engine'
    """
    parts: list[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    return ".".join(reversed(parts)) or path.stem


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule codes allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            allowed.setdefault(lineno, set()).update(codes)
    return allowed


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    source: str
    tree: ast.Module
    config: LintConfig
    #: Imported-name aliases (``np`` -> ``numpy``, ``time`` -> ``time.time``).
    aliases: dict[str, str] = field(default_factory=dict)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            module=self.module,
        )

    def in_modules(self, prefixes: Sequence[str]) -> bool:
        return self.config.applies(self.module, prefixes)


class Rule:
    """Base class for one D0xx determinism rule.

    Subclasses set the class attributes and implement :meth:`check`.  The
    ``bad`` / ``good`` snippets double as documentation (``--explain``) and
    as test fixtures: linting ``bad`` in ``example_module`` must yield the
    rule's code, linting ``good`` must not.
    """

    code: str = "D000"
    title: str = ""
    rationale: str = ""
    #: Module name under which the example snippets are linted.
    example_module: str = "repro.example"
    bad: str = ""
    good: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        lines = [f"{cls.code}: {cls.title}", "", cls.rationale.strip(), ""]
        if cls.bad:
            lines += ["Bad:", *("    " + ln for ln in cls.bad.strip().splitlines()), ""]
        if cls.good:
            lines += ["Good:", *("    " + ln for ln in cls.good.strip().splitlines()), ""]
        lines.append(f"Suppress with: # repro: allow[{cls.code}]")
        return "\n".join(lines)


@dataclass(frozen=True)
class LintResult:
    """Outcome of linting a set of files."""

    findings: tuple[Finding, ...]
    #: Violations silenced by an inline ``# repro: allow[...]`` comment; kept
    #: so tooling can audit where the contracts are being waived.
    suppressed: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return {
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": dict(sorted(counts.items())),
        }


def _build_alias_map(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never shadow the stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def lint_source(
    source: str,
    module: str,
    config: LintConfig | None = None,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint one module given as a string (the test / fixture entry point)."""
    from repro.devtools.rules import default_rules

    config = config or LintConfig()
    active = list(rules) if rules is not None else default_rules()
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        config=config,
        aliases=_build_alias_map(tree),
    )
    suppressions = parse_suppressions(source)
    ignored = config.ignored_codes_for(path)

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in active:
        if rule.code in ignored:
            continue
        for finding in rule.check(ctx):
            if finding.code in suppressions.get(finding.line, set()):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return LintResult(findings=tuple(sorted(findings)), suppressed=tuple(sorted(suppressed)))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in deterministic sorted order."""
    seen: set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and merge the results."""
    config = config or LintConfig()
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for path in iter_python_files(paths):
        posix = path.as_posix()
        if any(fnmatch.fnmatch(posix, pattern) for pattern in config.exclude):
            continue
        source = path.read_text(encoding="utf-8")
        module = module_name_for_path(path)
        result = lint_source(source, module=module, config=config, path=posix, rules=rules)
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
    return LintResult(findings=tuple(sorted(findings)), suppressed=tuple(sorted(suppressed)))


__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Rule",
    "find_pyproject",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_config",
    "module_name_for_path",
    "parse_suppressions",
]
