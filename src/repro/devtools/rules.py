"""The D0xx determinism rules enforced by ``python -m repro.devtools.lint``.

Each rule is small and repo-specific: it encodes one coding rule that the
repo's determinism contracts (seeded replay, byte-identical reports, digest
cache keys) depend on.  The ``bad`` / ``good`` snippets on each rule are
both the ``--explain`` documentation and the fixture pairs exercised by the
test suite, so the examples can never rot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from repro.devtools.engine import Finding, ModuleContext, Rule

# --------------------------------------------------------------------- helpers


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def canonical_call_name(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a call target through the module's import aliases.

    ``np.random.normal`` -> ``numpy.random.normal`` under ``import numpy as
    np``; ``time()`` -> ``time.time`` under ``from time import time``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


_SET_ANNOTATIONS = {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset"}
_SET_METHODS = {"difference", "union", "intersection", "symmetric_difference", "copy"}
_SET_OPS = (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    return name is not None and name.split(".")[-1] in _SET_ANNOTATIONS


class _SetTypes:
    """Tracks which local names are statically set-typed inside one scope."""

    def __init__(self, params: Sequence[ast.arg] = ()) -> None:
        self.names: set[str] = {
            param.arg for param in params if _annotation_is_set(param.annotation)
        }

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self.is_set(node.left) or self.is_set(node.right)
        return False

    def observe(self, stmt: ast.stmt) -> None:
        """Record set-typed names bound by an assignment statement."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
            if isinstance(target, ast.Name):
                if self.is_set(value):
                    self.names.add(target.id)
                else:
                    self.names.discard(target.id)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and (
                _annotation_is_set(stmt.annotation)
                or (stmt.value is not None and self.is_set(stmt.value))
            )
        ):
            self.names.add(stmt.target.id)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` in source order without entering nested function scopes."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _scope_nodes(child)


def _iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, Sequence[ast.arg]]]:
    yield tree, ()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            yield node, params


def _has_rng_call(node: ast.AST) -> bool:
    for call in ast.walk(node):
        if isinstance(call, ast.Call):
            name = dotted_name(call.func)
            if name and any(
                "rng" in part.lower() or "random" in part.lower() for part in name.split(".")
            ):
                return True
    return False


def _module_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-level statements, descending into ``if`` / ``try`` blocks."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            for handler in stmt.handlers:
                stack.extend(handler.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)


# ----------------------------------------------------------------------- D001


class UnseededRandomRule(Rule):
    code = "D001"
    title = "unseeded / global RNG in engine code"
    rationale = """
Engine code must draw randomness from an explicitly seeded generator
(``np.random.default_rng(seed)`` / ``random.Random(seed)``): the module-level
``random.*`` and legacy ``np.random.*`` functions share hidden global state,
so any call breaks byte-identical replay for every caller in the process.
"""
    bad = """
import random

def jitter() -> float:
    return random.random()
"""
    good = """
import random

def jitter(seed: int) -> float:
    return random.Random(seed).random()
"""

    _RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}
    _NUMPY_OK = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "RandomState",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.engine_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, ctx.aliases)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) == 2 and parts[1] not in self._RANDOM_OK:
                yield ctx.finding(
                    self.code,
                    node,
                    f"call to global RNG {name}(); use an explicitly seeded "
                    "random.Random(seed) instance",
                )
            elif (
                len(parts) >= 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in self._NUMPY_OK
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"call to legacy global RNG {name}(); use "
                    "np.random.default_rng(seed) instead",
                )


# ----------------------------------------------------------------------- D002


class WallClockRule(Rule):
    code = "D002"
    title = "wall-clock read in engine code"
    rationale = """
Simulated time is the only clock engine code may consult.  A wall-clock read
(``time.time()``, ``datetime.now()``) makes output depend on when the code
ran, which breaks replay equality and poisons sha256 digest cache keys.
Benchmarks live outside ``src/`` and may time whatever they like.
"""
    bad = """
import time

def stamp() -> float:
    return time.time()
"""
    good = """
def stamp(now_hours: float) -> float:
    return now_hours
"""

    _CLOCKS = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.engine_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, ctx.aliases)
            if name in self._CLOCKS:
                yield ctx.finding(
                    self.code,
                    node,
                    f"wall-clock read {name}(); engine code must only consume "
                    "simulated time passed in by the caller",
                )


# ----------------------------------------------------------------------- D003


class UnorderedIterationRule(Rule):
    code = "D003"
    title = "ordered output built from unordered set iteration"
    rationale = """
``set`` / ``frozenset`` iteration order depends on insertion history, so any
ordered artifact built from it (a loop with order-dependent effects, a list,
a joined string) can differ between runs that hold the same set.  Modules
that feed reports or digests must iterate ``sorted(...)``.  Comprehensions
that merely rebuild a set are exempt unless they draw randomness, where the
element-to-draw pairing silently depends on iteration order.
"""
    example_module = "repro.scheduler.example"
    bad = """
def report_lines(faulty: set) -> list:
    return [f"node-{node}" for node in faulty]
"""
    good = """
def report_lines(faulty: set) -> list:
    return [f"node-{node}" for node in sorted(faulty)]
"""

    _ORDERED_SINKS = {"list", "tuple", "enumerate"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.ordered_modules):
            return
        for scope, params in _iter_scopes(ctx.tree):
            types = _SetTypes(params)
            for node in _scope_nodes(scope):
                if isinstance(node, ast.stmt):
                    types.observe(node)
                if isinstance(node, ast.For) and types.is_set(node.iter):
                    yield ctx.finding(
                        self.code,
                        node.iter,
                        "iteration over a set/frozenset is unordered; "
                        "iterate over sorted(...) instead",
                    )
                elif isinstance(node, ast.ListComp):
                    for gen in node.generators:
                        if types.is_set(gen.iter):
                            yield ctx.finding(
                                self.code,
                                gen.iter,
                                "list built from unordered set iteration; "
                                "iterate over sorted(...) instead",
                            )
                elif isinstance(node, (ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if types.is_set(gen.iter) and _has_rng_call(node):
                            yield ctx.finding(
                                self.code,
                                gen.iter,
                                "RNG drawn while iterating a set: the element-to-draw "
                                "pairing depends on set order; iterate over sorted(...)",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    sink: str | None = None
                    if isinstance(func, ast.Name) and func.id in self._ORDERED_SINKS:
                        sink = func.id
                    elif isinstance(func, ast.Attribute) and func.attr == "join":
                        sink = "join"
                    if sink and node.args and types.is_set(node.args[0]):
                        yield ctx.finding(
                            self.code,
                            node,
                            f"{sink}() over a set/frozenset produces an unordered "
                            "sequence; pass sorted(...) instead",
                        )


# ----------------------------------------------------------------------- D004


class FloatAccumulationRule(Rule):
    code = "D004"
    title = "bare float accumulation in a duration-weighted loop"
    rationale = """
``total += value * duration`` in a loop accumulates rounding error that
depends on summation order, so two mathematically equal replays can emit
different bytes.  Duration-weighted aggregation must go through
``math.fsum`` or ``repro.analysis.cdf.StreamingDistribution`` (whose module
is allow-listed), or carry an explicit ``# repro: allow[D004]``.
"""
    example_module = "repro.scheduler.example"
    bad = """
def total_waste(intervals) -> float:
    total = 0.0
    for interval in intervals:
        total += interval.waste * interval.duration_hours
    return total
"""
    good = """
import math

def total_waste(intervals) -> float:
    return math.fsum(interval.waste * interval.duration_hours for interval in intervals)
"""

    _WEIGHT_HINTS = ("duration", "hour", "weight", "second", "elapsed")

    def _weighted_product(self, value: ast.expr) -> bool:
        has_mult = any(
            isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)
            for node in ast.walk(value)
        )
        if not has_mult:
            return False
        for node in ast.walk(value):
            name: str | None = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is None:
                continue
            lowered = name.lower()
            if lowered == "dt" or any(hint in lowered for hint in self._WEIGHT_HINTS):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        config = ctx.config
        if not ctx.in_modules(config.ordered_modules):
            return
        if ctx.in_modules(config.accumulation_allow_modules):
            return
        loops: list[ast.AST] = [
            node for node in ast.walk(ctx.tree) if isinstance(node, (ast.For, ast.While))
        ]
        for loop in loops:
            body = loop.body + getattr(loop, "orelse", [])
            for stmt in body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.AugAssign)
                        and isinstance(node.op, ast.Add)
                        and isinstance(node.target, (ast.Name, ast.Attribute))
                        and self._weighted_product(node.value)
                    ):
                        yield ctx.finding(
                            self.code,
                            node,
                            "bare float += of a duration-weighted product in a loop; "
                            "use math.fsum / StreamingDistribution for order-stable sums",
                        )


# ----------------------------------------------------------------------- D005


class MutableDefaultRule(Rule):
    code = "D005"
    title = "mutable default argument"
    rationale = """
A mutable default (``def f(seen=[])``) is created once and shared by every
call, so state leaks between invocations -- hidden cross-call coupling that
seeded replays cannot reproduce.  Default to ``None`` and materialize inside
the function.
"""
    bad = """
def collect(item, seen=[]):
    seen.append(item)
    return seen
"""
    good = """
def collect(item, seen=None):
    seen = [] if seen is None else seen
    seen.append(item)
    return seen
"""

    _MUTABLE_CALLS = {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
    }

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and name.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and self._is_mutable(default):
                    yield ctx.finding(
                        self.code,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build it inside the function",
                    )


# ----------------------------------------------------------------------- D006


class NonFrozenSpecRule(Rule):
    code = "D006"
    title = "non-frozen dataclass in a spec module"
    rationale = """
Spec dataclasses are hashed into sha256 digests and used as cache keys;
mutating one after construction silently desynchronizes the digest from the
object.  Dataclasses in spec modules must be declared ``frozen=True``.
"""
    example_module = "repro.api.spec"
    bad = """
from dataclasses import dataclass

@dataclass
class TraceSlice:
    start: float = 0.0
"""
    good = """
from dataclasses import dataclass

@dataclass(frozen=True)
class TraceSlice:
    start: float = 0.0
"""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.spec_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                if dotted_name(target) not in {"dataclass", "dataclasses.dataclass"}:
                    continue
                frozen = isinstance(decorator, ast.Call) and any(
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in decorator.keywords
                )
                if not frozen:
                    yield ctx.finding(
                        self.code,
                        node,
                        f"dataclass {node.name} in a spec module must be frozen=True "
                        "(specs are digested into cache keys)",
                    )


# ----------------------------------------------------------------------- D007


class CacheMutationRule(Rule):
    code = "D007"
    title = "container mutated while being iterated"
    rationale = """
Mutating a dict / set while iterating it raises ``RuntimeError`` only
sometimes -- for some mutation patterns it silently skips or revisits
entries depending on hash-table internals, which is nondeterministic across
runs.  Iterate over a snapshot (``list(cache)``) instead.
"""
    bad = """
def prune(cache: dict) -> None:
    for key in cache:
        if key < 0:
            del cache[key]
"""
    good = """
def prune(cache: dict) -> None:
    for key in list(cache):
        if key < 0:
            del cache[key]
"""

    _MUTATORS = {"pop", "popitem", "clear", "update", "setdefault", "add", "remove", "discard"}
    _VIEWS = {"items", "keys", "values"}

    def _iterated_name(self, iter_node: ast.expr) -> str | None:
        if isinstance(iter_node, ast.Name):
            return iter_node.id
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in self._VIEWS
            and isinstance(iter_node.func.value, ast.Name)
        ):
            return iter_node.func.value.id
        return None

    def _mutates(self, body: Sequence[ast.stmt], name: str) -> ast.AST | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == name
                        ):
                            return node
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == name
                        ):
                            return node
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return node
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            name = self._iterated_name(node.iter)
            if name is None:
                continue
            site = self._mutates(node.body, name)
            if site is not None:
                yield ctx.finding(
                    self.code,
                    site,
                    f"{name!r} is mutated while being iterated; "
                    f"iterate over a snapshot (for ... in list({name}))",
                )


# ----------------------------------------------------------------------- D008


class AllExportsRule(Rule):
    code = "D008"
    title = "__all__ out of sync with the module's public names"
    rationale = """
The re-export hubs and public modules declare ``__all__`` so the API surface
is explicit (and so mypy's no-implicit-reexport accepts the hubs).  A public
definition missing from ``__all__`` -- or a stale ``__all__`` entry naming
nothing -- silently changes ``import *`` behaviour and what type checkers
consider exported.
"""
    bad = """
def helper() -> None:
    pass

__all__ = ["helper", "missing"]
"""
    good = """
def helper() -> None:
    pass

__all__ = ["helper"]
"""

    _EXEMPT_VALUE_CALLS = {"TypeVar", "ParamSpec", "TypeVarTuple", "NewType", "namedtuple"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        statements = list(_module_statements(ctx.tree))
        declared: list[str] | None = None
        all_node: ast.stmt | None = None
        for stmt in statements:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__all__"
                and isinstance(stmt.value, (ast.List, ast.Tuple))
            ):
                elements = stmt.value.elts
                if all(isinstance(e, ast.Constant) and isinstance(e.value, str) for e in elements):
                    declared = [e.value for e in elements]  # type: ignore[union-attr]
                    all_node = stmt
        if declared is None or all_node is None:
            return

        defined: dict[str, ast.stmt] = {}
        imported: dict[str, ast.stmt] = {}
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.setdefault(stmt.name, stmt)
            elif isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.Call):
                    name = dotted_name(stmt.value.func)
                    if name and name.split(".")[-1] in self._EXEMPT_VALUE_CALLS:
                        continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.setdefault(target.id, stmt)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None and isinstance(stmt.target, ast.Name):
                    defined.setdefault(stmt.target.id, stmt)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in getattr(stmt, "names", []):
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(bound, stmt)

        is_hub = ctx.path.endswith("__init__.py")
        declared_set = set(declared)

        def is_public(name: str) -> bool:
            return not name.startswith("_")

        for name, stmt in sorted(defined.items()):
            if name in imported:
                continue  # ``x = None`` fallback next to a guarded ``import x``
            if is_public(name) and name not in declared_set:
                yield ctx.finding(
                    self.code,
                    stmt,
                    f"public name {name!r} is missing from __all__",
                )
        if is_hub:
            package_root = ctx.module.split(".")[0]
            for name, stmt in sorted(imported.items()):
                if (
                    is_public(name)
                    and isinstance(stmt, ast.ImportFrom)
                    and name not in declared_set
                    and (
                        bool(stmt.level)
                        or (
                            stmt.module is not None
                            and stmt.module.split(".")[0] == package_root
                        )
                    )
                ):
                    yield ctx.finding(
                        self.code,
                        stmt,
                        f"re-export hub imports {name!r} but omits it from __all__",
                    )
        known = set(defined) | set(imported)
        for name in declared:
            if name not in known:
                yield ctx.finding(
                    self.code,
                    all_node,
                    f"__all__ lists {name!r} which the module never defines or imports",
                )


# ----------------------------------------------------------------------- D009


class UnseededGeneratorRule(Rule):
    code = "D009"
    title = "RNG constructed without an explicit seed"
    rationale = """
D001 bans draws from the hidden global RNGs; this rule closes the remaining
gap: *constructing* a generator without a seed (``np.random.default_rng()``,
``np.random.RandomState()``, ``random.Random()``).  An unseeded generator is
seeded from the OS entropy pool, so every run replays differently even though
no global state is touched.  Engine code must thread an explicit seed down to
every generator it creates.
"""
    bad = """
import numpy as np

def sample() -> float:
    rng = np.random.default_rng()
    return float(rng.uniform())
"""
    good = """
import numpy as np

def sample(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.uniform())
"""

    _CONSTRUCTORS = {
        "random.Random",
        "numpy.random.RandomState",
        "numpy.random.default_rng",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_modules(ctx.config.engine_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, ctx.aliases)
            if name not in self._CONSTRUCTORS:
                continue
            if self._is_unseeded(node):
                yield ctx.finding(
                    self.code,
                    node,
                    f"{name}() constructed without an explicit seed; pass a "
                    "deterministic seed so replays are byte-identical",
                )

    @staticmethod
    def _is_unseeded(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for keyword in node.keywords:
            if keyword.arg is None:
                return False  # **kwargs: cannot tell, do not guess
            if keyword.arg == "seed":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is None
        return True


# -------------------------------------------------------------------- registry

_RULE_CLASSES: tuple[type[Rule], ...] = (
    UnseededRandomRule,
    WallClockRule,
    UnorderedIterationRule,
    FloatAccumulationRule,
    MutableDefaultRule,
    NonFrozenSpecRule,
    CacheMutationRule,
    AllExportsRule,
    UnseededGeneratorRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every built-in rule, in code order."""
    return [cls() for cls in _RULE_CLASSES]


def rule_by_code(code: str) -> type[Rule] | None:
    for cls in _RULE_CLASSES:
        if cls.code == code:
            return cls
    return None


__all__ = [
    "AllExportsRule",
    "CacheMutationRule",
    "FloatAccumulationRule",
    "MutableDefaultRule",
    "NonFrozenSpecRule",
    "UnorderedIterationRule",
    "UnseededGeneratorRule",
    "UnseededRandomRule",
    "WallClockRule",
    "canonical_call_name",
    "default_rules",
    "dotted_name",
    "rule_by_code",
]
