"""Command-line front end of the determinism linter.

Run as ``python -m repro.devtools.lint [paths...]`` (or via the ``repro
lint`` CLI subcommand).  Exit status is 0 when clean, 1 when findings
remain, 2 on usage errors -- so the CI ``static-analysis`` job can gate on
it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import TextIO

from repro.devtools.engine import LintConfig, LintResult, lint_paths, load_config
from repro.devtools.rules import default_rules, rule_by_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Determinism linter for the repro engine (rules D001-D009).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest pyproject.toml above the current directory)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print the rationale and examples for one rule code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rule codes and exit",
    )
    return parser


def render_text(result: LintResult, stream: TextIO) -> None:
    for finding in result.findings:
        print(finding.render(), file=stream)
    summary = f"{len(result.findings)} finding(s), {len(result.suppressed)} suppressed"
    print(summary, file=stream)


def run(argv: Sequence[str] | None = None, stream: TextIO | None = None) -> int:
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.title}", file=stream)
        return 0

    if args.explain is not None:
        rule_cls = rule_by_code(args.explain.upper())
        if rule_cls is None:
            parser.error(f"unknown rule code {args.explain!r}; see --list-rules")
        print(rule_cls.explain(), file=stream)
        return 0

    config = (
        LintConfig.from_pyproject(Path(args.config))
        if args.config is not None
        else load_config(Path(args.paths[0]))
    )

    result = lint_paths([Path(p) for p in args.paths], config=config)
    if args.format == "json":
        json.dump(result.to_dict(), stream, indent=2, sort_keys=True)
        print(file=stream)
    else:
        render_text(result, stream)
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    return run(argv)


__all__ = ["build_parser", "main", "render_text", "run"]


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
