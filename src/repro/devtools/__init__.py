"""Developer tooling for the repro engine: the determinism linter.

``python -m repro.devtools.lint src`` (or ``repro lint``) machine-checks
the coding rules behind the repo's determinism contracts -- seeded RNG
only, no wall-clock reads, ordered iteration over fault sets, frozen spec
dataclasses.  See :mod:`repro.devtools.rules` for the rule catalog and
``docs/devtools.md`` for the human-readable version.
"""

from repro.devtools.engine import (
    Finding,
    LintConfig,
    LintResult,
    Rule,
    lint_paths,
    lint_source,
    load_config,
    module_name_for_path,
)
from repro.devtools.rules import default_rules, rule_by_code

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "default_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "module_name_for_path",
    "rule_by_code",
]
