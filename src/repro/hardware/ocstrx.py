"""Behavioural model of the SiPh-based OCS transceiver (OCSTrx).

The OCSTrx (paper section 4.1) is a QSFP-DD 800 Gbps transceiver with a small
optical circuit switch embedded in its photonic integrated circuit.  It
exposes three optical paths:

* ``EXTERNAL_1`` and ``EXTERNAL_2`` -- two external fiber paths, connected to
  different remote nodes (the primary and backup neighbours of the K-Hop Ring
  topology).
* ``LOOPBACK`` -- the cross-lane internal loopback path, which connects the
  two GPUs attached to the same OCSTrx bundle directly to each other and is
  used to terminate a ring inside a node.

Only one path is active at a time (time-division bandwidth allocation): the
transceiver dedicates the full GPU bandwidth to the active path.  Switching
between paths takes 60-80 microseconds.

The :class:`OCSTrxBundle` groups the several physical OCSTrx modules that
serve one GPU pair (e.g. 8 x 800 Gbps modules for a 6.4 Tbps GPU); the bundle
switches as a unit.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.hardware.mzi import MZISwitchMatrix


class PathState(enum.Enum):
    """Optical path selected by the OCSTrx."""

    EXTERNAL_1 = "external_1"
    EXTERNAL_2 = "external_2"
    LOOPBACK = "loopback"
    DARK = "dark"  # no path activated (transceiver idle or failed)


#: Alias used throughout the topology code.
TrxPath = PathState


@dataclass(frozen=True)
class OCSTrxConfig:
    """Static configuration of an OCSTrx module.

    Attributes mirror the published hardware characteristics:

    * ``line_rate_gbps`` -- 800 Gbps per QSFP-DD module.
    * ``serdes_pairs`` -- 8 pairs of TX/RX SerDes per end.
    * ``reconfig_latency_us`` -- (min, max) hardware switching latency.
    * ``core_power_watts`` -- OCS core module power ceiling (3.2 W).
    * ``peripheral_power_watts`` -- peripheral circuitry power (8.5 W at
      8 x 112G).
    """

    line_rate_gbps: float = 800.0
    serdes_pairs: int = 8
    reconfig_latency_us: tuple[float, float] = (60.0, 80.0)
    core_power_watts: float = 3.2
    peripheral_power_watts: float = 8.5
    n_lanes: int = 8

    @property
    def total_power_watts(self) -> float:
        """Total module power; must stay under the 12 W QSFP-DD budget."""
        return self.core_power_watts + self.peripheral_power_watts

    @property
    def line_rate_gBps(self) -> float:
        """Line rate in gigabytes per second."""
        return self.line_rate_gbps / 8.0


@dataclass
class ReconfigurationEvent:
    """Record of a single path switch performed by an OCSTrx."""

    sequence: int
    previous: PathState
    new: PathState
    latency_us: float


_event_counter = itertools.count()


class OCSTrx:
    """A single OCSTrx module.

    The module owns an :class:`~repro.hardware.mzi.MZISwitchMatrix` for the
    cross-lane loopback path and tracks which of its three optical paths is
    active.  Remote endpoints of the two external paths are opaque identifiers
    (typically ``(node_id, trx_index)`` tuples assigned by the topology
    layer).
    """

    def __init__(
        self,
        trx_id: str,
        config: OCSTrxConfig | None = None,
    ) -> None:
        self.trx_id = trx_id
        self.config = config or OCSTrxConfig()
        self.matrix = MZISwitchMatrix(self.config.n_lanes)
        self._state = PathState.DARK
        self._external_peers: dict = {
            PathState.EXTERNAL_1: None,
            PathState.EXTERNAL_2: None,
        }
        self._failed = False
        self._history: list[ReconfigurationEvent] = []

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> PathState:
        """Currently active optical path."""
        return self._state

    @property
    def failed(self) -> bool:
        """Whether the module has been marked failed."""
        return self._failed

    @property
    def history(self) -> list[ReconfigurationEvent]:
        """All reconfiguration events applied to this module."""
        return list(self._history)

    @property
    def active_peer(self):
        """Remote endpoint reachable through the active path, if external."""
        if self._state in self._external_peers:
            return self._external_peers[self._state]
        return None

    def peer(self, path: PathState):
        """Remote endpoint wired to ``path`` (regardless of activation)."""
        if path not in self._external_peers:
            raise ValueError(f"{path} is not an external path")
        return self._external_peers[path]

    # ------------------------------------------------------------ provisioning
    def wire_external(self, path: PathState, peer) -> None:
        """Attach the fiber of an external path to a remote endpoint.

        Wiring is a deployment-time (static) operation and does not count as a
        reconfiguration.
        """
        if path not in self._external_peers:
            raise ValueError(f"{path} is not an external path")
        self._external_peers[path] = peer

    # -------------------------------------------------------------- switching
    def activate(self, path: PathState) -> float:
        """Activate ``path`` and return the reconfiguration latency in us.

        Activating the already-active path costs nothing.  Activating an
        external path requires that a peer has been wired to it.  A failed
        module refuses to switch.
        """
        if self._failed:
            raise RuntimeError(f"OCSTrx {self.trx_id} has failed")
        if path == self._state:
            return 0.0
        if path in self._external_peers and self._external_peers[path] is None:
            raise RuntimeError(
                f"OCSTrx {self.trx_id}: no fiber wired to {path.value}"
            )
        latency = self._switch_latency_us()
        if path is PathState.LOOPBACK:
            # Engage the cross-lane matrix: upper half lanes <-> lower half.
            half = self.config.n_lanes // 2
            mapping = {}
            for lane in range(half):
                mapping[lane] = lane + half
                mapping[lane + half] = lane
            self.matrix.configure(mapping)
        else:
            self.matrix.reset()
        event = ReconfigurationEvent(
            sequence=next(_event_counter),
            previous=self._state,
            new=path,
            latency_us=latency,
        )
        self._history.append(event)
        self._state = path
        return latency

    def deactivate(self) -> float:
        """Go dark (no active path)."""
        if self._state is PathState.DARK:
            return 0.0
        latency = self._switch_latency_us()
        self._history.append(
            ReconfigurationEvent(
                sequence=next(_event_counter),
                previous=self._state,
                new=PathState.DARK,
                latency_us=latency,
            )
        )
        self._state = PathState.DARK
        return latency

    def fail(self) -> None:
        """Mark the module failed; it goes dark and refuses to switch."""
        self._failed = True
        self._state = PathState.DARK

    def repair(self) -> None:
        """Clear the failure flag (module comes back dark)."""
        self._failed = False
        self._state = PathState.DARK

    def _switch_latency_us(self) -> float:
        """Deterministic mid-range hardware switching latency."""
        lo, hi = self.config.reconfig_latency_us
        return (lo + hi) / 2.0

    # ------------------------------------------------------------- bandwidth
    @property
    def active_bandwidth_gbps(self) -> float:
        """Bandwidth delivered on the active path (full rate or zero)."""
        if self._failed or self._state is PathState.DARK:
            return 0.0
        return self.config.line_rate_gbps

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"OCSTrx({self.trx_id!r}, state={self._state.value}, "
            f"failed={self._failed})"
        )


class OCSTrxBundle:
    """A bundle of OCSTrx modules serving one GPU pair.

    In the intra-node topology (Figure 4) each bundle connects a pair of GPUs:
    one GPU drives the upper-half SerDes lanes, the other the lower-half.  A
    6.4 Tbps GPU uses 8 x 800 Gbps modules per bundle.  The bundle switches as
    a unit: all modules activate the same path.
    """

    def __init__(
        self,
        bundle_id: str,
        n_modules: int = 8,
        config: OCSTrxConfig | None = None,
    ) -> None:
        if n_modules < 1:
            raise ValueError("bundle needs at least one OCSTrx module")
        self.bundle_id = bundle_id
        self.config = config or OCSTrxConfig()
        self.modules: list[OCSTrx] = [
            OCSTrx(f"{bundle_id}/trx{i}", self.config) for i in range(n_modules)
        ]

    # ------------------------------------------------------------------ state
    @property
    def n_modules(self) -> int:
        return len(self.modules)

    @property
    def state(self) -> PathState:
        """Bundle path state (DARK if modules disagree or any failed)."""
        states = {m.state for m in self.modules}
        if len(states) == 1:
            return next(iter(states))
        return PathState.DARK

    @property
    def failed(self) -> bool:
        """The bundle is failed if any of its modules failed."""
        return any(m.failed for m in self.modules)

    @property
    def bandwidth_gbps(self) -> float:
        """Aggregate bandwidth of the bundle on its active path."""
        return sum(m.active_bandwidth_gbps for m in self.modules)

    @property
    def bandwidth_gBps(self) -> float:
        return self.bandwidth_gbps / 8.0

    # ------------------------------------------------------------ provisioning
    def wire_external(self, path: PathState, peer) -> None:
        """Wire all modules' ``path`` fibers to ``peer``."""
        for module in self.modules:
            module.wire_external(path, peer)

    def peer(self, path: PathState):
        """Peer wired to ``path`` (all modules are wired identically)."""
        return self.modules[0].peer(path)

    # -------------------------------------------------------------- switching
    def activate(self, path: PathState) -> float:
        """Activate ``path`` on every module; returns the bundle latency (us).

        All modules switch in parallel, so the bundle latency equals the
        slowest module latency rather than the sum.
        """
        latencies = [m.activate(path) for m in self.modules]
        return max(latencies) if latencies else 0.0

    def deactivate(self) -> float:
        latencies = [m.deactivate() for m in self.modules]
        return max(latencies) if latencies else 0.0

    def fail(self) -> None:
        for module in self.modules:
            module.fail()

    def repair(self) -> None:
        for module in self.modules:
            module.repair()

    # ------------------------------------------------------------------ power
    @property
    def power_watts(self) -> float:
        """Total power of the bundle (all modules powered when not failed)."""
        return sum(
            0.0 if m.failed else m.config.total_power_watts for m in self.modules
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"OCSTrxBundle({self.bundle_id!r}, n={self.n_modules}, "
            f"state={self.state.value})"
        )
