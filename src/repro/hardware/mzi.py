"""Mach-Zehnder interferometer (MZI) switch element and matrix models.

The OCSTrx realises optical circuit switching with a small MZI switch matrix
embedded in the transceiver's Photonic Integrated Circuit (PIC).  Each MZI
element is a 1x2 (or 2x2) optical switch whose routing decision is set by the
phase difference between its two thermo-optic (TO) phase arms.  A cascade of
elements forms an N x N cross-lane matrix used for the intra-node loopback
path (section 4.1, Figure 3b).

The model here is behavioural: it tracks the routing state of each element,
the number of stages a signal traverses (which determines insertion loss), and
the switching latency contributed by the thermo-optic effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class MZIStateError(RuntimeError):
    """Raised when an MZI element or matrix is driven into an invalid state."""


#: Per-stage insertion loss of a single MZI element in dB.  Chosen such that a
#: typical 3-4 stage path through the OCSTrx core lands in the 2.5-4.0 dB
#: envelope reported in Figure 11 at room temperature.
DEFAULT_STAGE_LOSS_DB = 0.52

#: Waveguide/coupling loss independent of stage count (dB).
DEFAULT_BASE_LOSS_DB = 0.7

#: Thermo-optic phase shifter settling time in microseconds.  TO switching of
#: a single element is a few tens of microseconds; the full path reconfiguration
#: (several cascaded elements plus control-plane settle) lands at 60-80 us.
DEFAULT_ELEMENT_SETTLE_US = 18.0


@dataclass
class MZISwitchElement:
    """A single 2x2 MZI switch element with thermo-optic phase arms.

    The element has two logical states:

    * ``bar``   -- input 0 -> output 0, input 1 -> output 1
    * ``cross`` -- input 0 -> output 1, input 1 -> output 0

    The phase difference between the two arms selects the state.  A phase of
    0 rad corresponds to ``bar`` and pi rad to ``cross`` (idealised).
    """

    name: str = "mzi"
    stage_loss_db: float = DEFAULT_STAGE_LOSS_DB
    settle_time_us: float = DEFAULT_ELEMENT_SETTLE_US
    _phase_rad: float = field(default=0.0, repr=False)

    @property
    def phase_rad(self) -> float:
        """Current phase difference between the two arms (radians)."""
        return self._phase_rad

    @property
    def state(self) -> str:
        """Logical routing state, ``"bar"`` or ``"cross"``."""
        return "cross" if self._is_cross(self._phase_rad) else "bar"

    @staticmethod
    def _is_cross(phase_rad: float) -> bool:
        # The element is in the cross state when the phase is closer to pi
        # (mod 2*pi) than to 0.
        reduced = phase_rad % (2.0 * math.pi)
        return abs(reduced - math.pi) < math.pi / 2.0

    def set_state(self, state: str) -> float:
        """Drive the element to ``state`` and return the settling time in us.

        Setting the element to its current state is free (0 us), mirroring the
        fact that no thermal transition is needed.
        """
        if state not in ("bar", "cross"):
            raise MZIStateError(f"unknown MZI state {state!r}")
        if state == self.state:
            return 0.0
        self._phase_rad = math.pi if state == "cross" else 0.0
        return self.settle_time_us

    def set_phase(self, phase_rad: float) -> float:
        """Set the raw phase difference; returns the settling time in us."""
        changed = not math.isclose(phase_rad, self._phase_rad, abs_tol=1e-9)
        self._phase_rad = phase_rad
        return self.settle_time_us if changed else 0.0

    def route(self, input_port: int) -> int:
        """Return the output port a signal on ``input_port`` exits from."""
        if input_port not in (0, 1):
            raise MZIStateError(f"MZI element has 2 inputs, got {input_port}")
        if self.state == "bar":
            return input_port
        return 1 - input_port

    def transmission(self, input_port: int, output_port: int) -> float:
        """Idealised power transmission (0..1) between two ports.

        The interference at the output combiner splits power according to the
        phase difference; for ideal 50/50 couplers the transfer function is
        ``cos^2(phi/2)`` to the bar port and ``sin^2(phi/2)`` to the cross
        port.
        """
        if input_port not in (0, 1) or output_port not in (0, 1):
            raise MZIStateError("ports must be 0 or 1")
        half = self._phase_rad / 2.0
        bar_power = math.cos(half) ** 2
        cross_power = math.sin(half) ** 2
        if input_port == output_port:
            return bar_power
        return cross_power


class MZISwitchMatrix:
    """An ``n_lanes x n_lanes`` cross-lane MZI switch matrix.

    The matrix implements an arbitrary permutation between input lanes and
    output lanes using a Benes-like cascade of :class:`MZISwitchElement`.  For
    the behavioural model we track the permutation directly and account for
    the number of element stages a signal traverses, which is
    ``ceil(log2(n_lanes))`` stages for the cross-lane selector plus the two
    front routing elements described in Figure 3a.
    """

    def __init__(
        self,
        n_lanes: int,
        stage_loss_db: float = DEFAULT_STAGE_LOSS_DB,
        base_loss_db: float = DEFAULT_BASE_LOSS_DB,
        element_settle_us: float = DEFAULT_ELEMENT_SETTLE_US,
    ) -> None:
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        self.n_lanes = n_lanes
        self.stage_loss_db = stage_loss_db
        self.base_loss_db = base_loss_db
        self.element_settle_us = element_settle_us
        # Identity permutation: lane i -> lane i.
        self._mapping: dict[int, int] = {i: i for i in range(n_lanes)}
        self._elements: list[MZISwitchElement] = [
            MZISwitchElement(name=f"mzi-{i}", stage_loss_db=stage_loss_db,
                             settle_time_us=element_settle_us)
            for i in range(self.stage_count * max(1, n_lanes // 2))
        ]

    @property
    def stage_count(self) -> int:
        """Number of cascaded MZI stages a signal traverses."""
        if self.n_lanes <= 1:
            return 1
        return max(1, math.ceil(math.log2(self.n_lanes)))

    @property
    def elements(self) -> list[MZISwitchElement]:
        """The underlying switch elements (behavioural placeholders)."""
        return list(self._elements)

    @property
    def mapping(self) -> dict[int, int]:
        """Current input-lane -> output-lane permutation."""
        return dict(self._mapping)

    def route(self, input_lane: int) -> int:
        """Return the output lane currently connected to ``input_lane``."""
        self._check_lane(input_lane)
        return self._mapping[input_lane]

    def configure(self, mapping: dict[int, int]) -> float:
        """Install a new (partial) permutation and return settle time in us.

        ``mapping`` maps input lanes to output lanes.  Lanes not mentioned
        keep their current mapping.  The resulting complete mapping must be a
        permutation (no two inputs may share an output).
        """
        new_mapping = dict(self._mapping)
        for src, dst in mapping.items():
            self._check_lane(src)
            self._check_lane(dst)
            new_mapping[src] = dst
        if len(set(new_mapping.values())) != self.n_lanes:
            raise MZIStateError("mapping is not a permutation of the lanes")
        changed = new_mapping != self._mapping
        self._mapping = new_mapping
        if not changed:
            return 0.0
        # All stages settle in parallel; latency is one thermo-optic settle
        # multiplied by the number of cascaded stages that must be re-biased.
        return self.element_settle_us * self.stage_count

    def swap(self, lane_a: int, lane_b: int) -> float:
        """Swap the destinations of two lanes (convenience helper)."""
        self._check_lane(lane_a)
        self._check_lane(lane_b)
        a_dst = self._mapping[lane_a]
        b_dst = self._mapping[lane_b]
        return self.configure({lane_a: b_dst, lane_b: a_dst})

    def reset(self) -> float:
        """Return to the identity permutation."""
        return self.configure({i: i for i in range(self.n_lanes)})

    def insertion_loss_db(self, extra_stages: int = 0) -> float:
        """Insertion loss for a path through the matrix in dB.

        ``extra_stages`` accounts for the two front routing elements of the
        OCSTrx (Figure 3a) when the matrix is used as part of the loopback
        path.
        """
        stages = self.stage_count + max(0, extra_stages)
        return self.base_loss_db + stages * self.stage_loss_db

    def is_identity(self) -> bool:
        """True when every lane maps to itself."""
        return all(src == dst for src, dst in self._mapping.items())

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.n_lanes:
            raise MZIStateError(
                f"lane {lane} out of range for {self.n_lanes}-lane matrix"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MZISwitchMatrix(n_lanes={self.n_lanes}, "
            f"stages={self.stage_count}, identity={self.is_identity()})"
        )
