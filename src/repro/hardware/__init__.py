"""Hardware device models for the OCSTrx transceiver.

This subpackage models the Silicon-Photonics OCS transceiver (OCSTrx) described
in section 4.1 and section 5.1 of the paper at the behavioural level:

* :mod:`repro.hardware.mzi` -- Mach-Zehnder interferometer switch elements and
  the NxN cross-lane switch matrix.
* :mod:`repro.hardware.ocstrx` -- the transceiver itself: three optical paths
  (two external, one cross-lane loopback), time-division path activation and
  the 60-80 microsecond reconfiguration latency.
* :mod:`repro.hardware.optics` -- statistical models of insertion loss, power
  consumption and bit error rate versus temperature/OMA used to regenerate
  Figures 10, 11 and 12.
"""

from repro.hardware.mzi import MZISwitchElement, MZISwitchMatrix
from repro.hardware.ocstrx import (
    OCSTrx,
    OCSTrxBundle,
    OCSTrxConfig,
    PathState,
    TrxPath,
    ReconfigurationEvent,
)
from repro.hardware.optics import (
    InsertionLossModel,
    PowerModel,
    BERModel,
    OpticalMeasurementCampaign,
)

__all__ = [
    "MZISwitchElement",
    "MZISwitchMatrix",
    "OCSTrx",
    "OCSTrxBundle",
    "OCSTrxConfig",
    "PathState",
    "TrxPath",
    "ReconfigurationEvent",
    "InsertionLossModel",
    "PowerModel",
    "BERModel",
    "OpticalMeasurementCampaign",
]
