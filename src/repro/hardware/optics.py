"""Statistical optical models: insertion loss, power and BER vs temperature.

These models regenerate the hardware evaluation of section 5.1:

* Figure 10a / Figure 11 -- insertion loss of the OCS core module at ambient
  temperatures of 0, 25, 50 and 85 degrees Celsius.  Measured range 2.5-4.0 dB
  with an average of 3.3 dB at 25 C.
* Figure 10b -- power consumption of the core module per activated path
  (below 3.2 W in all conditions).
* Figure 12 -- bit error rate versus optical modulation amplitude (OMA) at
  -5, 25, 50 and 75 C: zero at low temperatures, occasional errors only at
  very low OMA for 50/75 C.

The paper's numbers come from lab measurements of the physical prototype; we
substitute parametric models calibrated to the published statistics so that
the benchmark harness can regenerate the same figures (shape and envelope).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

#: Temperatures (deg C) at which the paper reports insertion loss and power.
REPORTED_TEMPERATURES_C: tuple[float, ...] = (0.0, 25.0, 50.0, 85.0)

#: Temperatures (deg C) at which the paper reports BER sweeps.
BER_TEMPERATURES_C: tuple[float, ...] = (-5.0, 25.0, 50.0, 75.0)

#: Industrial BER threshold used for pass/fail in the paper's evaluation.
INDUSTRIAL_BER_THRESHOLD = 2.4e-4  # pre-FEC threshold for 800G PAM4 optics


@dataclass
class InsertionLossModel:
    """Insertion loss of the OCS core module as a function of temperature.

    The loss is modelled as a truncated normal distribution whose mean drifts
    mildly with temperature (thermo-optic tuning power increases the bias
    point spread at higher temperatures) and whose support is clipped to the
    published 2.5-4.0 dB envelope (the paper reports 2.0-4.5 dB bin edges in
    the histograms, with mass concentrated between 2.5 and 4.0 dB).
    """

    mean_loss_at_25c_db: float = 3.3
    std_db: float = 0.35
    temperature_slope_db_per_c: float = 0.004
    min_loss_db: float = 2.0
    max_loss_db: float = 4.5

    def mean_loss_db(self, temperature_c: float) -> float:
        """Mean insertion loss at ``temperature_c`` (dB)."""
        return (
            self.mean_loss_at_25c_db
            + self.temperature_slope_db_per_c * (temperature_c - 25.0)
        )

    def sample(
        self,
        temperature_c: float,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``n_samples`` insertion-loss measurements (dB)."""
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        mean = self.mean_loss_db(temperature_c)
        samples = rng.normal(mean, self.std_db, size=n_samples)
        return np.clip(samples, self.min_loss_db, self.max_loss_db)

    def statistics(
        self,
        temperature_c: float,
        n_samples: int,
        rng: np.random.Generator,
    ) -> dict[str, float]:
        """Average / max / min loss for a measurement campaign (Figure 10a)."""
        samples = self.sample(temperature_c, n_samples, rng)
        return {
            "temperature_c": temperature_c,
            "average_db": float(np.mean(samples)),
            "max_db": float(np.max(samples)),
            "min_db": float(np.min(samples)),
        }

    def histogram(
        self,
        temperature_c: float,
        n_samples: int,
        rng: np.random.Generator,
        bins: Sequence[float] = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5),
    ) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of losses for Figure 11; returns (counts, bin_edges)."""
        samples = self.sample(temperature_c, n_samples, rng)
        counts, edges = np.histogram(samples, bins=np.asarray(bins, dtype=float))
        return counts, edges


@dataclass
class PowerModel:
    """OCS core-module power per activated path versus temperature.

    Figure 10b shows power between roughly 2.9 W and 3.2 W, rising with
    temperature (the thermo-optic phase arms must work against a hotter
    ambient) and differing slightly per path because each path traverses a
    different number of MZI stages.
    """

    base_power_watts: float = 2.9
    temperature_slope_w_per_c: float = 0.0022
    path_offsets_watts: dict[int, float] = field(
        default_factory=lambda: {1: 0.00, 2: 0.03, 3: 0.06}
    )
    max_power_watts: float = 3.2

    def power_watts(self, temperature_c: float, path: int = 1) -> float:
        """Core-module power (W) for ``path`` at ``temperature_c``."""
        if path not in self.path_offsets_watts:
            raise ValueError(f"unknown path {path}; expected one of 1, 2, 3")
        raw = (
            self.base_power_watts
            + self.temperature_slope_w_per_c * max(0.0, temperature_c)
            + self.path_offsets_watts[path]
        )
        return min(raw, self.max_power_watts)

    def sweep(
        self, temperatures_c: Sequence[float] = REPORTED_TEMPERATURES_C
    ) -> dict[int, list[float]]:
        """Per-path power across a temperature sweep (Figure 10b series)."""
        return {
            path: [self.power_watts(t, path) for t in temperatures_c]
            for path in sorted(self.path_offsets_watts)
        }


@dataclass
class BERModel:
    """Bit error rate versus OMA and ambient temperature (Figure 12).

    We use a standard optical-link abstraction: the received signal quality
    (Q factor) grows with OMA and degrades with temperature; BER is the
    Gaussian tail ``0.5 * erfc(Q / sqrt(2))``.  Parameters are calibrated so
    that:

    * at -5 C and 25 C the BER is 0 (below the floor) across the swept OMAs,
    * at 50 C and 75 C errors only appear at very low OMA,
    * all operating points remain below the industrial threshold.
    """

    q_per_mw: float = 34.0
    temperature_penalty_per_c: float = 0.16
    reference_temperature_c: float = 25.0
    ber_floor: float = 1e-15

    def q_factor(self, oma_mw: float, temperature_c: float) -> float:
        """Link Q factor for the given OMA (mW) and temperature (C)."""
        if oma_mw <= 0:
            return 0.0
        penalty = self.temperature_penalty_per_c * max(
            0.0, temperature_c - self.reference_temperature_c
        )
        return max(0.0, self.q_per_mw * oma_mw - penalty)

    def ber(self, oma_mw: float, temperature_c: float) -> float:
        """Bit error rate; values below the floor are reported as 0.0."""
        q = self.q_factor(oma_mw, temperature_c)
        if q <= 0.0:
            return 1.0
        raw = 0.5 * math.erfc(q / math.sqrt(2.0))
        if raw < self.ber_floor:
            return 0.0
        return raw

    def sweep(
        self,
        oma_values_mw: Sequence[float],
        temperature_c: float,
    ) -> list[tuple[float, float]]:
        """BER across an OMA sweep at a fixed temperature."""
        return [(oma, self.ber(oma, temperature_c)) for oma in oma_values_mw]

    def meets_industrial_threshold(
        self, oma_mw: float, temperature_c: float,
        threshold: float = INDUSTRIAL_BER_THRESHOLD,
    ) -> bool:
        """Whether the operating point complies with the industrial BER limit."""
        return self.ber(oma_mw, temperature_c) <= threshold


class OpticalMeasurementCampaign:
    """Convenience driver that regenerates Figures 10, 11 and 12 as data.

    The campaign owns a seeded random generator so that results are
    reproducible, and exposes one method per figure returning plain Python
    data structures suitable for tabulation in the benchmark harness.
    """

    def __init__(
        self,
        seed: int = 2025,
        n_devices: int = 200,
        loss_model: InsertionLossModel = None,
        power_model: PowerModel = None,
        ber_model: BERModel = None,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.n_devices = n_devices
        self.loss_model = loss_model or InsertionLossModel()
        self.power_model = power_model or PowerModel()
        self.ber_model = ber_model or BERModel()

    def figure10a_insertion_loss(self) -> list[dict[str, float]]:
        """Average/max/min insertion loss per temperature (Figure 10a)."""
        return [
            self.loss_model.statistics(t, self.n_devices, self.rng)
            for t in REPORTED_TEMPERATURES_C
        ]

    def figure10b_power(self) -> dict[int, list[float]]:
        """Per-path power versus temperature (Figure 10b)."""
        return self.power_model.sweep(REPORTED_TEMPERATURES_C)

    def figure11_loss_histograms(self) -> dict[float, tuple[list[int], list[float]]]:
        """Insertion-loss histograms per temperature (Figure 11)."""
        result: dict[float, tuple[list[int], list[float]]] = {}
        for t in REPORTED_TEMPERATURES_C:
            counts, edges = self.loss_model.histogram(t, self.n_devices, self.rng)
            result[t] = (counts.tolist(), edges.tolist())
        return result

    def figure12_ber(
        self, oma_values_mw: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.25)
    ) -> dict[float, list[tuple[float, float]]]:
        """BER sweeps per temperature (Figure 12)."""
        return {
            t: self.ber_model.sweep(oma_values_mw, t) for t in BER_TEMPERATURES_C
        }
