"""Iteration-time and MFU model (the in-house simulator of section 6.3).

The model decomposes one training iteration into:

* **Compute** -- model FLOPs divided by the cluster's effective throughput.
  The effective per-GPU throughput is the peak multiplied by a GEMM
  efficiency that decays as TP splits matrices into smaller, less efficient
  tiles (the effect the paper cites from NVIDIA's GEMM guide).
* **TP / EP communication** -- AllReduce / AllToAll volumes from
  :mod:`repro.training.comm` over the per-GPU HBD bandwidth, partially
  overlappable with compute.
* **Pipeline bubble** -- the 1F1B bubble fraction
  ``(pp - 1) / (microbatches + pp - 1)``.
* **DP communication** -- gradient AllReduce over the DCN NIC, partially
  overlapped with the backward pass.
* **Expert imbalance** -- when EP > 1, the MoE expert compute is slowed by
  the straggler factor implied by the imbalance coefficient
  ``(max - min) / max`` (section 2.3, Table 4).

A memory model (weights + distributed optimizer states + pipeline-inflight
activations) marks infeasible configurations so the strategy search never
selects them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.training.comm import iteration_comm_volumes
from repro.training.flops import flops_per_iteration
from repro.training.models import ModelConfig

GIB = 1024.0 ** 3


@dataclass(frozen=True)
class HardwareSpec:
    """GPU and fabric characteristics (defaults follow section 6.1)."""

    peak_flops: float = 989e12                 # NVIDIA H100 dense BF16
    memory_bytes: float = 80.0 * GIB           # HBM capacity
    hbd_bandwidth_gbps: float = 6400.0         # 8 x 800G OCSTrx per GPU
    dcn_bandwidth_gbps: float = 400.0          # ConnectX-7 class NIC
    gemm_base_efficiency: float = 0.62
    gemm_tp_penalty_per_doubling: float = 0.035
    gemm_reference_tp: int = 8
    tp_overlap_fraction: float = 0.30
    ep_overlap_fraction: float = 0.30
    dp_overlap_fraction: float = 0.70
    memory_utilization_limit: float = 0.94

    @property
    def hbd_bytes_per_s(self) -> float:
        return self.hbd_bandwidth_gbps * 1e9 / 8.0

    @property
    def dcn_bytes_per_s(self) -> float:
        return self.dcn_bandwidth_gbps * 1e9 / 8.0

    def gemm_efficiency(self, tp: int) -> float:
        """GEMM efficiency as TP splits matrices beyond the reference size."""
        if tp < 1:
            raise ValueError("tp must be >= 1")
        doublings = max(0.0, math.log2(tp / self.gemm_reference_tp))
        eff = self.gemm_base_efficiency * (
            1.0 - self.gemm_tp_penalty_per_doubling * doublings
        )
        return max(0.05, eff)


@dataclass(frozen=True)
class ParallelismConfig:
    """One point of the parallelism search space.

    ``virtual_pipeline`` is the interleaved (virtual) pipeline factor: each
    physical pipeline stage holds ``virtual_pipeline`` non-contiguous layer
    chunks, which shrinks the 1F1B bubble by the same factor (the paper's
    GPT-MoE runtime configuration uses a virtual pipeline of 3).
    """

    tp: int
    pp: int
    dp: int
    ep: int = 1
    global_batch: int = 2048
    micro_batch: int = 1
    expert_imbalance_coef: float = 0.0
    virtual_pipeline: int = 1

    def __post_init__(self) -> None:
        if min(self.tp, self.pp, self.dp, self.ep) < 1:
            raise ValueError("parallel sizes must be >= 1")
        if self.global_batch < 1 or self.micro_batch < 1:
            raise ValueError("batch sizes must be >= 1")
        if not 0.0 <= self.expert_imbalance_coef < 1.0:
            raise ValueError("expert_imbalance_coef must be in [0, 1)")
        if self.ep > self.dp:
            raise ValueError("ep must not exceed dp (experts shard a DP subset)")
        if self.virtual_pipeline < 1:
            raise ValueError("virtual_pipeline must be >= 1")

    @property
    def world_size(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def microbatches_per_replica(self) -> float:
        """Microbatches each pipeline (one DP replica) processes per step."""
        return self.global_batch / (self.dp * self.micro_batch)

    @property
    def pipeline_bubble_fraction(self) -> float:
        """Interleaved-1F1B bubble ``(pp-1) / (v*microbatches + pp - 1)``."""
        m = self.microbatches_per_replica
        if m <= 0:
            return 1.0
        effective = self.virtual_pipeline * m
        return (self.pp - 1) / (effective + self.pp - 1)

    @property
    def straggler_factor(self) -> float:
        """MoE expert compute slowdown caused by the imbalance coefficient.

        With ``c = (max - min) / max`` and a symmetric spread around the
        mean, ``max / mean = 2 / (2 - c)``: the slowest expert sets the pace.
        """
        c = self.expert_imbalance_coef
        return 2.0 / (2.0 - c)


@dataclass
class MFUEstimate:
    """Full breakdown of one MFU evaluation."""

    mfu: float
    iteration_time_s: float
    compute_time_s: float
    tp_comm_time_s: float
    ep_comm_time_s: float
    dp_exposed_time_s: float
    bubble_fraction: float
    gemm_efficiency: float
    memory_bytes_per_gpu: float
    feasible: bool
    infeasible_reason: str = ""

    @property
    def memory_gib_per_gpu(self) -> float:
        return self.memory_bytes_per_gpu / GIB


class MFUSimulator:
    """Analytical MFU estimator for (model, parallelism, hardware) triples."""

    def __init__(self, hardware: HardwareSpec | None = None) -> None:
        self.hardware = hardware or HardwareSpec()

    # ----------------------------------------------------------------- memory
    def memory_per_gpu(self, model: ModelConfig, parallel: ParallelismConfig) -> float:
        """Bytes of HBM one GPU needs under ``parallel``.

        Weights + gradients in bf16 (4 bytes/param), fp32 optimizer states
        sharded across DP (12 bytes/param / dp), and pipeline-inflight
        boundary activations with full recomputation.
        """
        params = model.params_per_gpu(parallel.tp, parallel.pp, parallel.ep)
        weights_grads = 4.0 * params
        optimizer = 12.0 * params / parallel.dp
        layers_per_stage = model.n_layers / parallel.pp
        inflight = min(parallel.pp, parallel.microbatches_per_replica)
        activations = (
            2.0  # bytes per element (bf16)
            * model.seq_len
            * model.hidden_dim
            * parallel.micro_batch
            * layers_per_stage
            * max(1.0, inflight)
            / parallel.tp
        )
        return weights_grads + optimizer + activations

    def fits_in_memory(self, model: ModelConfig, parallel: ParallelismConfig) -> bool:
        limit = self.hardware.memory_bytes * self.hardware.memory_utilization_limit
        return self.memory_per_gpu(model, parallel) <= limit

    # -------------------------------------------------------------- estimate
    def estimate(self, model: ModelConfig, parallel: ParallelismConfig) -> MFUEstimate:
        """Estimate MFU and the iteration-time breakdown."""
        hw = self.hardware
        world = parallel.world_size
        memory = self.memory_per_gpu(model, parallel)

        feasible = True
        reason = ""
        if model.is_moe and parallel.ep > model.n_experts:
            feasible, reason = False, "ep exceeds the number of experts"
        if parallel.tp > model.n_heads:
            feasible, reason = False, "tp exceeds the number of attention heads"
        if parallel.pp > model.n_layers:
            feasible, reason = False, "pp exceeds the number of layers"
        if parallel.global_batch % parallel.dp:
            feasible, reason = False, "global batch not divisible by dp"
        if memory > hw.memory_bytes * hw.memory_utilization_limit:
            feasible, reason = False, "exceeds GPU memory"

        gemm_eff = hw.gemm_efficiency(parallel.tp)
        model_flops = flops_per_iteration(model, parallel.global_batch)
        compute_time = model_flops / (world * hw.peak_flops * gemm_eff)

        # Expert-imbalance straggler penalty on the MoE expert share of compute.
        if model.is_moe and parallel.ep > 1 and parallel.expert_imbalance_coef > 0:
            expert_flops_share = self._expert_compute_share(model)
            compute_time *= (
                1.0
                + expert_flops_share * (parallel.straggler_factor - 1.0)
            )

        volumes = iteration_comm_volumes(
            model,
            tp=parallel.tp,
            pp=parallel.pp,
            dp=parallel.dp,
            ep=parallel.ep,
            global_batch=parallel.global_batch,
        )
        tp_time = (
            volumes.tp_bytes / hw.hbd_bytes_per_s * (1.0 - hw.tp_overlap_fraction)
        )
        ep_time = (
            volumes.ep_bytes / hw.hbd_bytes_per_s * (1.0 - hw.ep_overlap_fraction)
        )
        dp_time = (
            volumes.dp_bytes / hw.dcn_bytes_per_s * (1.0 - hw.dp_overlap_fraction)
        )

        bubble = parallel.pipeline_bubble_fraction
        pipeline_time = (compute_time + tp_time + ep_time) / max(1e-12, 1.0 - bubble)
        iteration_time = pipeline_time + dp_time

        mfu = model_flops / (world * hw.peak_flops * iteration_time)
        if not feasible:
            mfu = 0.0
        return MFUEstimate(
            mfu=mfu,
            iteration_time_s=iteration_time,
            compute_time_s=compute_time,
            tp_comm_time_s=tp_time,
            ep_comm_time_s=ep_time,
            dp_exposed_time_s=dp_time,
            bubble_fraction=bubble,
            gemm_efficiency=gemm_eff,
            memory_bytes_per_gpu=memory,
            feasible=feasible,
            infeasible_reason=reason,
        )

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _expert_compute_share(model: ModelConfig) -> float:
        """Fraction of activated compute spent in MoE expert FFNs."""
        if not model.is_moe:
            return 0.0
        expert_active = (
            model.n_moe_layers * model.moe_top_k * model.mlp_params_per_expert
        )
        return expert_active / model.activated_params
