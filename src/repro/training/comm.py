"""Communication volumes for TP, EP and DP (Table 3 and section 6.3).

Table 3 of the paper gives the per-MoE-layer traffic of the two
communication-intensive parallelisms (``b``: batch, ``s``: sequence length,
``h``: hidden dim, ``k``: router top-k, ``n``: parallel size):

* TP AllReduce:  ``2 b s h (n-1)/n``
* EP AllToAll:   ``2 b s h (n-1)/n * k/n``

Those are *activation counts*; multiplying by the element size gives bytes.
The iteration-level helpers below extend the per-layer formulas to the whole
model (forward + backward, all layers of one pipeline stage) and add the DP
gradient AllReduce, producing the volumes the MFU model and the cross-ToR
traffic model consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.training.models import ModelConfig

#: Bytes per activation / gradient element (bf16).
BYTES_PER_ELEMENT = 2


def tp_allreduce_volume_per_layer(
    batch: int, seq_len: int, hidden_dim: int, tp: int,
    bytes_per_element: int = BYTES_PER_ELEMENT,
) -> float:
    """Table 3 TP AllReduce volume for one layer, in bytes."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    if tp == 1:
        return 0.0
    elements = 2.0 * batch * seq_len * hidden_dim * (tp - 1) / tp
    return elements * bytes_per_element


def ep_alltoall_volume_per_layer(
    batch: int, seq_len: int, hidden_dim: int, ep: int, top_k: int,
    bytes_per_element: int = BYTES_PER_ELEMENT,
) -> float:
    """Table 3 EP AllToAll volume for one MoE layer, in bytes."""
    if ep < 1:
        raise ValueError("ep must be >= 1")
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    if ep == 1:
        return 0.0
    elements = (
        2.0 * batch * seq_len * hidden_dim * (ep - 1) / ep * (top_k / ep)
    )
    return elements * bytes_per_element


def dp_allreduce_volume(
    params_per_gpu: float, dp: int, bytes_per_element: int = BYTES_PER_ELEMENT,
) -> float:
    """Ring AllReduce gradient volume per GPU per iteration, in bytes."""
    if dp < 1:
        raise ValueError("dp must be >= 1")
    if dp == 1:
        return 0.0
    return 2.0 * params_per_gpu * (dp - 1) / dp * bytes_per_element


@dataclass(frozen=True)
class CommVolumes:
    """Per-GPU, per-iteration communication volumes in bytes."""

    tp_bytes: float
    ep_bytes: float
    dp_bytes: float

    @property
    def hbd_bytes(self) -> float:
        """Volume carried by the HBD (TP + EP)."""
        return self.tp_bytes + self.ep_bytes

    @property
    def dcn_bytes(self) -> float:
        """Volume carried by the DCN (outer parallelism)."""
        return self.dp_bytes

    @property
    def dcn_share(self) -> float:
        total = self.hbd_bytes + self.dcn_bytes
        if total == 0:
            return 0.0
        return self.dcn_bytes / total


def iteration_comm_volumes(
    model: ModelConfig,
    tp: int,
    pp: int,
    dp: int,
    ep: int,
    global_batch: int,
    bytes_per_element: int = BYTES_PER_ELEMENT,
) -> CommVolumes:
    """Per-GPU communication volumes of one training iteration.

    TP: in a transformer block there are two column+row parallel pairs
    (attention and MLP), each needing one AllReduce in the forward and one in
    the backward pass -- four AllReduces per layer per microbatch, each of
    ``b_local * s * h`` activations, where ``b_local`` is the number of
    sequences a pipeline stage processes per iteration (``global_batch/dp``).

    EP: one AllToAll pair (dispatch + combine) in forward and backward per
    MoE layer, with the Table 3 per-layer volume.

    DP: one gradient ring AllReduce over the parameters held by the GPU.
    """
    if min(tp, pp, dp, ep) < 1:
        raise ValueError("parallel sizes must be >= 1")
    if global_batch < 1:
        raise ValueError("global_batch must be >= 1")

    local_batch = global_batch / dp
    layers_per_stage = model.n_layers / pp
    moe_fraction = model.n_moe_layers / model.n_layers if model.n_layers else 0.0
    moe_layers_per_stage = layers_per_stage * moe_fraction

    per_sequence_tp = tp_allreduce_volume_per_layer(
        batch=1,
        seq_len=model.seq_len,
        hidden_dim=model.hidden_dim,
        tp=tp,
        bytes_per_element=bytes_per_element,
    )
    dense_layers_per_stage = layers_per_stage - moe_layers_per_stage
    # Two column/row-parallel pairs (attention + MLP), forward and backward,
    # per dense layer.  When experts are distributed with EP (> 1) the MoE
    # FFN is computed locally per expert and communicates via AllToAll
    # instead, so only the attention pair needs a TP AllReduce there.
    tp_factor_moe = 2.0 if ep > 1 else 4.0
    tp_bytes = (
        4.0 * per_sequence_tp * local_batch * dense_layers_per_stage
        + tp_factor_moe * per_sequence_tp * local_batch * moe_layers_per_stage
    )

    per_sequence_ep = ep_alltoall_volume_per_layer(
        batch=1,
        seq_len=model.seq_len,
        hidden_dim=model.hidden_dim,
        ep=ep,
        top_k=model.moe_top_k,
        bytes_per_element=bytes_per_element,
    )
    # Dispatch + combine, forward and backward.
    ep_bytes = 2.0 * 2.0 * per_sequence_ep * local_batch * moe_layers_per_stage

    dp_bytes = dp_allreduce_volume(
        params_per_gpu=model.params_per_gpu(tp, pp, ep),
        dp=dp,
        bytes_per_element=bytes_per_element,
    )
    return CommVolumes(tp_bytes=tp_bytes, ep_bytes=ep_bytes, dp_bytes=dp_bytes)
