"""Parallelism strategy search (Tables 2, 4 and 5).

The search space follows the paper's footnote 6: TP in powers of two up to
128, PP in {1, 2, 4, 8, 16}, DP in powers of two up to 1024, EP in
{1, 2, 4, 8} for MoE models, with ``TP * PP * DP = world size`` and the
global batch fixed per model.  Every candidate is scored by the
:class:`~repro.training.mfu.MFUSimulator`; infeasible candidates (memory,
divisibility, head/layer limits) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.training.mfu import MFUEstimate, MFUSimulator, ParallelismConfig
from repro.training.models import ModelConfig, gpt_moe_1t

DEFAULT_TP_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
DEFAULT_PP_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16)
DEFAULT_EP_CHOICES: tuple[int, ...] = (1, 2, 4, 8)
MAX_DP = 1024


@dataclass
class StrategySearchResult:
    """Best strategy found for one (model, world size) pair."""

    model_name: str
    world_size: int
    best_config: ParallelismConfig | None
    best_estimate: MFUEstimate | None
    n_evaluated: int

    @property
    def mfu(self) -> float:
        return self.best_estimate.mfu if self.best_estimate else 0.0


def enumerate_configs(
    world_size: int,
    global_batch: int,
    tp_choices: Sequence[int] = DEFAULT_TP_CHOICES,
    pp_choices: Sequence[int] = DEFAULT_PP_CHOICES,
    ep_choices: Sequence[int] = (1,),
    micro_batch: int = 1,
    expert_imbalance_coef: float = 0.0,
    max_dp: int = MAX_DP,
) -> list[ParallelismConfig]:
    """All (tp, pp, dp, ep) combinations that exactly tile ``world_size``."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    configs: list[ParallelismConfig] = []
    for tp in tp_choices:
        for pp in pp_choices:
            if world_size % (tp * pp):
                continue
            dp = world_size // (tp * pp)
            if dp < 1 or dp > max_dp:
                continue
            if global_batch % dp:
                continue
            for ep in ep_choices:
                if ep > dp:
                    continue
                configs.append(
                    ParallelismConfig(
                        tp=tp,
                        pp=pp,
                        dp=dp,
                        ep=ep,
                        global_batch=global_batch,
                        micro_batch=micro_batch,
                        expert_imbalance_coef=expert_imbalance_coef,
                    )
                )
    return configs


def search_optimal_strategy(
    model: ModelConfig,
    world_size: int,
    global_batch: int,
    simulator: MFUSimulator | None = None,
    tp_choices: Sequence[int] = DEFAULT_TP_CHOICES,
    pp_choices: Sequence[int] = DEFAULT_PP_CHOICES,
    ep_choices: Sequence[int] = (1,),
    expert_imbalance_coef: float = 0.0,
    max_tp: int | None = None,
) -> StrategySearchResult:
    """Grid search for the MFU-optimal strategy.

    ``max_tp`` caps the TP size (the paper's ``MFU_TP-8`` baseline uses
    ``max_tp=8`` to emulate a conventional 8-GPU NVLink HBD).
    """
    simulator = simulator or MFUSimulator()
    if max_tp is not None:
        tp_choices = tuple(tp for tp in tp_choices if tp <= max_tp)
    candidates = enumerate_configs(
        world_size,
        global_batch,
        tp_choices=tp_choices,
        pp_choices=pp_choices,
        ep_choices=ep_choices,
        expert_imbalance_coef=expert_imbalance_coef,
    )
    best_config: ParallelismConfig | None = None
    best_estimate: MFUEstimate | None = None
    evaluated = 0
    for config in candidates:
        estimate = simulator.estimate(model, config)
        evaluated += 1
        if not estimate.feasible:
            continue
        if best_estimate is None or estimate.mfu > best_estimate.mfu:
            best_config, best_estimate = config, estimate
    return StrategySearchResult(
        model_name=model.name,
        world_size=world_size,
        best_config=best_config,
        best_estimate=best_estimate,
        n_evaluated=evaluated,
    )


def optimal_mfu_table(
    model: ModelConfig,
    gpu_counts: Sequence[int],
    global_batch: int,
    simulator: MFUSimulator | None = None,
    ep_choices: Sequence[int] = (1,),
    expert_imbalance_coef: float = 0.0,
    baseline_max_tp: int | None = 8,
) -> list[dict[str, float]]:
    """Rows of Table 2 (dense) or Table 5 (MoE).

    Each row contains the optimal parallelism, its MFU, and -- when
    ``baseline_max_tp`` is set -- the best MFU achievable with TP capped at
    that size plus the improvement ratio (Table 2's last two columns).
    """
    simulator = simulator or MFUSimulator()
    rows: list[dict[str, float]] = []
    for world in gpu_counts:
        unconstrained = search_optimal_strategy(
            model,
            world,
            global_batch,
            simulator=simulator,
            ep_choices=ep_choices,
            expert_imbalance_coef=expert_imbalance_coef,
        )
        row: dict[str, float] = {
            "gpus": world,
            "tp": unconstrained.best_config.tp if unconstrained.best_config else 0,
            "pp": unconstrained.best_config.pp if unconstrained.best_config else 0,
            "dp": unconstrained.best_config.dp if unconstrained.best_config else 0,
            "ep": unconstrained.best_config.ep if unconstrained.best_config else 0,
            "mfu": unconstrained.mfu,
        }
        if baseline_max_tp is not None:
            constrained = search_optimal_strategy(
                model,
                world,
                global_batch,
                simulator=simulator,
                ep_choices=ep_choices,
                expert_imbalance_coef=expert_imbalance_coef,
                max_tp=baseline_max_tp,
            )
            row[f"mfu_tp{baseline_max_tp}"] = constrained.mfu
            row["improvement"] = (
                unconstrained.mfu / constrained.mfu if constrained.mfu > 0 else 0.0
            )
        rows.append(row)
    return rows


def tp_vs_ep_imbalance_table(
    model: ModelConfig | None = None,
    world_size: int = 1024,
    global_batch: int = 1536,
    imbalance_coefs: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    simulator: MFUSimulator | None = None,
) -> dict[str, dict[float, float]]:
    """Table 4: TP-only MFU versus EP MFU across imbalance coefficients.

    The TP-only column shards experts with tensor parallelism (EP = 1), so it
    is insensitive to the imbalance coefficient; the EP column uses the best
    configuration with EP > 1 and pays the straggler penalty.
    """
    model = model or gpt_moe_1t()
    simulator = simulator or MFUSimulator()
    tp_result = search_optimal_strategy(
        model, world_size, global_batch, simulator=simulator, ep_choices=(1,)
    )
    results: dict[str, dict[float, float]] = {"tp": {}, "ep": {}}
    for coef in imbalance_coefs:
        results["tp"][coef] = tp_result.mfu
        ep_result = search_optimal_strategy(
            model,
            world_size,
            global_batch,
            simulator=simulator,
            ep_choices=(2, 4, 8),
            expert_imbalance_coef=coef,
        )
        results["ep"][coef] = ep_result.mfu
    return results
