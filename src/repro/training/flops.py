"""FLOPs accounting for decoder-only transformers.

The MFU definition used throughout the paper is the standard one:

    MFU = model FLOPs per iteration / (iteration time * cluster peak FLOPs)

where "model FLOPs" counts only the mathematically required operations
(forward + backward, no recomputation): ``6 * activated_params`` per token
for the matmul parts plus the attention score/value products, which add
``12 * n_layers * hidden_dim * seq_len`` FLOPs per token for causal MHA
(counting the 2x of the backward pass and the 0.5x of causal masking).
"""

from __future__ import annotations

from repro.training.models import ModelConfig


def attention_flops_per_token(model: ModelConfig) -> float:
    """Quadratic attention FLOPs per token (fwd+bwd, causal)."""
    # Per layer, per token: QK^T and PV each cost 2 * s * h multiply-adds in
    # the forward pass; backward costs twice the forward; causal masking
    # halves the effective sequence length.
    forward = 2 * 2 * model.seq_len * model.hidden_dim * 0.5
    return 3 * forward * model.n_layers  # fwd + 2x bwd


def flops_per_token(model: ModelConfig) -> float:
    """Model FLOPs per training token (forward + backward)."""
    return 6.0 * model.activated_params + attention_flops_per_token(model)


def flops_per_iteration(model: ModelConfig, global_batch: int) -> float:
    """Model FLOPs of one optimizer step at ``global_batch`` sequences."""
    if global_batch < 1:
        raise ValueError("global_batch must be >= 1")
    tokens = global_batch * model.seq_len
    return flops_per_token(model) * tokens
