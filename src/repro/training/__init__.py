"""LLM training performance simulator (sections 2.3 and 6.3).

The paper motivates InfiniteHBD with an in-house LLM training simulator that
searches parallelism strategies (TP / PP / DP / EP) for maximum Model FLOPs
Utilization (MFU).  This subpackage rebuilds that simulator analytically:

* :mod:`repro.training.models` -- model configurations (Llama 3.1-405B with
  the paper's MHA simplification, and the 1.1T GPT-MoE of Appendix B) and
  parameter counting.
* :mod:`repro.training.flops` -- FLOPs per token / per iteration.
* :mod:`repro.training.comm` -- per-layer and per-iteration communication
  volumes for TP, EP and DP (Table 3 formulas).
* :mod:`repro.training.mfu` -- the iteration-time and MFU model (compute,
  GEMM-efficiency degradation with TP, pipeline bubble, TP/EP/DP
  communication, expert imbalance stragglers).
* :mod:`repro.training.parallelism` -- grid search for the optimal strategy
  (Tables 2, 4 and 5).
"""

from repro.training.models import (
    ModelConfig,
    llama31_405b,
    gpt_moe_1t,
)
from repro.training.flops import flops_per_token, flops_per_iteration
from repro.training.comm import (
    tp_allreduce_volume_per_layer,
    ep_alltoall_volume_per_layer,
    CommVolumes,
    iteration_comm_volumes,
)
from repro.training.mfu import (
    HardwareSpec,
    ParallelismConfig,
    MFUEstimate,
    MFUSimulator,
)
from repro.training.parallelism import (
    StrategySearchResult,
    search_optimal_strategy,
    optimal_mfu_table,
    tp_vs_ep_imbalance_table,
)

__all__ = [
    "ModelConfig",
    "llama31_405b",
    "gpt_moe_1t",
    "flops_per_token",
    "flops_per_iteration",
    "tp_allreduce_volume_per_layer",
    "ep_alltoall_volume_per_layer",
    "CommVolumes",
    "iteration_comm_volumes",
    "HardwareSpec",
    "ParallelismConfig",
    "MFUEstimate",
    "MFUSimulator",
    "StrategySearchResult",
    "search_optimal_strategy",
    "optimal_mfu_table",
    "tp_vs_ep_imbalance_table",
]
