"""LLM model configurations and parameter counting.

Two reference models drive the paper's parallelism analysis:

* **Llama 3.1-405B** (Table 2), with GQA simplified to MHA as the paper does
  ("we simplified the GQA architecture ... to a traditional MHA
  architecture") so attention projections are full ``4 h^2`` per layer.
* **GPT-MoE** (Appendix B): 192 layers, hidden 12288, FFN 49152, 8 experts,
  MoE on every other layer, top-2 routing -- roughly 1.1T total parameters.

Parameter counting follows the standard decoder-only accounting; exact
agreement with the official parameter counts is not required (the MFU model
only depends on the order of magnitude and the dense/MoE split).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """A decoder-only transformer, optionally with MoE layers.

    Attributes
    ----------
    name:
        Human-readable model name.
    n_layers:
        Transformer blocks.
    hidden_dim:
        Model (embedding) dimension ``h``.
    ffn_dim:
        Feed-forward inner dimension.
    n_heads:
        Attention heads (MHA).
    vocab_size:
        Vocabulary size (tied embedding assumed).
    seq_len:
        Training sequence length ``s``.
    gated_mlp:
        True for SwiGLU-style MLPs (3 weight matrices), False for the classic
        2-matrix GELU MLP.
    n_experts:
        Experts per MoE layer (1 = dense model).
    moe_layer_ratio:
        Fraction of layers that are MoE layers.
    moe_top_k:
        Experts activated per token.
    """

    name: str
    n_layers: int
    hidden_dim: int
    ffn_dim: int
    n_heads: int
    vocab_size: int
    seq_len: int
    gated_mlp: bool = True
    n_experts: int = 1
    moe_layer_ratio: float = 0.0
    moe_top_k: int = 1

    def __post_init__(self) -> None:
        if min(self.n_layers, self.hidden_dim, self.ffn_dim, self.n_heads,
               self.vocab_size, self.seq_len) < 1:
            raise ValueError("model dimensions must be positive")
        if self.n_experts < 1:
            raise ValueError("n_experts must be >= 1")
        if not 0.0 <= self.moe_layer_ratio <= 1.0:
            raise ValueError("moe_layer_ratio must be in [0, 1]")
        if self.moe_top_k < 1 or self.moe_top_k > self.n_experts:
            raise ValueError("moe_top_k must be in [1, n_experts]")

    # ----------------------------------------------------------- layer counts
    @property
    def is_moe(self) -> bool:
        return self.n_experts > 1 and self.moe_layer_ratio > 0.0

    @property
    def n_moe_layers(self) -> int:
        return int(round(self.n_layers * self.moe_layer_ratio)) if self.is_moe else 0

    @property
    def n_dense_layers(self) -> int:
        return self.n_layers - self.n_moe_layers

    # -------------------------------------------------------- parameter counts
    @property
    def attention_params_per_layer(self) -> int:
        """QKV + output projections (MHA): 4 h^2."""
        return 4 * self.hidden_dim * self.hidden_dim

    @property
    def mlp_params_per_expert(self) -> int:
        matrices = 3 if self.gated_mlp else 2
        return matrices * self.hidden_dim * self.ffn_dim

    @property
    def dense_layer_params(self) -> int:
        return self.attention_params_per_layer + self.mlp_params_per_expert

    @property
    def moe_layer_params(self) -> int:
        router = self.hidden_dim * self.n_experts
        return (
            self.attention_params_per_layer
            + self.n_experts * self.mlp_params_per_expert
            + router
        )

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_dim

    @property
    def total_params(self) -> int:
        """All trainable parameters (embeddings counted once: tied)."""
        return (
            self.embedding_params
            + self.n_dense_layers * self.dense_layer_params
            + self.n_moe_layers * self.moe_layer_params
        )

    @property
    def activated_params(self) -> int:
        """Parameters touched per token (top-k experts only in MoE layers)."""
        if not self.is_moe:
            return self.total_params
        activated_moe_layer = (
            self.attention_params_per_layer
            + self.moe_top_k * self.mlp_params_per_expert
            + self.hidden_dim * self.n_experts
        )
        return (
            self.embedding_params
            + self.n_dense_layers * self.dense_layer_params
            + self.n_moe_layers * activated_moe_layer
        )

    def params_per_gpu(self, tp: int, pp: int, ep: int = 1) -> float:
        """Approximate parameters held by one GPU under (tp, pp, ep).

        TP shards every matrix, PP splits layers, EP distributes experts (the
        expert weights of a MoE layer are split ``ep`` ways instead of being
        replicated).
        """
        if min(tp, pp, ep) < 1:
            raise ValueError("parallel sizes must be >= 1")
        dense_part = (
            self.embedding_params
            + self.n_dense_layers * self.dense_layer_params
            + self.n_moe_layers * self.attention_params_per_layer
        )
        expert_part = self.n_moe_layers * self.n_experts * self.mlp_params_per_expert
        return dense_part / (tp * pp) + expert_part / (tp * pp * ep)


def llama31_405b(seq_len: int = 8192) -> ModelConfig:
    """Llama 3.1-405B with the paper's MHA simplification."""
    return ModelConfig(
        name="Llama-3.1-405B (MHA)",
        n_layers=126,
        hidden_dim=16384,
        ffn_dim=53248,
        n_heads=128,
        vocab_size=128256,
        seq_len=seq_len,
        gated_mlp=True,
    )


def gpt_moe_1t(seq_len: int = 2048) -> ModelConfig:
    """The 1.1T-parameter GPT-MoE of Appendix B."""
    return ModelConfig(
        name="GPT-MoE-1.1T",
        n_layers=192,
        hidden_dim=12288,
        ffn_dim=49152,
        n_heads=128,
        vocab_size=64000,
        seq_len=seq_len,
        gated_mlp=False,
        n_experts=8,
        moe_layer_ratio=0.5,
        moe_top_k=2,
    )
