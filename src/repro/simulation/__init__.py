"""Trace-driven cluster simulation (section 6.2 metrics).

:class:`repro.simulation.cluster.ClusterSimulator` replays a node-fault trace
against an HBD architecture model and produces the fault-resilience metrics
of the paper: GPU waste ratio over time and as a CDF, the maximum supported
job scale, and the job fault-waiting rate.  Replays are event-driven over the
exact interval timeline (:func:`repro.simulation.cluster.replay_intervals`);
the grid-sampled path is kept as a compatibility layer.
:mod:`repro.simulation.sweeps` provides the fault-ratio sweep counterparts
(Figures 14 and 22) and the architecture comparison helpers used by the
benchmark harness.
"""

from repro.simulation.cluster import (
    ClusterSimulator,
    FaultTimeline,
    IntervalSeries,
    SimulationSeries,
    StreamingIntervalSeries,
    replay_intervals,
    replay_timeline,
)
from repro.simulation.goodput import (
    GoodputConfig,
    GoodputReport,
    GoodputSimulator,
    goodput_comparison,
)
from repro.simulation.schedule_sim import (
    LinkMap,
    ScheduleSimulator,
    Transfer,
    binary_exchange_schedule,
    ring_allreduce_schedule,
    simulate_degraded_ring,
)
from repro.simulation.sweeps import (
    architecture_comparison_over_trace,
    waste_ratio_vs_fault_ratio,
    max_job_scale_comparison,
    fault_waiting_comparison,
)

__all__ = [
    "ClusterSimulator",
    "FaultTimeline",
    "IntervalSeries",
    "SimulationSeries",
    "StreamingIntervalSeries",
    "replay_intervals",
    "replay_timeline",
    "GoodputConfig",
    "GoodputReport",
    "GoodputSimulator",
    "goodput_comparison",
    "LinkMap",
    "ScheduleSimulator",
    "Transfer",
    "binary_exchange_schedule",
    "ring_allreduce_schedule",
    "simulate_degraded_ring",
    "architecture_comparison_over_trace",
    "waste_ratio_vs_fault_ratio",
    "max_job_scale_comparison",
    "fault_waiting_comparison",
]
