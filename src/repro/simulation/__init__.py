"""Trace-driven cluster simulation (section 6.2 metrics).

:class:`repro.simulation.cluster.ClusterSimulator` replays a node-fault trace
against an HBD architecture model and produces the fault-resilience metrics
of the paper: GPU waste ratio over time and as a CDF, the maximum supported
job scale, and the job fault-waiting rate.  :mod:`repro.simulation.sweeps`
provides the fault-ratio sweep counterparts (Figures 14 and 22) and the
architecture comparison helpers used by the benchmark harness.
"""

from repro.simulation.cluster import ClusterSimulator, SimulationSeries
from repro.simulation.goodput import (
    GoodputConfig,
    GoodputReport,
    GoodputSimulator,
    goodput_comparison,
)
from repro.simulation.schedule_sim import (
    LinkMap,
    ScheduleSimulator,
    Transfer,
    binary_exchange_schedule,
    ring_allreduce_schedule,
    simulate_degraded_ring,
)
from repro.simulation.sweeps import (
    architecture_comparison_over_trace,
    waste_ratio_vs_fault_ratio,
    max_job_scale_comparison,
    fault_waiting_comparison,
)

__all__ = [
    "ClusterSimulator",
    "SimulationSeries",
    "GoodputConfig",
    "GoodputReport",
    "GoodputSimulator",
    "goodput_comparison",
    "LinkMap",
    "ScheduleSimulator",
    "Transfer",
    "binary_exchange_schedule",
    "ring_allreduce_schedule",
    "simulate_degraded_ring",
    "architecture_comparison_over_trace",
    "waste_ratio_vs_fault_ratio",
    "max_job_scale_comparison",
    "fault_waiting_comparison",
]
