"""Trace replay against an HBD architecture model.

The replay is event-driven: the fault trace is swept once into its exact
piecewise-constant interval timeline (:class:`repro.faults.timeline.
IntervalTimeline`), the architecture model is asked for a
:class:`~repro.hbd.base.WasteBreakdown` once per *distinct* fault set
(memoized -- fault sets repeat whenever a node fails and recovers back to a
previous configuration), and every section 6.2 metric is computed as an exact
duration-weighted quantity over the intervals (:class:`IntervalSeries`).

Two orthogonal scaling switches extend :func:`replay_intervals` for sub-day
granularity production traces where even O(intervals x n_nodes) is too much:

* **incremental replay** -- consecutive intervals differ by a handful of
  node events, so architectures with an O(delta) update
  (``architecture.supports_delta``; see :meth:`repro.hbd.base.
  HBDArchitecture.breakdown_delta`) walk the sweep line event by event in
  O(intervals x delta).  The default (``incremental=None``) picks the delta
  walk exactly when the architecture supports it; both paths are bit-for-bit
  identical (hypothesis-tested).
* **streaming aggregation** -- ``streaming=True`` folds duration-weighted
  mean / quantile / CDF accumulation (:class:`repro.analysis.cdf.
  StreamingDistribution`) into the same walk and returns a
  :class:`StreamingIntervalSeries` of aggregates only, never materialising
  the interval list -- so a generator-backed timeline
  (:class:`repro.faults.timeline.IntervalStream`) of arbitrary length
  replays in O(distinct capacity levels) memory.

The original grid-sampled path (:class:`FaultTimeline`,
:func:`replay_timeline`, :class:`SimulationSeries`, daily by default to match
Figure 18/20's per-day resolution) is kept as a thin compatibility layer:
grid mode is now "resample the exact intervals", which reproduces the old
per-sample scans bit-for-bit at O(samples + events) instead of
O(samples x events).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.cdf import StreamingDistribution, empirical_cdf, weighted_quantile
from repro.faults.timeline import IntervalStream, IntervalTimeline
from repro.faults.trace import FaultTrace, HOURS_PER_DAY
from repro.hbd.base import HBDArchitecture, WasteBreakdown


@dataclass
class SimulationSeries:
    """Grid-sampled time series produced by one trace replay (legacy API).

    Every aggregate weights each sample equally; prefer
    :class:`IntervalSeries` (exact, duration-weighted, grid-independent) for
    new code.
    """

    times_days: list[float]
    waste_ratios: list[float]
    usable_gpus: list[int]
    faulty_gpus: list[int]
    total_gpus: int

    @property
    def mean_waste_ratio(self) -> float:
        if not self.waste_ratios:
            return 0.0
        return float(np.mean(self.waste_ratios))

    @property
    def p99_waste_ratio(self) -> float:
        if not self.waste_ratios:
            return 0.0
        return float(np.percentile(self.waste_ratios, 99))

    @property
    def min_usable_gpus(self) -> int:
        if not self.usable_gpus:
            return 0
        return int(min(self.usable_gpus))

    def waste_ratio_cdf(self) -> tuple[list[float], list[float]]:
        """(sorted waste ratios, cumulative probability) -- Figures 13/21."""
        return empirical_cdf(self.waste_ratios)

    def fault_waiting_rate(self, job_gpus: int) -> float:
        """Fraction of sampled time the job of ``job_gpus`` GPUs cannot run."""
        if not self.usable_gpus:
            return 0.0
        waiting = sum(1 for usable in self.usable_gpus if usable < job_gpus)
        return waiting / len(self.usable_gpus)

    def supported_job_scale(self, availability: float = 1.0) -> int:
        """Largest job scale available at least ``availability`` of the time.

        ``availability=1.0`` (the default, used for Figure 15) requires the
        job to run through the whole trace without waiting.
        """
        if not self.usable_gpus:
            return 0
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        quantile = 100.0 * (1.0 - availability)
        return int(np.percentile(np.asarray(self.usable_gpus), quantile, method="lower"))


@dataclass
class IntervalSeries:
    """Exact piecewise-constant replay result over the interval timeline.

    One entry per maximal constant-fault-set interval; every aggregate is
    duration-weighted, so the numbers are exact properties of the trace and
    architecture, independent of any sampling grid.
    """

    starts_hours: list[float]
    ends_hours: list[float]
    waste_ratios: list[float]
    usable_gpus: list[int]
    faulty_gpus: list[int]
    total_gpus: int

    def __len__(self) -> int:
        return len(self.starts_hours)

    @property
    def times_days(self) -> list[float]:
        """Interval start times in days (for plotting step series)."""
        return [t / HOURS_PER_DAY for t in self.starts_hours]

    @property
    def durations_hours(self) -> list[float]:
        return [e - s for s, e in zip(self.starts_hours, self.ends_hours, strict=True)]

    @property
    def total_hours(self) -> float:
        return self.ends_hours[-1] - self.starts_hours[0] if self.starts_hours else 0.0

    @property
    def mean_waste_ratio(self) -> float:
        """Exact time-averaged waste ratio."""
        total = self.total_hours
        if total == 0:
            return 0.0
        return sum(
            w * d for w, d in zip(self.waste_ratios, self.durations_hours, strict=True)
        ) / total

    @property
    def p99_waste_ratio(self) -> float:
        return self.waste_ratio_quantile(0.99)

    @property
    def max_waste_ratio(self) -> float:
        return max(self.waste_ratios) if self.waste_ratios else 0.0

    @property
    def min_usable_gpus(self) -> int:
        if not self.usable_gpus:
            return 0
        return int(min(self.usable_gpus))

    def waste_ratio_quantile(self, q: float) -> float:
        """Exact duration-weighted quantile (``q`` in [0, 1]) of the waste ratio."""
        return weighted_quantile(self.waste_ratios, self.durations_hours, q)

    def waste_ratio_cdf(self) -> tuple[list[float], list[float]]:
        """Exact duration-weighted waste-ratio CDF -- Figures 13/21."""
        if not self.waste_ratios:
            return [], []
        return empirical_cdf(self.waste_ratios, self.durations_hours)

    def fault_waiting_rate(self, job_gpus: int) -> float:
        """Exact fraction of time a job of ``job_gpus`` GPUs cannot run."""
        total = self.total_hours
        if total == 0:
            return 0.0
        waiting = sum(
            d
            for usable, d in zip(self.usable_gpus, self.durations_hours, strict=True)
            if usable < job_gpus
        )
        return waiting / total

    def supported_job_scale(self, availability: float = 1.0) -> int:
        """Largest job scale available at least ``availability`` of the time.

        Exact: the largest usable-GPU level whose cumulative downtime (time
        with fewer usable GPUs) does not exceed ``1 - availability`` of the
        trace.  ``availability=1.0`` (Figure 15) is the minimum over all
        intervals -- short dips a sampling grid would miss count here.
        """
        if not self.usable_gpus:
            return 0
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if availability == 1.0:
            return self.min_usable_gpus
        # Smallest usable level u with P(usable <= u) > 1 - availability: the
        # job can be any scale up to u and still wait at most 1 - availability.
        pairs = sorted(zip(self.usable_gpus, self.durations_hours, strict=True))
        total = self.total_hours
        budget = (1.0 - availability) * total
        cumulative = 0.0
        for usable, duration in pairs:
            cumulative += duration
            if cumulative > budget * (1.0 + 1e-12):
                return int(usable)
        return int(pairs[-1][0])

    def mean_waste_in_window(self, start_day: float, end_day: float) -> float:
        """Duration-weighted mean waste ratio over ``[start_day, end_day)``."""
        start_h, end_h = start_day * HOURS_PER_DAY, end_day * HOURS_PER_DAY
        weighted = covered = 0.0
        for s, e, w in zip(self.starts_hours, self.ends_hours, self.waste_ratios, strict=True):
            overlap = min(e, end_h) - max(s, start_h)
            if overlap > 0:
                weighted += w * overlap
                covered += overlap
        return weighted / covered if covered else 0.0


@dataclass
class StreamingIntervalSeries:
    """Aggregates-only replay result: the streaming twin of :class:`IntervalSeries`.

    Produced by ``replay_intervals(..., streaming=True)``.  Holds
    duration-weighted accumulators instead of per-interval lists, so memory
    is bounded by the number of distinct capacity levels the replay visits
    -- independent of the interval count.  Every aggregate shares its name
    and semantics with the materialised series; per-interval accessors
    (``times_days``, ``waste_ratios``, ``mean_waste_in_window``...) do not
    exist here, by construction.
    """

    total_gpus: int
    n_intervals: int = 0
    start_hour: float = 0.0
    end_hour: float = 0.0
    waste: StreamingDistribution = field(default_factory=StreamingDistribution)
    usable: StreamingDistribution = field(default_factory=StreamingDistribution)

    def _fold(self, interval, breakdown: WasteBreakdown) -> None:
        if self.n_intervals == 0:
            self.start_hour = interval.start_hour
        self.end_hour = interval.end_hour
        self.n_intervals += 1
        duration = interval.duration_hours
        self.waste.add(breakdown.waste_ratio, duration)
        self.usable.add(breakdown.usable_gpus, duration)

    def __len__(self) -> int:
        return self.n_intervals

    @property
    def total_hours(self) -> float:
        return self.end_hour - self.start_hour if self.n_intervals else 0.0

    @property
    def mean_waste_ratio(self) -> float:
        """Exact time-averaged waste ratio."""
        return self.waste.mean()

    @property
    def p99_waste_ratio(self) -> float:
        return self.waste_ratio_quantile(0.99)

    @property
    def max_waste_ratio(self) -> float:
        return self.waste.max()

    @property
    def min_usable_gpus(self) -> int:
        return int(self.usable.min())

    def waste_ratio_quantile(self, q: float) -> float:
        """Exact duration-weighted quantile (``q`` in [0, 1]) of the waste ratio."""
        return self.waste.quantile(q)

    def waste_ratio_cdf(self) -> tuple[list[float], list[float]]:
        """Exact duration-weighted waste-ratio CDF (distinct values only)."""
        return self.waste.cdf()

    def fault_waiting_rate(self, job_gpus: int) -> float:
        """Exact fraction of time a job of ``job_gpus`` GPUs cannot run."""
        total = self.usable.total_weight
        if total <= 0:
            return 0.0
        return self.usable.weight_below(job_gpus) / total

    def supported_job_scale(self, availability: float = 1.0) -> int:
        """Largest job scale available at least ``availability`` of the time.

        Same algorithm as the materialised series, run over the grouped
        ``(usable level, total duration)`` pairs.
        """
        if self.n_intervals == 0:
            return 0
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        if availability == 1.0:
            return self.min_usable_gpus
        pairs = self.usable.items()
        budget = (1.0 - availability) * self.usable.total_weight
        cumulative = 0.0
        for usable, duration in pairs:
            cumulative += duration
            if cumulative > budget * (1.0 + 1e-12):
                return int(usable)
        return int(pairs[-1][0])


class _BreakdownMemo:
    """Memoize ``architecture.breakdown`` per distinct fault set.

    Fault sets recur -- on a grid because faults persist across samples, on
    the interval timeline because clusters return to previous configurations
    (most often the empty set) -- so replays share one breakdown per distinct
    set instead of recomputing per instant.
    """

    def __init__(self, architecture: HBDArchitecture, n_nodes: int, tp_size: int) -> None:
        self.architecture = architecture
        self.n_nodes = n_nodes
        self.tp_size = tp_size
        self._cache: dict[frozenset[int], WasteBreakdown] = {}

    def __call__(self, fault_set: frozenset[int]) -> WasteBreakdown:
        breakdown = self._cache.get(fault_set)
        if breakdown is None:
            breakdown = self.architecture.breakdown(
                self.n_nodes, fault_set, self.tp_size
            )
            self._cache[fault_set] = breakdown
        return breakdown


@dataclass(frozen=True)
class FaultTimeline:
    """A trace sampled onto a regular grid of per-instant fault sets.

    Compatibility layer over the exact interval timeline: the grid is now
    produced by *resampling* the swept intervals (O(samples + events)) rather
    than scanning every event per sample, but the sampled fault sets -- and
    hence everything downstream -- are bit-for-bit identical to the old
    per-sample scans.
    """

    times_hours: tuple[float, ...]
    fault_sets: tuple[frozenset[int], ...]
    n_nodes: int
    gpus_per_node: int

    @classmethod
    def from_trace(
        cls,
        trace: FaultTrace,
        n_nodes: int | None = None,
        sample_interval_hours: float = HOURS_PER_DAY,
    ) -> FaultTimeline:
        nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        times = trace.sample_times(sample_interval_hours)
        timeline = trace.interval_timeline(nodes)
        return cls(
            times_hours=tuple(times),
            fault_sets=tuple(timeline.resample(times)),
            n_nodes=nodes,
            gpus_per_node=trace.gpus_per_node,
        )


def replay_timeline(
    architecture: HBDArchitecture, timeline: FaultTimeline, tp_size: int
) -> SimulationSeries:
    """Replay a pre-sampled (grid) fault timeline against one architecture."""
    _check_gpus_per_node(architecture, timeline.gpus_per_node)
    breakdown_for = _BreakdownMemo(architecture, timeline.n_nodes, tp_size)
    waste_ratios: list[float] = []
    usable: list[int] = []
    faulty_gpus: list[int] = []
    for fault_set in timeline.fault_sets:
        breakdown = breakdown_for(fault_set)
        waste_ratios.append(breakdown.waste_ratio)
        usable.append(breakdown.usable_gpus)
        faulty_gpus.append(breakdown.faulty_gpus)
    return SimulationSeries(
        times_days=[t / HOURS_PER_DAY for t in timeline.times_hours],
        waste_ratios=waste_ratios,
        usable_gpus=usable,
        faulty_gpus=faulty_gpus,
        total_gpus=architecture.total_gpus(timeline.n_nodes),
    )


def replay_intervals(
    architecture: HBDArchitecture,
    timeline: IntervalTimeline | IntervalStream,
    tp_size: int,
    *,
    incremental: bool | None = None,
    streaming: bool = False,
) -> IntervalSeries | StreamingIntervalSeries:
    """Exact event-driven replay of the interval timeline against one architecture.

    Parameters
    ----------
    incremental:
        ``None`` (default) walks the sweep line with the O(delta)
        :meth:`~repro.hbd.base.HBDArchitecture.breakdown_delta` path exactly
        when the architecture supports it, and otherwise evaluates one full
        breakdown per *distinct* fault set (memoized).  ``True`` forces the
        delta walk (architectures without an O(delta) update recompute per
        interval -- total, just not faster), ``False`` forces the memoized
        full path.  Both paths are bit-for-bit identical.
    streaming:
        Fold duration-weighted aggregation into the walk and return a
        :class:`StreamingIntervalSeries` instead of materialising the
        per-interval lists.  With a generator-backed
        :class:`~repro.faults.timeline.IntervalStream` this replays traces
        of arbitrary length in O(distinct capacity levels) memory.
    """
    _check_gpus_per_node(architecture, timeline.gpus_per_node)
    n_nodes = timeline.n_nodes
    total_gpus = architecture.total_gpus(n_nodes)
    use_delta = architecture.supports_delta if incremental is None else bool(incremental)

    if streaming:
        series = StreamingIntervalSeries(total_gpus=total_gpus)
        fold = series._fold
    else:
        columnar = timeline.columnar if isinstance(timeline, IntervalTimeline) else None
        waste_ratios: list[float] = []
        usable: list[int] = []
        faulty_gpus: list[int] = []
        if columnar is not None:
            # Interval boundaries come straight off the shared columnar view
            # (bit-identical floats); the walk only accumulates breakdowns.
            starts = columnar.starts_hours.tolist()
            ends = columnar.ends_hours.tolist()

            def fold(interval, breakdown: WasteBreakdown) -> None:
                waste_ratios.append(breakdown.waste_ratio)
                usable.append(breakdown.usable_gpus)
                faulty_gpus.append(breakdown.faulty_gpus)
        else:
            starts = []
            ends = []

            def fold(interval, breakdown: WasteBreakdown) -> None:
                starts.append(interval.start_hour)
                ends.append(interval.end_hour)
                waste_ratios.append(breakdown.waste_ratio)
                usable.append(breakdown.usable_gpus)
                faulty_gpus.append(breakdown.faulty_gpus)

    if use_delta:
        state = None
        for interval in timeline.intervals:
            if state is None:
                state = architecture.delta_state(n_nodes, interval.nodes, tp_size)
                breakdown, state = architecture.breakdown_delta(state)
            else:
                breakdown, state = architecture.breakdown_delta(
                    state,
                    added_faults=interval.nodes - state.faults,
                    removed_faults=state.faults - interval.nodes,
                )
            fold(interval, breakdown)
    else:
        breakdown_for = _BreakdownMemo(architecture, n_nodes, tp_size)
        for interval in timeline.intervals:
            fold(interval, breakdown_for(interval.nodes))

    if streaming:
        return series
    return IntervalSeries(
        starts_hours=starts,
        ends_hours=ends,
        waste_ratios=waste_ratios,
        usable_gpus=usable,
        faulty_gpus=faulty_gpus,
        total_gpus=total_gpus,
    )


def _check_gpus_per_node(architecture: HBDArchitecture, gpus_per_node: int) -> None:
    if gpus_per_node != architecture.gpus_per_node:
        raise ValueError(
            f"timeline GPUs/node ({gpus_per_node}) must match the "
            f"architecture ({architecture.gpus_per_node})"
        )


class ClusterSimulator:
    """Replay a fault trace against one HBD architecture."""

    def __init__(
        self,
        architecture: HBDArchitecture,
        trace: FaultTrace,
        n_nodes: int | None = None,
        sample_interval_hours: float = HOURS_PER_DAY,
    ) -> None:
        if trace.gpus_per_node != architecture.gpus_per_node:
            raise ValueError(
                "trace GPUs/node "
                f"({trace.gpus_per_node}) must match the architecture "
                f"({architecture.gpus_per_node})"
            )
        self.architecture = architecture
        self.n_nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if self.n_nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        # Keep the source trace: its per-size timeline cache is shared, so a
        # whole architecture line-up replays one swept timeline.
        self._source_trace = trace
        self.trace = (
            trace if self.n_nodes == trace.n_nodes else trace.restrict_nodes(self.n_nodes)
        )
        self.sample_interval_hours = sample_interval_hours
        self._timeline: FaultTimeline | None = None

    # --------------------------------------------------------------- running
    def timeline(self) -> FaultTimeline:
        """The sampled (grid) fault timeline (computed once, shared across runs)."""
        if self._timeline is None:
            self._timeline = FaultTimeline.from_trace(
                self.trace, sample_interval_hours=self.sample_interval_hours
            )
        return self._timeline

    def interval_timeline(self) -> IntervalTimeline:
        """The exact interval timeline (swept once, cached on the source trace)."""
        return self._source_trace.interval_timeline(self.n_nodes)

    def run(self, tp_size: int) -> SimulationSeries:
        """Grid-sampled replay for TP groups of ``tp_size`` GPUs (legacy)."""
        return replay_timeline(self.architecture, self.timeline(), tp_size)

    def run_exact(self, tp_size: int) -> IntervalSeries:
        """Exact event-driven replay for TP groups of ``tp_size`` GPUs."""
        return replay_intervals(self.architecture, self.interval_timeline(), tp_size)

    def breakdown_at(self, hour: float, tp_size: int) -> WasteBreakdown:
        """Single-instant GPU accounting (useful for spot checks)."""
        fault_set = self.trace.faulty_nodes_at(hour)
        return self.architecture.breakdown(self.n_nodes, fault_set, tp_size)
