"""Trace replay against an HBD architecture model.

The simulator samples the fault trace on a regular grid (daily by default,
matching Figure 18/20's per-day resolution), asks the architecture model how
many GPUs remain usable for the requested TP size under each sampled fault
set, and derives the section 6.2 metrics from the resulting time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.trace import FaultTrace, HOURS_PER_DAY
from repro.hbd.base import HBDArchitecture, WasteBreakdown


@dataclass
class SimulationSeries:
    """Time series produced by one trace replay."""

    times_days: List[float]
    waste_ratios: List[float]
    usable_gpus: List[int]
    faulty_gpus: List[int]
    total_gpus: int

    @property
    def mean_waste_ratio(self) -> float:
        if not self.waste_ratios:
            return 0.0
        return float(np.mean(self.waste_ratios))

    @property
    def p99_waste_ratio(self) -> float:
        if not self.waste_ratios:
            return 0.0
        return float(np.percentile(self.waste_ratios, 99))

    @property
    def min_usable_gpus(self) -> int:
        if not self.usable_gpus:
            return 0
        return int(min(self.usable_gpus))

    def waste_ratio_cdf(self) -> Tuple[List[float], List[float]]:
        """(sorted waste ratios, cumulative probability) -- Figures 13/21."""
        values = sorted(self.waste_ratios)
        n = len(values)
        if n == 0:
            return [], []
        return values, [(i + 1) / n for i in range(n)]

    def fault_waiting_rate(self, job_gpus: int) -> float:
        """Fraction of sampled time the job of ``job_gpus`` GPUs cannot run."""
        if not self.usable_gpus:
            return 0.0
        waiting = sum(1 for usable in self.usable_gpus if usable < job_gpus)
        return waiting / len(self.usable_gpus)

    def supported_job_scale(self, availability: float = 1.0) -> int:
        """Largest job scale available at least ``availability`` of the time.

        ``availability=1.0`` (the default, used for Figure 15) requires the
        job to run through the whole trace without waiting.
        """
        if not self.usable_gpus:
            return 0
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        quantile = 100.0 * (1.0 - availability)
        return int(np.percentile(np.asarray(self.usable_gpus), quantile, method="lower"))


@dataclass(frozen=True)
class FaultTimeline:
    """A trace sampled onto a regular grid of per-instant fault sets.

    Sampling the trace is architecture-independent, so a timeline computed
    once can be replayed against many architectures -- the experiment runner
    exploits this to avoid re-scanning the trace for every line-up member.
    """

    times_hours: Tuple[float, ...]
    fault_sets: Tuple[FrozenSet[int], ...]
    n_nodes: int
    gpus_per_node: int

    @classmethod
    def from_trace(
        cls,
        trace: FaultTrace,
        n_nodes: Optional[int] = None,
        sample_interval_hours: float = HOURS_PER_DAY,
    ) -> "FaultTimeline":
        nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        restricted = trace if nodes == trace.n_nodes else trace.restrict_nodes(nodes)
        times = restricted.sample_times(sample_interval_hours)
        return cls(
            times_hours=tuple(times),
            fault_sets=tuple(
                frozenset(restricted.faulty_nodes_at(t)) for t in times
            ),
            n_nodes=nodes,
            gpus_per_node=trace.gpus_per_node,
        )


def replay_timeline(
    architecture: HBDArchitecture, timeline: FaultTimeline, tp_size: int
) -> SimulationSeries:
    """Replay a pre-sampled fault timeline against one architecture."""
    if timeline.gpus_per_node != architecture.gpus_per_node:
        raise ValueError(
            f"timeline GPUs/node ({timeline.gpus_per_node}) must match the "
            f"architecture ({architecture.gpus_per_node})"
        )
    waste_ratios: List[float] = []
    usable: List[int] = []
    faulty_gpus: List[int] = []
    for fault_set in timeline.fault_sets:
        breakdown = architecture.breakdown(timeline.n_nodes, fault_set, tp_size)
        waste_ratios.append(breakdown.waste_ratio)
        usable.append(breakdown.usable_gpus)
        faulty_gpus.append(breakdown.faulty_gpus)
    return SimulationSeries(
        times_days=[t / HOURS_PER_DAY for t in timeline.times_hours],
        waste_ratios=waste_ratios,
        usable_gpus=usable,
        faulty_gpus=faulty_gpus,
        total_gpus=architecture.total_gpus(timeline.n_nodes),
    )


class ClusterSimulator:
    """Replay a fault trace against one HBD architecture."""

    def __init__(
        self,
        architecture: HBDArchitecture,
        trace: FaultTrace,
        n_nodes: Optional[int] = None,
        sample_interval_hours: float = HOURS_PER_DAY,
    ) -> None:
        if trace.gpus_per_node != architecture.gpus_per_node:
            raise ValueError(
                "trace GPUs/node "
                f"({trace.gpus_per_node}) must match the architecture "
                f"({architecture.gpus_per_node})"
            )
        self.architecture = architecture
        self.n_nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if self.n_nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        self.trace = (
            trace if self.n_nodes == trace.n_nodes else trace.restrict_nodes(self.n_nodes)
        )
        self.sample_interval_hours = sample_interval_hours
        self._timeline: Optional[FaultTimeline] = None

    # --------------------------------------------------------------- running
    def timeline(self) -> FaultTimeline:
        """The sampled fault timeline (computed once, shared across runs)."""
        if self._timeline is None:
            self._timeline = FaultTimeline.from_trace(
                self.trace, sample_interval_hours=self.sample_interval_hours
            )
        return self._timeline

    def run(self, tp_size: int) -> SimulationSeries:
        """Replay the trace for TP groups of ``tp_size`` GPUs."""
        return replay_timeline(self.architecture, self.timeline(), tp_size)

    def breakdown_at(self, hour: float, tp_size: int) -> WasteBreakdown:
        """Single-instant GPU accounting (useful for spot checks)."""
        fault_set = self.trace.faulty_nodes_at(hour)
        return self.architecture.breakdown(self.n_nodes, fault_set, tp_size)
