"""Architecture comparison sweeps used by the benchmark harness.

These helpers glue together the fault substrate, the HBD architecture models
and the trace replay simulator to produce the exact data series behind the
paper's fault-resilience figures:

* :func:`architecture_comparison_over_trace` -- Figures 13, 20, 21
  (waste-ratio time series and CDFs over the production-style trace).
* :func:`waste_ratio_vs_fault_ratio` -- Figures 14 and 22 (i.i.d. fault-ratio
  sweep).
* :func:`max_job_scale_comparison` -- Figure 15.
* :func:`fault_waiting_comparison` -- Figures 16 and 23.

Since the Unified Experiment API landed these are thin shims over
:mod:`repro.api.runner`: the trace is swept once into a shared exact
:class:`~repro.faults.timeline.IntervalTimeline` and replayed event-driven
against every architecture (each replay returns an exact, duration-weighted
:class:`~repro.simulation.cluster.IntervalSeries`), and every function takes
``max_workers`` to fan the line-up out over a process pool (default: serial,
preserving the historical behaviour).  Prefer
:class:`repro.api.ExperimentRunner` for new code -- it adds declarative
specs, memoized traces and serializable results.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.faults.model import IIDFaultModel
from repro.faults.trace import FaultTrace
from repro.hbd.base import HBDArchitecture
from repro.simulation.cluster import IntervalSeries


def architecture_comparison_over_trace(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_size: int,
    n_nodes: int | None = None,
    max_workers: int | None = 1,
) -> dict[str, IntervalSeries]:
    """Replay ``trace`` against every architecture for one TP size (exact)."""
    from repro.api.runner import compare_architectures_over_trace

    return compare_architectures_over_trace(
        architectures, trace, tp_size, n_nodes=n_nodes, max_workers=max_workers
    )


def waste_ratio_vs_fault_ratio(
    architectures: Sequence[HBDArchitecture],
    n_nodes: int,
    tp_size: int,
    fault_ratios: Sequence[float],
    n_samples: int = 20,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Mean GPU waste ratio versus node fault ratio (Figures 14 / 22)."""
    model = IIDFaultModel(n_nodes=n_nodes, seed=seed, n_samples=n_samples)
    results: dict[str, list[float]] = {}
    for arch in architectures:
        def metric(fault_set: set[int], _arch=arch) -> float:
            return _arch.waste_ratio(n_nodes, fault_set, tp_size)

        results[arch.name] = model.sweep(fault_ratios, metric)
    return results


def max_job_scale_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_sizes: Sequence[int],
    n_nodes: int | None = None,
    availability: float = 1.0,
    max_workers: int | None = 1,
) -> dict[str, dict[int, int]]:
    """Maximum job scale (GPUs) supported through the trace (Figure 15)."""
    from repro.api.runner import compare_architectures_over_tp_sizes

    grid = compare_architectures_over_tp_sizes(
        architectures, trace, tp_sizes, n_nodes=n_nodes, max_workers=max_workers
    )
    return {
        name: {tp: series.supported_job_scale(availability) for tp, series in per_tp.items()}
        for name, per_tp in grid.items()
    }


def fault_waiting_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_size: int,
    job_scales: Sequence[int],
    n_nodes: int | None = None,
    max_workers: int | None = 1,
) -> dict[str, dict[int, float]]:
    """Job fault-waiting rate versus job scale (Figures 16 / 23)."""
    from repro.api.runner import compare_architectures_over_trace

    comparison = compare_architectures_over_trace(
        architectures, trace, tp_size, n_nodes=n_nodes, max_workers=max_workers
    )
    return {
        name: {scale: series.fault_waiting_rate(scale) for scale in job_scales}
        for name, series in comparison.items()
    }
