"""Architecture comparison sweeps used by the benchmark harness.

These helpers glue together the fault substrate, the HBD architecture models
and the trace replay simulator to produce the exact data series behind the
paper's fault-resilience figures:

* :func:`architecture_comparison_over_trace` -- Figures 13, 20, 21
  (waste-ratio time series and CDFs over the production-style trace).
* :func:`waste_ratio_vs_fault_ratio` -- Figures 14 and 22 (i.i.d. fault-ratio
  sweep).
* :func:`max_job_scale_comparison` -- Figure 15.
* :func:`fault_waiting_comparison` -- Figures 16 and 23.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.faults.model import IIDFaultModel
from repro.faults.trace import FaultTrace
from repro.hbd.base import HBDArchitecture
from repro.simulation.cluster import ClusterSimulator, SimulationSeries


def architecture_comparison_over_trace(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_size: int,
    n_nodes: Optional[int] = None,
) -> Dict[str, SimulationSeries]:
    """Replay ``trace`` against every architecture for one TP size."""
    results: Dict[str, SimulationSeries] = {}
    for arch in architectures:
        simulator = ClusterSimulator(arch, trace, n_nodes=n_nodes)
        results[arch.name] = simulator.run(tp_size)
    return results


def waste_ratio_vs_fault_ratio(
    architectures: Sequence[HBDArchitecture],
    n_nodes: int,
    tp_size: int,
    fault_ratios: Sequence[float],
    n_samples: int = 20,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Mean GPU waste ratio versus node fault ratio (Figures 14 / 22)."""
    model = IIDFaultModel(n_nodes=n_nodes, seed=seed, n_samples=n_samples)
    results: Dict[str, List[float]] = {}
    for arch in architectures:
        def metric(fault_set: Set[int], _arch=arch) -> float:
            return _arch.waste_ratio(n_nodes, fault_set, tp_size)

        results[arch.name] = model.sweep(fault_ratios, metric)
    return results


def max_job_scale_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_sizes: Sequence[int],
    n_nodes: Optional[int] = None,
    availability: float = 1.0,
) -> Dict[str, Dict[int, int]]:
    """Maximum job scale (GPUs) supported through the trace (Figure 15)."""
    results: Dict[str, Dict[int, int]] = {}
    for arch in architectures:
        simulator = ClusterSimulator(arch, trace, n_nodes=n_nodes)
        per_tp: Dict[int, int] = {}
        for tp in tp_sizes:
            series = simulator.run(tp)
            per_tp[tp] = series.supported_job_scale(availability)
        results[arch.name] = per_tp
    return results


def fault_waiting_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_size: int,
    job_scales: Sequence[int],
    n_nodes: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Job fault-waiting rate versus job scale (Figures 16 / 23)."""
    results: Dict[str, Dict[int, float]] = {}
    for arch in architectures:
        simulator = ClusterSimulator(arch, trace, n_nodes=n_nodes)
        series = simulator.run(tp_size)
        results[arch.name] = {
            scale: series.fault_waiting_rate(scale) for scale in job_scales
        }
    return results
