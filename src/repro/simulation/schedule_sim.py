"""Step-synchronous simulator for collective schedules on explicit links.

The analytical models in :mod:`repro.collectives` assume every hop of a
collective runs at the same speed.  This simulator executes a collective's
*schedule* (an explicit list of rounds, each a set of point-to-point
transfers) against a per-link bandwidth map, so heterogeneous situations can
be studied: a degraded OCSTrx bundle, a hop that fell back to a longer
backup path, or a partially failed link.

It is used to answer questions the paper's design motivates but the
analytical model cannot: how much does one slow link slow the whole TP ring
(the reason InfiniteHBD dedicates the *full* GPU bandwidth to a single active
path instead of splitting it), and how much does a Binary Exchange AllToAll
suffer when one round must take a longer detour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.collectives.cost_model import LinkSpec


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer inside a round."""

    src: str
    dst: str
    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.src == self.dst:
            raise ValueError("a transfer needs distinct endpoints")


@dataclass
class RoundResult:
    """Timing of one schedule round."""

    round_index: int
    duration_s: float
    slowest_transfer: Transfer | None


@dataclass
class ScheduleResult:
    """Timing of a whole schedule."""

    rounds: list[RoundResult]
    reconfiguration_s: float

    @property
    def total_time_s(self) -> float:
        return sum(r.duration_s for r in self.rounds) + self.reconfiguration_s

    @property
    def critical_path(self) -> list[Transfer | None]:
        return [r.slowest_transfer for r in self.rounds]


class LinkMap:
    """Per-pair link characteristics with a default fallback."""

    def __init__(self, default: LinkSpec) -> None:
        self.default = default
        self._overrides: dict[tuple[str, str], LinkSpec] = {}

    def set_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Override the link between ``a`` and ``b`` (both directions)."""
        self._overrides[(a, b)] = spec
        self._overrides[(b, a)] = spec

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Scale the bandwidth of one link by ``factor`` (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        base = self.link(a, b)
        self.set_link(
            a,
            b,
            LinkSpec(
                bandwidth_gbps=base.bandwidth_gbps * factor,
                latency_us=base.latency_us,
                protocol_efficiency=base.protocol_efficiency,
            ),
        )

    def link(self, a: str, b: str) -> LinkSpec:
        return self._overrides.get((a, b), self.default)


class ScheduleSimulator:
    """Execute a round-based schedule over a :class:`LinkMap`."""

    def __init__(self, links: LinkMap) -> None:
        self.links = links

    def run(
        self,
        schedule: Sequence[Sequence[Transfer]],
        reconfiguration_us_per_round: float = 0.0,
    ) -> ScheduleResult:
        """Run ``schedule``; each round completes when its slowest transfer does."""
        rounds: list[RoundResult] = []
        for index, transfers in enumerate(schedule):
            slowest: Transfer | None = None
            duration = 0.0
            for transfer in transfers:
                spec = self.links.link(transfer.src, transfer.dst)
                time_s = spec.transfer_time_s(transfer.size_bytes)
                if time_s > duration:
                    duration = time_s
                    slowest = transfer
            rounds.append(
                RoundResult(round_index=index, duration_s=duration, slowest_transfer=slowest)
            )
        reconfig = reconfiguration_us_per_round * 1e-6 * max(0, len(schedule))
        return ScheduleResult(rounds=rounds, reconfiguration_s=reconfig)


# --------------------------------------------------------------------------
# Schedule builders
# --------------------------------------------------------------------------
def ring_allreduce_schedule(
    members: Sequence[str], message_bytes: float
) -> list[list[Transfer]]:
    """Schedule of a bandwidth-optimal ring AllReduce.

    ``2 * (n - 1)`` rounds; in every round each member sends one
    ``message/n`` chunk to its ring successor.
    """
    n = len(members)
    if n < 2 or message_bytes <= 0:
        return []
    chunk = message_bytes / n
    rounds: list[list[Transfer]] = []
    for _ in range(2 * (n - 1)):
        rounds.append(
            [
                Transfer(src=members[i], dst=members[(i + 1) % n], size_bytes=chunk)
                for i in range(n)
            ]
        )
    return rounds


def binary_exchange_schedule(
    members: Sequence[str], block_bytes: float
) -> list[list[Transfer]]:
    """Schedule of the Binary Exchange AllToAll (Appendix G).

    ``log2(n)`` rounds; in round ``k`` member ``i`` exchanges ``n/2`` blocks
    with member ``i XOR 2^(rounds-k)``.
    """
    n = len(members)
    if n < 2:
        return []
    if n & (n - 1):
        raise ValueError("binary exchange needs a power-of-two member count")
    rounds_count = n.bit_length() - 1
    per_round_bytes = block_bytes * n / 2.0
    rounds: list[list[Transfer]] = []
    for k in range(1, rounds_count + 1):
        mask = 1 << (rounds_count - k)
        transfers: list[Transfer] = []
        for i in range(n):
            partner = i ^ mask
            transfers.append(
                Transfer(src=members[i], dst=members[partner], size_bytes=per_round_bytes)
            )
        rounds.append(transfers)
    return rounds


def simulate_degraded_ring(
    n_members: int,
    message_bytes: float,
    link: LinkSpec,
    degraded_pairs: Iterable[tuple[int, int]] = (),
    degradation_factor: float = 0.5,
) -> tuple[float, float]:
    """(healthy_time, degraded_time) of a ring AllReduce with slow links.

    Convenience wrapper used by tests and examples: members are numbered
    ``0..n-1`` and ``degraded_pairs`` lists ring edges whose bandwidth is
    scaled by ``degradation_factor``.
    """
    members = [f"gpu{i}" for i in range(n_members)]
    schedule = ring_allreduce_schedule(members, message_bytes)

    healthy = ScheduleSimulator(LinkMap(link)).run(schedule)

    degraded_map = LinkMap(link)
    for a, b in degraded_pairs:
        degraded_map.degrade_link(members[a], members[b], degradation_factor)
    degraded = ScheduleSimulator(degraded_map).run(schedule)
    return healthy.total_time_s, degraded.total_time_s
