"""Training-job goodput over a fault trace.

The section 6.2 metrics measure *capacity* (how many GPUs could run TP
groups).  This module adds the job-centric view used when arguing about
end-to-end training efficiency: a single large job replayed against the fault
trace accumulates

* **productive time** -- enough healthy, non-fragmented GPUs are available;
* **waiting time** -- usable capacity fell below the job size (the
  fault-waiting behaviour of Figure 16);
* **restart overhead** -- every fault that hits the job's allocation costs
  the work since the last checkpoint plus a fixed restart time.

Goodput is productive time net of restart losses over the wall-clock
duration.  Architectures only differ through their usable-capacity function,
so the comparison isolates the effect of fault isolation and fragmentation.

:class:`GoodputSimulator` is a thin wrapper over the multi-job cluster
scheduler (:class:`repro.scheduler.ClusterScheduler`): the single job is the
special case of a one-element workload with unbounded work and the trace
window as the horizon.  The engine walks the exact interval timeline
(:class:`repro.faults.timeline.IntervalTimeline`), so productive / waiting
hours are exact interval durations, a fault arrival is observed exactly once
(at the interval boundary where it starts), faults already active at t=0 are
never charged as job-impacting restarts, and the expected number of
job-impacting faults accumulates as a float (``len(new_faults) * job_share``
per arrival).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.faults.trace import FaultTrace
from repro.hbd.base import HBDArchitecture


@dataclass(frozen=True)
class GoodputConfig:
    """Parameters of the replayed training job.

    ``sample_interval_hours`` is deprecated: the replay is event-driven and
    exact, so the value has no effect.  Setting it to anything but the
    default emits a :class:`DeprecationWarning`, and the field is excluded
    from ``repr`` so the dead knob does not leak into logs or serialized
    dumps built from it.
    """

    job_gpus: int
    tp_size: int
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25
    sample_interval_hours: float = field(default=1.0, repr=False)

    def __post_init__(self) -> None:
        if self.job_gpus < 1 or self.tp_size < 1:
            raise ValueError("job_gpus and tp_size must be positive")
        if self.job_gpus % self.tp_size:
            raise ValueError("job_gpus must be a multiple of tp_size")
        if self.checkpoint_interval_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.restart_overhead_hours < 0:
            raise ValueError("restart_overhead_hours must be non-negative")
        if self.sample_interval_hours != 1.0:
            warnings.warn(
                "GoodputConfig.sample_interval_hours is deprecated and has no "
                "effect: the goodput replay is event-driven and exact",
                DeprecationWarning,
                stacklevel=2,
            )


@dataclass
class GoodputReport:
    """Outcome of one goodput replay.

    ``job_impacting_faults`` is the *expected* number of faults landing in
    the job's allocation (a float: each arrival contributes the job's share
    of the cluster).
    """

    total_hours: float
    productive_hours: float
    waiting_hours: float
    restart_hours: float
    job_impacting_faults: float

    @property
    def goodput(self) -> float:
        """Fraction of wall-clock time spent making training progress."""
        if self.total_hours == 0:
            return 0.0
        return max(0.0, self.productive_hours - self.restart_hours) / self.total_hours

    @property
    def waiting_fraction(self) -> float:
        if self.total_hours == 0:
            return 0.0
        return self.waiting_hours / self.total_hours


class GoodputSimulator:
    """Replay one job against a fault trace for a given HBD architecture."""

    def __init__(
        self,
        architecture: HBDArchitecture,
        trace: FaultTrace,
        config: GoodputConfig,
        n_nodes: int | None = None,
    ) -> None:
        if trace.gpus_per_node != architecture.gpus_per_node:
            raise ValueError("trace and architecture GPU-per-node mismatch")
        self.architecture = architecture
        self.config = config
        self.n_nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if self.n_nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        # Keep the source trace: its per-size timeline cache is shared, so a
        # whole architecture line-up replays one swept timeline.
        self._source_trace = trace
        self.trace = (
            trace if self.n_nodes == trace.n_nodes else trace.restrict_nodes(self.n_nodes)
        )
        if config.job_gpus > self.n_nodes * architecture.gpus_per_node:
            raise ValueError("job larger than the cluster")

    def run(self) -> GoodputReport:
        from repro.scheduler.engine import ClusterScheduler
        from repro.scheduler.jobs import JobSpec

        cfg = self.config
        timeline = self._source_trace.interval_timeline(self.n_nodes)
        job = JobSpec(
            name="goodput-job",
            gpus=cfg.job_gpus,
            tp_size=cfg.tp_size,
            work_hours=None,  # the job spans the whole trace window
            submit_hour=0.0,
            checkpoint_interval_hours=cfg.checkpoint_interval_hours,
            restart_overhead_hours=cfg.restart_overhead_hours,
        )
        report = ClusterScheduler(
            self.architecture,
            timeline,
            [job],
            horizon_hours=timeline.duration_hours,
        ).run()
        outcome = report.jobs[0]

        # The engine splits allocated time into productive vs restarting;
        # the classic goodput accounting reports the whole allocated span as
        # productive and subtracts the *charged* restart debt (capped by the
        # time the job actually held an allocation) inside ``goodput``.
        productive = outcome.productive_hours + outcome.restart_hours
        return GoodputReport(
            total_hours=timeline.duration_hours,
            productive_hours=productive,
            waiting_hours=outcome.waiting_hours,
            restart_hours=min(outcome.restart_charged_hours, productive),
            job_impacting_faults=outcome.impacting_faults,
        )


def goodput_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    config: GoodputConfig,
    n_nodes: int | None = None,
) -> dict[str, GoodputReport]:
    """Goodput of the same job across several architectures."""
    return {
        arch.name: GoodputSimulator(arch, trace, config, n_nodes=n_nodes).run()
        for arch in architectures
    }
