"""Training-job goodput over a fault trace.

The section 6.2 metrics measure *capacity* (how many GPUs could run TP
groups).  This module adds the job-centric view used when arguing about
end-to-end training efficiency: a single large job replayed against the fault
trace accumulates

* **productive time** -- enough healthy, non-fragmented GPUs are available;
* **waiting time** -- usable capacity fell below the job size (the
  fault-waiting behaviour of Figure 16);
* **restart overhead** -- every fault that hits the job's allocation costs
  the work since the last checkpoint plus a fixed restart time.

Goodput is productive time net of restart losses over the wall-clock
duration.  Architectures only differ through their usable-capacity function,
so the comparison isolates the effect of fault isolation and fragmentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.trace import FaultTrace, HOURS_PER_DAY
from repro.hbd.base import HBDArchitecture


@dataclass(frozen=True)
class GoodputConfig:
    """Parameters of the replayed training job."""

    job_gpus: int
    tp_size: int
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25
    sample_interval_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.job_gpus < 1 or self.tp_size < 1:
            raise ValueError("job_gpus and tp_size must be positive")
        if self.job_gpus % self.tp_size:
            raise ValueError("job_gpus must be a multiple of tp_size")
        if self.checkpoint_interval_hours <= 0 or self.sample_interval_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.restart_overhead_hours < 0:
            raise ValueError("restart_overhead_hours must be non-negative")


@dataclass
class GoodputReport:
    """Outcome of one goodput replay."""

    total_hours: float
    productive_hours: float
    waiting_hours: float
    restart_hours: float
    job_impacting_faults: int

    @property
    def goodput(self) -> float:
        """Fraction of wall-clock time spent making training progress."""
        if self.total_hours == 0:
            return 0.0
        return max(0.0, self.productive_hours - self.restart_hours) / self.total_hours

    @property
    def waiting_fraction(self) -> float:
        if self.total_hours == 0:
            return 0.0
        return self.waiting_hours / self.total_hours


class GoodputSimulator:
    """Replay one job against a fault trace for a given HBD architecture."""

    def __init__(
        self,
        architecture: HBDArchitecture,
        trace: FaultTrace,
        config: GoodputConfig,
        n_nodes: Optional[int] = None,
    ) -> None:
        if trace.gpus_per_node != architecture.gpus_per_node:
            raise ValueError("trace and architecture GPU-per-node mismatch")
        self.architecture = architecture
        self.config = config
        self.n_nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if self.n_nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        self.trace = (
            trace if self.n_nodes == trace.n_nodes else trace.restrict_nodes(self.n_nodes)
        )
        if config.job_gpus > self.n_nodes * architecture.gpus_per_node:
            raise ValueError("job larger than the cluster")

    def run(self) -> GoodputReport:
        cfg = self.config
        step = cfg.sample_interval_hours
        times = self.trace.sample_times(step)

        productive = waiting = restart = 0.0
        impacting_faults = 0
        previous_faults: set = set()
        job_nodes_fraction = cfg.job_gpus / (self.n_nodes * self.architecture.gpus_per_node)

        for t in times:
            faults = self.trace.faulty_nodes_at(t)
            usable = self.architecture.usable_gpus(self.n_nodes, faults, cfg.tp_size)
            running = usable >= cfg.job_gpus

            new_faults = faults - previous_faults
            if running and new_faults:
                # A new fault lands inside the job's allocation with
                # probability proportional to the job's share of the cluster;
                # count the expected number of impacting faults and charge
                # each the lost work since the last checkpoint plus the
                # restart overhead.
                expected_hits = len(new_faults) * job_nodes_fraction
                impacting_faults += round(expected_hits) if expected_hits >= 1 else (
                    1 if expected_hits > 0.5 else 0
                )
                restart += expected_hits * (
                    cfg.checkpoint_interval_hours / 2.0 + cfg.restart_overhead_hours
                )

            if running:
                productive += step
            else:
                waiting += step
            previous_faults = faults

        return GoodputReport(
            total_hours=len(times) * step,
            productive_hours=productive,
            waiting_hours=waiting,
            restart_hours=min(restart, productive),
            job_impacting_faults=impacting_faults,
        )


def goodput_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    config: GoodputConfig,
    n_nodes: Optional[int] = None,
) -> Dict[str, GoodputReport]:
    """Goodput of the same job across several architectures."""
    return {
        arch.name: GoodputSimulator(arch, trace, config, n_nodes=n_nodes).run()
        for arch in architectures
    }
