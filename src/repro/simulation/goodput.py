"""Training-job goodput over a fault trace.

The section 6.2 metrics measure *capacity* (how many GPUs could run TP
groups).  This module adds the job-centric view used when arguing about
end-to-end training efficiency: a single large job replayed against the fault
trace accumulates

* **productive time** -- enough healthy, non-fragmented GPUs are available;
* **waiting time** -- usable capacity fell below the job size (the
  fault-waiting behaviour of Figure 16);
* **restart overhead** -- every fault that hits the job's allocation costs
  the work since the last checkpoint plus a fixed restart time.

Goodput is productive time net of restart losses over the wall-clock
duration.  Architectures only differ through their usable-capacity function,
so the comparison isolates the effect of fault isolation and fragmentation.

The replay is event-driven: it walks the exact interval timeline
(:class:`repro.faults.timeline.IntervalTimeline`), so productive / waiting
hours are exact interval durations and a fault arrival is observed exactly
once, at the interval boundary where it starts.  Two accounting fixes came
with the rewrite:

* faults already active at t=0 are *not* charged as job-impacting restarts
  (the job never experienced their arrival) -- the initial fault set seeds
  the previous-state tracker;
* the expected number of job-impacting faults is accumulated as a float
  (``len(new_faults) * job_share`` per arrival) instead of being rounded
  per-step with inconsistent thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from repro.faults.timeline import IntervalTimeline
from repro.faults.trace import FaultTrace, HOURS_PER_DAY
from repro.hbd.base import HBDArchitecture


@dataclass(frozen=True)
class GoodputConfig:
    """Parameters of the replayed training job.

    ``sample_interval_hours`` is retained for spec compatibility: the replay
    is event-driven and exact, so the value no longer influences results.
    """

    job_gpus: int
    tp_size: int
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25
    sample_interval_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.job_gpus < 1 or self.tp_size < 1:
            raise ValueError("job_gpus and tp_size must be positive")
        if self.job_gpus % self.tp_size:
            raise ValueError("job_gpus must be a multiple of tp_size")
        if self.checkpoint_interval_hours <= 0 or self.sample_interval_hours <= 0:
            raise ValueError("intervals must be positive")
        if self.restart_overhead_hours < 0:
            raise ValueError("restart_overhead_hours must be non-negative")


@dataclass
class GoodputReport:
    """Outcome of one goodput replay.

    ``job_impacting_faults`` is the *expected* number of faults landing in
    the job's allocation (a float: each arrival contributes the job's share
    of the cluster).
    """

    total_hours: float
    productive_hours: float
    waiting_hours: float
    restart_hours: float
    job_impacting_faults: float

    @property
    def goodput(self) -> float:
        """Fraction of wall-clock time spent making training progress."""
        if self.total_hours == 0:
            return 0.0
        return max(0.0, self.productive_hours - self.restart_hours) / self.total_hours

    @property
    def waiting_fraction(self) -> float:
        if self.total_hours == 0:
            return 0.0
        return self.waiting_hours / self.total_hours


class GoodputSimulator:
    """Replay one job against a fault trace for a given HBD architecture."""

    def __init__(
        self,
        architecture: HBDArchitecture,
        trace: FaultTrace,
        config: GoodputConfig,
        n_nodes: Optional[int] = None,
    ) -> None:
        if trace.gpus_per_node != architecture.gpus_per_node:
            raise ValueError("trace and architecture GPU-per-node mismatch")
        self.architecture = architecture
        self.config = config
        self.n_nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if self.n_nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        # Keep the source trace: its per-size timeline cache is shared, so a
        # whole architecture line-up replays one swept timeline.
        self._source_trace = trace
        self.trace = (
            trace if self.n_nodes == trace.n_nodes else trace.restrict_nodes(self.n_nodes)
        )
        if config.job_gpus > self.n_nodes * architecture.gpus_per_node:
            raise ValueError("job larger than the cluster")

    def run(self) -> GoodputReport:
        cfg = self.config
        timeline = self._source_trace.interval_timeline(self.n_nodes)
        job_nodes_fraction = cfg.job_gpus / (
            self.n_nodes * self.architecture.gpus_per_node
        )
        restart_cost_per_hit = (
            cfg.checkpoint_interval_hours / 2.0 + cfg.restart_overhead_hours
        )

        productive = waiting = restart = 0.0
        impacting_faults = 0.0
        usable_cache: Dict[FrozenSet[int], int] = {}
        # Seed from the state at the first instant: faults already active at
        # t=0 are pre-existing capacity loss, not arrivals the job survives.
        previous_faults: FrozenSet[int] = (
            timeline.intervals[0].nodes if timeline.intervals else frozenset()
        )

        for interval in timeline.intervals:
            faults = interval.nodes
            usable = usable_cache.get(faults)
            if usable is None:
                usable = self.architecture.usable_gpus(
                    self.n_nodes, faults, cfg.tp_size
                )
                usable_cache[faults] = usable
            running = usable >= cfg.job_gpus

            new_faults = faults - previous_faults
            if running and new_faults:
                # A new fault lands inside the job's allocation with
                # probability proportional to the job's share of the cluster;
                # accumulate the expected number of impacting faults and
                # charge each the lost work since the last checkpoint plus
                # the restart overhead.
                expected_hits = len(new_faults) * job_nodes_fraction
                impacting_faults += expected_hits
                restart += expected_hits * restart_cost_per_hit

            if running:
                productive += interval.duration_hours
            else:
                waiting += interval.duration_hours
            previous_faults = faults

        return GoodputReport(
            total_hours=timeline.duration_hours,
            productive_hours=productive,
            waiting_hours=waiting,
            restart_hours=min(restart, productive),
            job_impacting_faults=impacting_faults,
        )


def goodput_comparison(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    config: GoodputConfig,
    n_nodes: Optional[int] = None,
) -> Dict[str, GoodputReport]:
    """Goodput of the same job across several architectures."""
    return {
        arch.name: GoodputSimulator(arch, trace, config, n_nodes=n_nodes).run()
        for arch in architectures
    }
