"""Command-line interface for the InfiniteHBD reproduction.

Exposes the main experiment pipelines as subcommands so results can be
regenerated without writing Python:

* ``trace``         -- generate a synthetic production-style fault trace (CSV).
* ``waste``         -- trace-driven GPU-waste comparison across architectures.
* ``orchestrate``   -- cross-ToR traffic of the greedy baseline vs the
  optimized HBD-DCN orchestration algorithm.
* ``mfu``           -- MFU-optimal parallelism search for Llama / GPT-MoE.
* ``cost``          -- interconnect cost and power table (Table 6).
* ``goodput``       -- job goodput over the fault trace.
* ``schedule``      -- multi-job cluster scheduling over the fault trace;
  every policy in the :mod:`repro.scheduler.policies` registry is available
  (``--policy`` enumerates them), optionally preemptive / placed.
* ``run``           -- execute a declarative JSON experiment spec through the
  Unified Experiment API (:mod:`repro.api`) and emit serializable results,
  optionally memoized through the content-addressed result cache
  (``--cache memory|disk``).
* ``cache``         -- inspect or clear the on-disk result cache.
* ``architectures`` -- list every architecture in the plugin registry.
* ``docs``          -- emit the generated CLI reference (docs/cli.md).

The trace-driven subcommands are all built on :class:`repro.api.
ExperimentRunner`, so they share memoized trace generation and can fan the
architecture line-up out over a process pool (``--workers``).

Run ``python -m repro.cli --help`` (or the ``infinitehbd-repro`` entry point)
for the full option list.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from collections.abc import Iterator, Sequence
from typing import Any, cast

from repro.api.runner import ExperimentRunner
from repro.api.spec import (
    CorrelatedFaultSpec,
    ExperimentSpec,
    Scenario,
    SchedulerSpec,
    TraceSpec,
    WorkloadSpec,
    default_architecture_specs,
)
from repro.cache import CACHE_MODES
from repro.scheduler.placement import PLACEMENT_NAMES
from repro.scheduler.policies import POLICY_NAMES


# --------------------------------------------------------------------------
# subcommand implementations (return lines of text so they are testable)
# --------------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> list[str]:
    # TraceSpec owns the node-granularity logic: 8 GPUs/node is the generated
    # trace, 4 GPUs/node applies the Bayes conversion; anything else is
    # rejected by both argparse (choices) and TraceSpec validation.
    spec = TraceSpec(days=args.days, seed=args.seed, gpus_per_node=args.gpus_per_node)
    trace = spec.build()
    stats = trace.statistics()
    lines = [
        f"nodes={trace.n_nodes} gpus_per_node={trace.gpus_per_node} days={trace.duration_days}",
        f"events={stats.n_events} mean_ratio={stats.mean_fault_ratio:.4f} "
        f"p99_ratio={stats.p99_fault_ratio:.4f}",
    ]
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(trace.to_csv())
        lines.append(f"wrote {args.output}")
    return lines


def cmd_waste(args: argparse.Namespace) -> list[str]:
    spec = ExperimentSpec.of(
        scenario=Scenario(
            name="cli-waste",
            trace=TraceSpec(days=args.days, seed=args.seed, gpus_per_node=4),
            architectures=default_architecture_specs(),
            tp_sizes=(args.tp,),
            n_nodes=args.nodes,
            seed=args.seed,
        ),
        experiments=("waste",),
        max_workers=args.workers,
    )
    results = ExperimentRunner(spec).run()
    lines = [f"{'architecture':20s} {'mean waste':>11s} {'p99 waste':>10s} {'min usable':>11s}"]
    for result in results:
        lines.append(
            f"{result.architecture:20s} {result.metric('mean_waste_ratio'):11.4f} "
            f"{result.metric('p99_waste_ratio'):10.4f} {result.metric('min_usable_gpus'):11d}"
        )
    return lines


def cmd_orchestrate(args: argparse.Namespace) -> list[str]:
    import numpy as np

    from repro.core.orchestrator import JobSpec, Orchestrator
    from repro.dcn.fattree import FatTreeConfig
    from repro.faults.model import sample_fault_set

    gpus_per_node = 4
    n_nodes = args.gpus // gpus_per_node
    orchestrator = Orchestrator(
        n_nodes=n_nodes,
        k=args.k,
        fat_tree_config=FatTreeConfig(
            n_nodes=n_nodes, nodes_per_tor=4, tors_per_domain=args.tors_per_domain
        ),
    )
    job_gpus = int(args.job_scale_ratio * args.gpus) // args.tp * args.tp
    job = JobSpec(total_gpus=job_gpus, tp_size=args.tp, gpus_per_node=gpus_per_node)
    faults = sample_fault_set(n_nodes, args.fault_ratio, np.random.default_rng(args.seed))
    lines = [
        f"cluster={args.gpus} GPUs  job={job_gpus} GPUs (TP-{args.tp})  "
        f"faults={len(faults)} nodes ({args.fault_ratio:.1%})"
    ]
    for method in ("greedy", "optimized"):
        result, report = orchestrator.place_and_report(job, faults, method=method, seed=args.seed)
        lines.append(
            f"{method:10s} satisfied={result.satisfied} "
            f"constraints={result.constraints_used} "
            f"cross_tor_rate={report.cross_tor_rate:.4f}"
        )
    return lines


def cmd_mfu(args: argparse.Namespace) -> list[str]:
    from repro.training.models import gpt_moe_1t, llama31_405b
    from repro.training.parallelism import search_optimal_strategy

    if args.model == "llama":
        model = llama31_405b()
        global_batch = args.global_batch or 2048
        ep_choices: Sequence[int] = (1,)
    else:
        model = gpt_moe_1t()
        global_batch = args.global_batch or 1536
        ep_choices = (1, 2, 4, 8)
    result = search_optimal_strategy(
        model, args.gpus, global_batch, ep_choices=ep_choices,
        expert_imbalance_coef=args.imbalance, max_tp=args.max_tp,
    )
    if result.best_config is None:
        return [f"no feasible strategy for {model.name} on {args.gpus} GPUs"]
    c, e = result.best_config, result.best_estimate
    return [
        f"model={model.name} gpus={args.gpus} global_batch={global_batch}",
        f"best: TP={c.tp} PP={c.pp} DP={c.dp} EP={c.ep}",
        f"mfu={e.mfu:.4f} iteration_time_s={e.iteration_time_s:.3f} "
        f"bubble={e.bubble_fraction:.3f} memory_GiB={e.memory_gib_per_gpu:.1f}",
    ]


def cmd_cost(args: argparse.Namespace) -> list[str]:
    from repro.cost.analysis import interconnect_cost_table

    rows = interconnect_cost_table(include_hpn=args.include_hpn)
    lines = [f"{'architecture':20s} {'$/GPU':>10s} {'W/GPU':>8s} {'$/GBps':>8s} {'W/GBps':>8s}"]
    for row in rows:
        lines.append(
            f"{row.name:20s} {row.cost_per_gpu:10.2f} {row.power_per_gpu:8.2f} "
            f"{row.cost_per_gBps:8.2f} {row.power_per_gBps:8.3f}"
        )
    return lines


def cmd_goodput(args: argparse.Namespace) -> list[str]:
    spec = ExperimentSpec.of(
        scenario=Scenario(
            name="cli-goodput",
            trace=TraceSpec(days=args.days, seed=args.seed, gpus_per_node=4),
            architectures=default_architecture_specs(),
            tp_sizes=(args.tp,),
            n_nodes=args.nodes,
            seed=args.seed,
            job_gpus=args.job_gpus,
        ),
        experiments=("goodput",),
        max_workers=args.workers,
    )
    results = ExperimentRunner(spec).run()
    # job_impacting_faults is an expected value (float) since the exact
    # event-driven goodput accounting landed.
    lines = [f"{'architecture':20s} {'goodput':>8s} {'waiting':>8s} {'restarts':>9s}"]
    for result in results:
        lines.append(
            f"{result.architecture:20s} {result.metric('goodput'):8.4f} "
            f"{result.metric('waiting_fraction'):8.4f} "
            f"{result.metric('job_impacting_faults'):9.2f}"
        )
    return lines


def cmd_schedule(args: argparse.Namespace) -> list[str]:
    correlated = (
        CorrelatedFaultSpec(correlation=args.correlation, domain_size=args.domain_size)
        if args.correlation is not None
        else None
    )
    spec = ExperimentSpec.of(
        scenario=Scenario(
            name="cli-schedule",
            trace=TraceSpec(
                days=args.days, seed=args.seed, gpus_per_node=4, correlated=correlated
            ),
            architectures=default_architecture_specs(),
            tp_sizes=(args.tp,),
            n_nodes=args.nodes,
            seed=args.seed,
            workload=WorkloadSpec(
                n_jobs=args.jobs,
                seed=args.seed,
                mean_interarrival_hours=args.mean_interarrival,
                median_work_hours=args.median_work,
            ),
            scheduler=SchedulerSpec(
                policy=args.policy,
                preemptive=args.preemptive,
                placement=args.placement,
                backfill=args.backfill,
                gittins_threshold_gpu_hours=args.gittins_threshold,
                gittins_levels=args.gittins_levels,
                gittins_starve_limit=args.gittins_starve_limit,
                lookahead_k=args.lookahead_k,
                optimizer_horizon_hours=args.optimizer_horizon,
                optimizer_stability_bonus=args.optimizer_stability,
            ),
        ),
        experiments=("schedule",),
        max_workers=args.workers,
    )
    results = ExperimentRunner(spec).run()
    # Report the resolved preemption mode (gittins / optimizer preempt by
    # default even without --preemptive).
    resolved = spec.scenario.scheduler.build().preemptive
    lines = [
        f"policy={args.policy} preemptive={resolved} "
        f"placement={args.placement or 'expected-value'} "
        f"backfill={args.backfill} jobs={args.jobs}",
        f"{'architecture':20s} {'done':>9s} {'makespan':>9s} {'mean JCT':>9s} "
        f"{'p99 JCT':>9s} {'queue':>7s} {'goodput':>8s} {'rho':>6s} {'Jain':>6s}",
    ]
    for result in results:
        lines.append(
            f"{result.architecture:20s} "
            f"{result.metric('finished_jobs'):4d}/{result.metric('n_jobs'):<4d} "
            f"{result.metric('makespan_hours'):9.1f} "
            f"{result.metric('mean_jct_hours'):9.2f} "
            f"{result.metric('p99_jct_hours'):9.2f} "
            f"{result.metric('mean_queueing_delay_hours'):7.2f} "
            f"{result.metric('cluster_goodput'):8.4f} "
            f"{result.metric('mean_finish_time_fairness'):6.2f} "
            f"{result.metric('jain_fairness_index'):6.3f}"
        )
    return lines


def cmd_run(args: argparse.Namespace) -> list[str]:
    with open(args.spec) as handle:
        spec = ExperimentSpec.from_dict(json.load(handle))
    if args.correlation is not None:
        # Dial the correlated overlay without editing the spec file; the
        # overlay keeps the spec's other knobs (or the defaults if unset).
        trace = spec.scenario.trace
        overlay = dataclasses.replace(
            trace.correlated or CorrelatedFaultSpec(), correlation=args.correlation
        )
        spec = dataclasses.replace(
            spec,
            scenario=dataclasses.replace(
                spec.scenario,
                trace=dataclasses.replace(trace, correlated=overlay),
            ),
        )
    results = ExperimentRunner(
        spec, max_workers=args.workers, num_seeds=args.seeds, cache=args.cache
    ).run()

    lines = [
        f"scenario={spec.scenario.name} experiments={','.join(spec.experiments)} "
        f"tasks={len(results)} spec_sha256={spec.digest()[:12]}"
    ]
    for result in results:
        scalars = " ".join(
            f"{key}={_fmt_metric(value)}"
            for key, value in result.metrics
            if not isinstance(value, (list, tuple))
        )
        tp = f" tp={result.tp_size}" if result.tp_size else ""
        lines.append(f"{result.experiment:>14s} {result.architecture:20s}{tp} {scalars}")
    if results.cache_stats is not None:
        stats = results.cache_stats
        lines.append(
            f"cache[{stats.mode}] hits={stats.hits} misses={stats.misses} "
            f"stored={stats.stored}"
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(results.to_json())
        lines.append(f"wrote {args.output}")
    return lines


def cmd_cache(args: argparse.Namespace) -> list[str]:
    from repro.cache import clear_disk_cache, clear_memory_cache, disk_cache_info

    if args.action == "clear":
        removed = clear_disk_cache(args.dir)
        dropped = clear_memory_cache()
        return [f"removed {removed} disk entries, dropped {dropped} memory entries"]
    info = disk_cache_info(args.dir)
    return [
        f"directory={info.directory}",
        f"schema_version={info.schema_version}",
        f"entries={info.entries} total_bytes={info.total_bytes}",
    ]


def cmd_architectures(args: argparse.Namespace) -> list[str]:
    from repro.api.registry import REGISTRY

    lines = [f"{'name':20s} {'aliases':28s} description"]
    for entry in REGISTRY:
        aliases = ", ".join(entry.aliases) if entry.aliases else "-"
        lines.append(f"{entry.name:20s} {aliases:28s} {entry.description}")
    return lines


def cmd_docs(args: argparse.Namespace) -> list[str]:
    return render_cli_reference().splitlines()


def cmd_lint(args: argparse.Namespace) -> list[str]:
    import io

    from repro.devtools.lint import run as lint_run

    argv = list(args.paths) + ["--format", args.format]
    if args.config is not None:
        argv += ["--config", args.config]
    buffer = io.StringIO()
    status = lint_run(argv, stream=buffer)
    lines = buffer.getvalue().splitlines()
    if status:
        # Findings remain: print them here so the nonzero exit can propagate.
        for line in lines:
            print(line)
        raise SystemExit(status)
    return lines


def _fmt_metric(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


# --------------------------------------------------------------------------
# argument parsing
# --------------------------------------------------------------------------
class _DocHelpFormatter(argparse.HelpFormatter):
    """Fixed-width help formatter so the generated reference is stable.

    The default formatter wraps at the current terminal width, which would
    make ``docs/cli.md`` depend on whoever regenerated it last; pinning the
    width makes the docs reproducible and lets a test diff them against the
    live argparse output.
    """

    WIDTH = 78

    def __init__(self, prog: str) -> None:
        super().__init__(prog, width=self.WIDTH)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="infinitehbd-repro",
        description="InfiniteHBD (SIGCOMM 2025) reproduction experiments",
        formatter_class=_DocHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs: Any) -> argparse.ArgumentParser:
        kwargs.setdefault("formatter_class", _DocHelpFormatter)
        return sub.add_parser(name, **kwargs)

    p = add_parser("trace", help="generate a synthetic fault trace")
    p.add_argument("--days", type=int, default=348)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--gpus-per-node", type=int, choices=(4, 8), default=8)
    p.add_argument("--output", type=str, default=None)
    p.set_defaults(func=cmd_trace)

    p = add_parser("waste", help="GPU waste comparison over the trace")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--nodes", type=int, default=720)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per CPU)")
    p.set_defaults(func=cmd_waste)

    p = add_parser("orchestrate", help="cross-ToR traffic comparison")
    p.add_argument("--gpus", type=int, default=8192)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--job-scale-ratio", type=float, default=0.85)
    p.add_argument("--fault-ratio", type=float, default=0.05)
    p.add_argument("--tors-per-domain", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_orchestrate)

    p = add_parser("mfu", help="optimal parallelism search")
    p.add_argument("--model", choices=("llama", "moe"), default="llama")
    p.add_argument("--gpus", type=int, default=8192)
    p.add_argument("--global-batch", type=int, default=None)
    p.add_argument("--imbalance", type=float, default=0.2)
    p.add_argument("--max-tp", type=int, default=None)
    p.set_defaults(func=cmd_mfu)

    p = add_parser("cost", help="interconnect cost / power table")
    p.add_argument("--include-hpn", action="store_true")
    p.set_defaults(func=cmd_cost)

    p = add_parser("goodput", help="job goodput over the fault trace")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--nodes", type=int, default=720)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--job-gpus", type=int, default=2560)
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per CPU)")
    p.set_defaults(func=cmd_goodput)

    p = add_parser(
        "schedule", help="multi-job cluster scheduling over the fault trace"
    )
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--nodes", type=int, default=720)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--jobs", type=int, default=200,
                   help="number of synthetic jobs in the queue")
    p.add_argument("--policy", choices=POLICY_NAMES, default="fifo",
                   help="scheduling policy, from the policy registry "
                        f"({', '.join(POLICY_NAMES)}; default: fifo)")
    p.add_argument("--preemptive", action="store_true",
                   help="force preemption on (gittins and optimizer are "
                        "preemptive by default)")
    p.add_argument("--gittins-threshold", type=float, default=2048.0,
                   help="gittins: first demotion threshold in attained "
                        "GPU-hours; doubles per queue level")
    p.add_argument("--gittins-levels", type=int, default=3,
                   help="gittins: number of discretized priority queues")
    p.add_argument("--gittins-starve-limit", type=float, default=4.0,
                   help="gittins: promote a demoted job once it has waited "
                        "this many times its executed hours")
    p.add_argument("--lookahead-k", type=int, default=5,
                   help="lookahead: queue window scored per admission")
    p.add_argument("--optimizer-horizon", type=float, default=8.0,
                   help="optimizer: goodput-utility planning horizon (hours)")
    p.add_argument("--optimizer-stability", type=float, default=0.5,
                   help="optimizer: per-GPU utility bonus for keeping an "
                        "allocated job in place (migration penalty)")
    p.add_argument("--placement", choices=PLACEMENT_NAMES, default=None,
                   help="node-level placement policy (default: expected-value "
                        "capacity replay without concrete nodes)")
    p.add_argument("--backfill", action="store_true",
                   help="EASY backfill: small jobs may jump a blocked FIFO "
                        "head when they cannot delay its projected start")
    p.add_argument("--mean-interarrival", type=float, default=1.0,
                   help="mean Poisson inter-arrival time (hours)")
    p.add_argument("--median-work", type=float, default=8.0,
                   help="median productive work per job (hours)")
    p.add_argument("--correlation", type=float, default=None,
                   help="layer correlated domain failures on the trace at "
                        "this level in [0, 1] (default: independent faults "
                        "only; 0 is byte-identical to the default)")
    p.add_argument("--domain-size", type=int, default=8,
                   help="nodes per failure domain for --correlation")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per CPU)")
    p.set_defaults(func=cmd_schedule)

    p = add_parser(
        "run", help="run a declarative JSON experiment spec (repro.api)"
    )
    p.add_argument("--spec", type=str, required=True,
                   help="path to an ExperimentSpec JSON file")
    p.add_argument("--output", type=str, default=None,
                   help="write the ResultSet JSON here")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per CPU)")
    p.add_argument("--seeds", type=int, default=None,
                   help="Monte-Carlo seed count: repeat every experiment over "
                        "N trace seeds and add mean/stddev/ci95 metric "
                        "columns (default: the spec's num_seeds, usually 1)")
    p.add_argument("--cache", choices=CACHE_MODES, default=None,
                   help="result cache mode: serve repeated tasks from the "
                        "content-addressed store (memory = this process, "
                        "disk = persistent under $REPRO_CACHE_DIR or "
                        "~/.cache/repro; default: the spec's cache, "
                        "usually off)")
    p.add_argument("--correlation", type=float, default=None,
                   help="override the trace's correlated-failure level in "
                        "[0, 1] without editing the spec file (default: the "
                        "spec's own overlay, usually none)")
    p.set_defaults(func=cmd_run)

    p = add_parser("cache", help="inspect or clear the on-disk result cache")
    p.add_argument("action", choices=("info", "clear"),
                   help="info: entry count and size; clear: remove every entry")
    p.add_argument("--dir", type=str, default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro)")
    p.set_defaults(func=cmd_cache)

    p = add_parser("architectures", help="list the architecture registry")
    p.set_defaults(func=cmd_architectures)

    p = add_parser("docs", help="print the generated CLI reference (markdown)")
    p.set_defaults(func=cmd_docs)

    p = add_parser("lint", help="determinism linter (rules D001-D009)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    p.add_argument("--config", metavar="PYPROJECT", default=None,
                   help="explicit pyproject.toml to read [tool.repro-lint] from")
    p.set_defaults(func=cmd_lint)

    return parser


# --------------------------------------------------------------------------
# generated CLI reference (docs/cli.md)
# --------------------------------------------------------------------------
#: One runnable invocation per subcommand, shown in the generated reference.
_DOC_EXAMPLES = {
    "trace": "python -m repro.cli trace --days 60 --output trace.csv",
    "waste": "python -m repro.cli waste --days 60 --nodes 720 --tp 32",
    "orchestrate": "python -m repro.cli orchestrate --gpus 8192 --tp 32 --fault-ratio 0.05",
    "mfu": "python -m repro.cli mfu --model moe --gpus 8192",
    "cost": "python -m repro.cli cost --include-hpn",
    "goodput": "python -m repro.cli goodput --days 60 --job-gpus 2560",
    "schedule": "python -m repro.cli schedule --jobs 200 --placement packed --backfill",
    "run": "python -m repro.cli run --spec demo.json --cache disk --output results.json",
    "cache": "python -m repro.cli cache info",
    "architectures": "python -m repro.cli architectures",
    "docs": "python -m repro.cli docs > docs/cli.md",
    "lint": "python -m repro.cli lint src",
}


def iter_subcommands(
    parser: argparse.ArgumentParser | None = None,
) -> Iterator[tuple[str, argparse.ArgumentParser]]:
    """``(name, subparser)`` pairs of the CLI, in registration order."""
    parser = parser if parser is not None else build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            # choices preserves registration order and skips alias duplicates
            choices = cast("dict[str, argparse.ArgumentParser]", action.choices)
            yield from choices.items()


def render_cli_reference() -> str:
    """The markdown CLI reference, generated from the live argparse tree.

    ``docs/cli.md`` is this function's verbatim output (regenerate with
    ``python -m repro.cli docs > docs/cli.md``); a test diffs the file
    against a fresh render so documented help text can never drift from
    ``--help``.
    """
    parser = build_parser()
    lines = [
        "# CLI reference",
        "",
        "Every experiment pipeline is exposed as a subcommand of "
        "`python -m repro.cli` (installed as `infinitehbd-repro`).",
        "",
        "**Generated file -- do not edit by hand.**  Regenerate with "
        "`python -m repro.cli docs > docs/cli.md`; CI fails when this file "
        "and the argparse `--help` output disagree.",
        "",
        "```text",
        parser.format_help().rstrip(),
        "```",
    ]
    for name, subparser in iter_subcommands(parser):
        lines += [
            "",
            f"## `{name}`",
            "",
            "```bash",
            _DOC_EXAMPLES[name],
            "```",
            "",
            "```text",
            subparser.format_help().rstrip(),
            "```",
        ]
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for line in args.func(args):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
