"""Command-line interface for the InfiniteHBD reproduction.

Exposes the main experiment pipelines as subcommands so results can be
regenerated without writing Python:

* ``trace``       -- generate a synthetic production-style fault trace (CSV).
* ``waste``       -- trace-driven GPU-waste comparison across architectures.
* ``orchestrate`` -- cross-ToR traffic of the greedy baseline vs the
  optimized HBD-DCN orchestration algorithm.
* ``mfu``         -- MFU-optimal parallelism search for Llama / GPT-MoE.
* ``cost``        -- interconnect cost and power table (Table 6).
* ``goodput``     -- job goodput over the fault trace.

Run ``python -m repro.cli --help`` (or the ``infinitehbd-repro`` entry point)
for the full option list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.core.orchestrator import JobSpec, Orchestrator
from repro.cost.analysis import interconnect_cost_table
from repro.dcn.fattree import FatTreeConfig
from repro.faults.convert import convert_trace_8gpu_to_4gpu
from repro.faults.model import sample_fault_set
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.hbd import default_architectures
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.goodput import GoodputConfig, goodput_comparison
from repro.training.models import gpt_moe_1t, llama31_405b
from repro.training.parallelism import search_optimal_strategy


# --------------------------------------------------------------------------
# subcommand implementations (return lines of text so they are testable)
# --------------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> List[str]:
    config = SyntheticTraceConfig(duration_days=args.days, seed=args.seed)
    trace = generate_synthetic_trace(config)
    if args.gpus_per_node == 4:
        trace = convert_trace_8gpu_to_4gpu(trace, seed=args.seed)
    stats = trace.statistics()
    lines = [
        f"nodes={trace.n_nodes} gpus_per_node={trace.gpus_per_node} days={trace.duration_days}",
        f"events={stats.n_events} mean_ratio={stats.mean_fault_ratio:.4f} "
        f"p99_ratio={stats.p99_fault_ratio:.4f}",
    ]
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(trace.to_csv())
        lines.append(f"wrote {args.output}")
    return lines


def cmd_waste(args: argparse.Namespace) -> List[str]:
    trace8 = generate_synthetic_trace(
        SyntheticTraceConfig(duration_days=args.days, seed=args.seed)
    )
    trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=args.seed)
    lines = [f"{'architecture':20s} {'mean waste':>11s} {'p99 waste':>10s} {'min usable':>11s}"]
    for arch in default_architectures(4):
        series = ClusterSimulator(arch, trace4, n_nodes=args.nodes).run(args.tp)
        lines.append(
            f"{arch.name:20s} {series.mean_waste_ratio:11.4f} "
            f"{series.p99_waste_ratio:10.4f} {series.min_usable_gpus:11d}"
        )
    return lines


def cmd_orchestrate(args: argparse.Namespace) -> List[str]:
    gpus_per_node = 4
    n_nodes = args.gpus // gpus_per_node
    orchestrator = Orchestrator(
        n_nodes=n_nodes,
        k=args.k,
        fat_tree_config=FatTreeConfig(
            n_nodes=n_nodes, nodes_per_tor=4, tors_per_domain=args.tors_per_domain
        ),
    )
    job_gpus = int(args.job_scale_ratio * args.gpus) // args.tp * args.tp
    job = JobSpec(total_gpus=job_gpus, tp_size=args.tp, gpus_per_node=gpus_per_node)
    faults = sample_fault_set(n_nodes, args.fault_ratio, np.random.default_rng(args.seed))
    lines = [
        f"cluster={args.gpus} GPUs  job={job_gpus} GPUs (TP-{args.tp})  "
        f"faults={len(faults)} nodes ({args.fault_ratio:.1%})"
    ]
    for method in ("greedy", "optimized"):
        result, report = orchestrator.place_and_report(job, faults, method=method, seed=args.seed)
        lines.append(
            f"{method:10s} satisfied={result.satisfied} "
            f"constraints={result.constraints_used} "
            f"cross_tor_rate={report.cross_tor_rate:.4f}"
        )
    return lines


def cmd_mfu(args: argparse.Namespace) -> List[str]:
    if args.model == "llama":
        model = llama31_405b()
        global_batch = args.global_batch or 2048
        ep_choices: Sequence[int] = (1,)
    else:
        model = gpt_moe_1t()
        global_batch = args.global_batch or 1536
        ep_choices = (1, 2, 4, 8)
    result = search_optimal_strategy(
        model, args.gpus, global_batch, ep_choices=ep_choices,
        expert_imbalance_coef=args.imbalance, max_tp=args.max_tp,
    )
    if result.best_config is None:
        return [f"no feasible strategy for {model.name} on {args.gpus} GPUs"]
    c, e = result.best_config, result.best_estimate
    return [
        f"model={model.name} gpus={args.gpus} global_batch={global_batch}",
        f"best: TP={c.tp} PP={c.pp} DP={c.dp} EP={c.ep}",
        f"mfu={e.mfu:.4f} iteration_time_s={e.iteration_time_s:.3f} "
        f"bubble={e.bubble_fraction:.3f} memory_GiB={e.memory_gib_per_gpu:.1f}",
    ]


def cmd_cost(args: argparse.Namespace) -> List[str]:
    rows = interconnect_cost_table(include_hpn=args.include_hpn)
    lines = [f"{'architecture':20s} {'$/GPU':>10s} {'W/GPU':>8s} {'$/GBps':>8s} {'W/GBps':>8s}"]
    for row in rows:
        lines.append(
            f"{row.name:20s} {row.cost_per_gpu:10.2f} {row.power_per_gpu:8.2f} "
            f"{row.cost_per_gBps:8.2f} {row.power_per_gBps:8.3f}"
        )
    return lines


def cmd_goodput(args: argparse.Namespace) -> List[str]:
    trace8 = generate_synthetic_trace(
        SyntheticTraceConfig(duration_days=args.days, seed=args.seed)
    )
    trace4 = convert_trace_8gpu_to_4gpu(trace8, seed=args.seed)
    config = GoodputConfig(job_gpus=args.job_gpus, tp_size=args.tp)
    reports = goodput_comparison(
        default_architectures(4), trace4, config, n_nodes=args.nodes
    )
    lines = [f"{'architecture':20s} {'goodput':>8s} {'waiting':>8s} {'restarts':>9s}"]
    for name, report in reports.items():
        lines.append(
            f"{name:20s} {report.goodput:8.4f} {report.waiting_fraction:8.4f} "
            f"{report.job_impacting_faults:9d}"
        )
    return lines


# --------------------------------------------------------------------------
# argument parsing
# --------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="infinitehbd-repro",
        description="InfiniteHBD (SIGCOMM 2025) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="generate a synthetic fault trace")
    p.add_argument("--days", type=int, default=348)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--gpus-per-node", type=int, choices=(4, 8), default=8)
    p.add_argument("--output", type=str, default=None)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("waste", help="GPU waste comparison over the trace")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--nodes", type=int, default=720)
    p.add_argument("--tp", type=int, default=32)
    p.set_defaults(func=cmd_waste)

    p = sub.add_parser("orchestrate", help="cross-ToR traffic comparison")
    p.add_argument("--gpus", type=int, default=8192)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--job-scale-ratio", type=float, default=0.85)
    p.add_argument("--fault-ratio", type=float, default=0.05)
    p.add_argument("--tors-per-domain", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_orchestrate)

    p = sub.add_parser("mfu", help="optimal parallelism search")
    p.add_argument("--model", choices=("llama", "moe"), default="llama")
    p.add_argument("--gpus", type=int, default=8192)
    p.add_argument("--global-batch", type=int, default=None)
    p.add_argument("--imbalance", type=float, default=0.2)
    p.add_argument("--max-tp", type=int, default=None)
    p.set_defaults(func=cmd_mfu)

    p = sub.add_parser("cost", help="interconnect cost / power table")
    p.add_argument("--include-hpn", action="store_true")
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser("goodput", help="job goodput over the fault trace")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--seed", type=int, default=348)
    p.add_argument("--nodes", type=int, default=720)
    p.add_argument("--tp", type=int, default=32)
    p.add_argument("--job-gpus", type=int, default=2560)
    p.set_defaults(func=cmd_goodput)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for line in args.func(args):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
