"""Unified Experiment API: the canonical way to run every experiment.

The package ties three layers together:

* :mod:`repro.api.registry` -- a plugin registry of HBD architecture
  factories (:data:`REGISTRY`); new variants register with a decorator and
  become runnable by name everywhere, spec files included.
* :mod:`repro.api.spec` -- frozen, JSON-round-trippable experiment
  descriptions (:class:`TraceSpec`, :class:`ArchitectureSpec`,
  :class:`Scenario`, :class:`ExperimentSpec`).
* :mod:`repro.api.runner` -- :class:`ExperimentRunner`, which executes the
  architecture × TP-size sweep with process parallelism, memoized trace
  generation and shared fault timelines, emitting a uniform
  :class:`ResultSet` of :class:`ExperimentResult` records with provenance.

Quickstart::

    from repro.api import ExperimentSpec, Scenario, run_experiment

    spec = ExperimentSpec.of(
        scenario=Scenario.default("demo", tp_sizes=(32,), n_nodes=288, job_gpus=1024),
        experiments=("waste", "goodput"),
    )
    results = run_experiment(spec)
    for r in results.filter(experiment="waste"):
        print(r.architecture, r.metric("mean_waste_ratio"))

The same spec serializes to JSON (``spec.to_json()``) and runs from the
command line: ``python -m repro.cli run --spec spec.json``.
"""

from repro.api.registry import (
    ArchitectureEntry,
    ArchitectureRegistry,
    REGISTRY,
    get_registry,
)
from repro.api.spec import (
    KNOWN_EXPERIMENTS,
    ArchitectureSpec,
    CorrelatedFaultSpec,
    ExperimentSpec,
    JobSpec,
    Scenario,
    SchedulerSpec,
    TraceSpec,
    WorkloadSpec,
    default_architecture_specs,
)
from repro.api.results import (
    RESULT_SCHEMA_VERSION,
    CacheStats,
    ExperimentResult,
    Provenance,
    ResultSet,
)
from repro.api.runner import (
    ExperimentRunner,
    compare_architectures_over_trace,
    compare_architectures_over_tp_sizes,
    run_experiment,
)

__all__ = [
    "ArchitectureEntry",
    "ArchitectureRegistry",
    "REGISTRY",
    "get_registry",
    "KNOWN_EXPERIMENTS",
    "ArchitectureSpec",
    "CorrelatedFaultSpec",
    "ExperimentSpec",
    "JobSpec",
    "Scenario",
    "SchedulerSpec",
    "TraceSpec",
    "WorkloadSpec",
    "default_architecture_specs",
    "RESULT_SCHEMA_VERSION",
    "CacheStats",
    "ExperimentResult",
    "Provenance",
    "ResultSet",
    "ExperimentRunner",
    "compare_architectures_over_trace",
    "compare_architectures_over_tp_sizes",
    "run_experiment",
]
