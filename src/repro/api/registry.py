"""Plugin-style registry of HBD architecture factories.

The registry decouples *naming* an architecture from *constructing* it: a
factory is registered once (typically with the :meth:`ArchitectureRegistry.
register` decorator) and every consumer -- the CLI, the experiment runner,
sweep helpers, spec files -- creates instances by name.  New HBD variants
therefore plug in without editing any core module::

    from repro.api import REGISTRY

    @REGISTRY.register("dual-rail", defaults={"hbd_size": 144})
    def _dual_rail(gpus_per_node=4, hbd_size=144):
        return NVLHBD(hbd_size, gpus_per_node=gpus_per_node)

    arch = REGISTRY.create("dual-rail", gpus_per_node=4)

Factories receive ``gpus_per_node`` plus the entry's default parameters
(overridable per call or per :class:`~repro.api.spec.ArchitectureSpec`).
Names are case-insensitive.  The built-in line-up of the paper registers
itself from :mod:`repro.hbd.registry`; this module deliberately imports
nothing from :mod:`repro.hbd` at import time so the two can reference each
other without a cycle.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass
from collections.abc import Callable, Iterator, Mapping
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hbd.base import HBDArchitecture

#: An architecture factory: ``factory(gpus_per_node=..., **params)``.
ArchitectureFactory = Callable[..., "HBDArchitecture"]


@dataclass(frozen=True)
class ArchitectureEntry:
    """One registered architecture factory plus its default parameters.

    >>> from repro.api.registry import REGISTRY
    >>> entry = REGISTRY.get("nvl-72")   # aliases are case-insensitive
    >>> entry.name
    'NVL-72'
    >>> entry.build(gpus_per_node=4).hbd_size
    72
    """

    name: str
    factory: ArchitectureFactory
    defaults: tuple[tuple[str, Any], ...] = ()
    aliases: tuple[str, ...] = ()
    description: str = ""

    def build(self, gpus_per_node: int = 4, **params: Any) -> HBDArchitecture:
        """Instantiate the architecture, merging ``params`` over the defaults."""
        merged: dict[str, Any] = dict(self.defaults)
        merged.update(params)
        return self.factory(gpus_per_node=gpus_per_node, **merged)


class ArchitectureRegistry:
    """Mutable mapping from names (and aliases) to architecture factories.

    >>> reg = ArchitectureRegistry()   # fresh; the global one is REGISTRY
    >>> @reg.register("toy", defaults={"hbd_size": 8}, description="tiny NVL")
    ... def _toy(gpus_per_node=4, hbd_size=8):
    ...     from repro.hbd import NVLHBD
    ...     return NVLHBD(hbd_size, gpus_per_node=gpus_per_node)
    >>> reg.create("toy", gpus_per_node=4, hbd_size=16).name
    'NVL-16'
    >>> "toy" in reg
    True
    """

    def __init__(self) -> None:
        self._entries: dict[str, ArchitectureEntry] = {}
        self._aliases: dict[str, str] = {}
        self._lock = threading.RLock()
        self._builtins_loaded = False

    # ------------------------------------------------------------ registration
    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower()

    def register(
        self,
        name: str,
        *,
        aliases: tuple[str, ...] = (),
        defaults: Mapping[str, Any] | None = None,
        description: str = "",
        override: bool = False,
    ) -> Callable[[ArchitectureFactory], ArchitectureFactory]:
        """Decorator form of :meth:`register_factory`."""

        def decorator(factory: ArchitectureFactory) -> ArchitectureFactory:
            self.register_factory(
                name,
                factory,
                aliases=aliases,
                defaults=defaults,
                description=description,
                override=override,
            )
            return factory

        return decorator

    def register_factory(
        self,
        name: str,
        factory: ArchitectureFactory,
        *,
        aliases: tuple[str, ...] = (),
        defaults: Mapping[str, Any] | None = None,
        description: str = "",
        override: bool = False,
    ) -> ArchitectureEntry:
        """Register ``factory`` under ``name`` (and ``aliases``).

        Raises :class:`ValueError` when the name or an alias is already taken,
        unless ``override=True`` -- overriding replaces the previous entry and
        all of its aliases.
        """
        entry = ArchitectureEntry(
            name=name,
            factory=factory,
            defaults=tuple(sorted((defaults or {}).items())),
            aliases=tuple(aliases),
            description=description,
        )
        key = self._normalize(name)
        alias_keys = [self._normalize(a) for a in aliases]
        with self._lock:
            taken = [
                k for k in [key, *alias_keys]
                if (k in self._entries or k in self._aliases)
            ]
            if taken and not override:
                raise ValueError(
                    f"architecture name(s) {sorted(set(taken))!r} already "
                    "registered; pass override=True to replace"
                )
            if override:
                for k in taken:
                    self._drop(k)
            self._entries[key] = entry
            for alias in alias_keys:
                self._aliases[alias] = key
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (by canonical name or alias) and its aliases."""
        with self._lock:
            self._drop(self._normalize(name))

    def _drop(self, key: str) -> None:
        key = self._aliases.get(key, key)
        entry = self._entries.pop(key, None)
        if entry is not None:
            for alias in entry.aliases:
                self._aliases.pop(self._normalize(alias), None)

    # ----------------------------------------------------------------- lookup
    def _ensure_builtins(self) -> None:
        if not self._builtins_loaded and self is REGISTRY:
            import repro.hbd.registry  # noqa: F401  (registers the line-up)

            # Only after a successful import: a transient failure above must
            # stay retryable, not silently leave the registry empty forever.
            self._builtins_loaded = True

    def get(self, name: str) -> ArchitectureEntry:
        """Resolve ``name`` (or an alias) to its registry entry.

        Unknown names raise :class:`KeyError` with close-match suggestions.
        """
        self._ensure_builtins()
        key = self._normalize(name)
        with self._lock:
            key = self._aliases.get(key, key)
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            known = sorted(set(self._entries) | set(self._aliases))
        suggestions = difflib.get_close_matches(key, known, n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(map(repr, suggestions))}?" if suggestions else ""
        raise KeyError(f"unknown architecture {name!r}{hint} known: {known}")

    def create(
        self, name: str, gpus_per_node: int = 4, **params: Any
    ) -> HBDArchitecture:
        """Instantiate the architecture registered under ``name``."""
        return self.get(name).build(gpus_per_node=gpus_per_node, **params)

    def names(self) -> list[str]:
        """Canonical registered names, in registration order."""
        self._ensure_builtins()
        with self._lock:
            return [entry.name for entry in self._entries.values()]

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        key = self._normalize(name)
        with self._lock:
            return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[ArchitectureEntry]:
        self._ensure_builtins()
        with self._lock:
            return iter(list(self._entries.values()))

    def __len__(self) -> int:
        self._ensure_builtins()
        with self._lock:
            return len(self._entries)


#: The process-global registry every consumer shares.
REGISTRY = ArchitectureRegistry()


def get_registry() -> ArchitectureRegistry:
    """The global :class:`ArchitectureRegistry` (built-ins auto-loaded).

    >>> "InfiniteHBD(K=3)" in get_registry().names()
    True
    """
    return REGISTRY
