"""Declarative experiment specifications.

A spec file describes *what* to run -- the fault trace, the architecture
line-up, TP sizes, the experiments -- without any imperative wiring.  Every
dataclass here is frozen, JSON round-trippable via ``to_dict``/``from_dict``,
and strict about unknown keys so typos in spec files fail loudly::

    {
      "scenario": {
        "name": "smoke",
        "trace": {"days": 20, "seed": 348, "gpus_per_node": 4},
        "architectures": ["InfiniteHBD(K=3)", "NVL-72"],
        "tp_sizes": [32],
        "n_nodes": 288
      },
      "experiments": ["waste", "goodput"]
    }

``ExperimentSpec.from_dict(json.load(f))`` turns that into a runnable spec;
:class:`~repro.api.runner.ExperimentRunner` executes it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import warnings
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro.cache import CACHE_MODES
from repro.faults.trace import FaultTrace
from repro.scheduler.jobs import JobSpec, check_known_fields
from repro.scheduler.placement import (
    PLACEMENT_NAMES,
    PlacementPolicy,
    placement_by_name,
)
from repro.scheduler.policies import POLICY_NAMES, SchedulingPolicy, policy_by_name

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.registry import ArchitectureRegistry
    from repro.hbd.base import HBDArchitecture

#: Experiments the runner knows how to execute.
KNOWN_EXPERIMENTS = (
    "waste",
    "max_job_scale",
    "fault_waiting",
    "goodput",
    "schedule",
    "blast_radius",
    "cross_tor",
    "mfu",
    "cost",
)

#: Shared unknown-field validation (lives scheduler-side because this module
#: imports repro.scheduler, not the other way around).
_check_fields = check_known_fields


# --------------------------------------------------------------------- traces
@dataclass(frozen=True)
class CorrelatedFaultSpec:
    """Declarative correlated-failure overlay on a synthetic trace.

    Mirrors :class:`repro.faults.correlated.CorrelatedFaultConfig` minus the
    base generator config (which the owning :class:`TraceSpec` supplies):
    whole ``domain_size``-node failure domains go down together, arrivals
    come from a two-state Markov-modulated (quiet / burst) process at a
    time-averaged rate of ``correlation * domain_rate_per_day`` outages per
    day, and repairs are lognormal -- sub-daily median, heavy tail.

    ``correlation=0.0`` disables the overlay: the generated trace is
    byte-identical to the plain independent generator's.

    >>> spec = CorrelatedFaultSpec(correlation=0.5, domain_size=4)
    >>> CorrelatedFaultSpec.from_dict(spec.to_dict()) == spec
    True
    >>> CorrelatedFaultSpec(correlation=1.5)
    Traceback (most recent call last):
        ...
    ValueError: correlation must be in [0, 1]
    """

    correlation: float = 0.0
    domain_size: int = 8
    domain_rate_per_day: float = 0.25
    burst_multiplier: float = 4.0
    mean_quiet_days: float = 7.0
    mean_burst_days: float = 1.0
    repair_median_hours: float = 4.0
    repair_sigma: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")
        if self.domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        if self.domain_rate_per_day <= 0.0:
            raise ValueError("domain_rate_per_day must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.mean_quiet_days <= 0.0 or self.mean_burst_days <= 0.0:
            raise ValueError("mean_quiet_days and mean_burst_days must be positive")
        if self.repair_median_hours <= 0.0:
            raise ValueError("repair_median_hours must be positive")
        if self.repair_sigma < 0.0:
            raise ValueError("repair_sigma must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> CorrelatedFaultSpec:
        _check_fields(cls, data)
        return cls(**data)


_TRACE_CACHE: dict[TraceSpec, FaultTrace] = {}
_TRACE_CACHE_LOCK = threading.Lock()


@dataclass(frozen=True)
class TraceSpec:
    """Declarative fault-trace configuration.

    ``kind="synthetic"`` generates the Appendix-A-calibrated 8-GPU-node trace
    and, when ``gpus_per_node == 4``, applies the Bayes 8-to-4 conversion --
    the two node granularities the paper evaluates.

    ``correlated`` layers domain-level correlated failures on top
    (:class:`CorrelatedFaultSpec`); ``None`` (the default) keeps the plain
    independent generator, and the field is omitted from serialized dumps
    when unset so pre-correlation spec files and digests are unchanged.

    >>> spec = TraceSpec(days=5, seed=1)
    >>> TraceSpec.from_dict(spec.to_dict()) == spec
    True
    >>> "correlated" in spec.to_dict()   # omitted when unset: digests stable
    False
    >>> trace = spec.build()   # memoized: built once per process
    >>> (trace.n_nodes, trace.gpus_per_node, trace.duration_days)
    (800, 4, 5)
    >>> burst = TraceSpec(days=5, seed=1,
    ...                   correlated=CorrelatedFaultSpec(correlation=0.5))
    >>> TraceSpec.from_dict(burst.to_dict()) == burst
    True
    """

    kind: str = "synthetic"
    days: int = 120
    seed: int = 348
    source_nodes: int = 400
    gpus_per_node: int = 4
    mean_fault_ratio: float = 0.0233
    p99_fault_ratio: float = 0.0722
    correlated: CorrelatedFaultSpec | None = None

    def __post_init__(self) -> None:
        if self.kind != "synthetic":
            raise ValueError(f"unknown trace kind {self.kind!r}; known: ['synthetic']")
        if self.gpus_per_node not in (4, 8):
            raise ValueError("gpus_per_node must be 4 or 8")

    def build(self) -> FaultTrace:
        """Generate (or fetch the memoized) trace for this spec.

        Traces are cached per process keyed on the full spec, so a sweep over
        eight architectures generates the trace once, and forked runner
        workers inherit the parent's cache for free.
        """
        with _TRACE_CACHE_LOCK:
            cached = _TRACE_CACHE.get(self)
        if cached is not None:
            return cached

        from repro.faults.convert import convert_trace_8gpu_to_4gpu
        from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace

        base = SyntheticTraceConfig(
            n_nodes=self.source_nodes,
            duration_days=self.days,
            seed=self.seed,
            mean_fault_ratio=self.mean_fault_ratio,
            p99_fault_ratio=self.p99_fault_ratio,
        )
        if self.correlated is not None:
            # At correlation=0 the correlated generator is an exact
            # pass-through, so this branch is byte-identical to the plain
            # generator whenever the overlay is inert.
            from repro.faults.correlated import (
                CorrelatedFaultConfig,
                generate_correlated_trace,
            )

            trace = generate_correlated_trace(
                CorrelatedFaultConfig(
                    base=base,
                    correlation=self.correlated.correlation,
                    domain_size=self.correlated.domain_size,
                    domain_rate_per_day=self.correlated.domain_rate_per_day,
                    burst_multiplier=self.correlated.burst_multiplier,
                    mean_quiet_days=self.correlated.mean_quiet_days,
                    mean_burst_days=self.correlated.mean_burst_days,
                    repair_median_hours=self.correlated.repair_median_hours,
                    repair_sigma=self.correlated.repair_sigma,
                )
            )
        else:
            trace = generate_synthetic_trace(base)
        if self.gpus_per_node == 4:
            trace = convert_trace_8gpu_to_4gpu(trace, seed=self.seed)
        elif self.gpus_per_node == 8:
            pass  # the generated trace is already 8 GPUs/node
        else:  # pragma: no cover - rejected in __post_init__
            raise ValueError("gpus_per_node must be 4 or 8")
        with _TRACE_CACHE_LOCK:
            _TRACE_CACHE.setdefault(self, trace)
        return trace

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        # Emitted only when set, so pre-correlation spec files (and their
        # digests) are unchanged.
        if self.correlated is None:
            del data["correlated"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> TraceSpec:
        _check_fields(cls, data)
        fields = dict(data)
        if fields.get("correlated") is not None:
            fields["correlated"] = CorrelatedFaultSpec.from_dict(fields["correlated"])
        return cls(**fields)


# -------------------------------------------------------------- architectures
@dataclass(frozen=True)
class ArchitectureSpec:
    """A registry name plus constructor parameter overrides.

    >>> ArchitectureSpec.from_dict("NVL-72").build(gpus_per_node=4).name
    'NVL-72'
    >>> spec = ArchitectureSpec.of("infinitehbd", k=3)
    >>> spec.to_dict()
    {'name': 'infinitehbd', 'params': {'k': 3}}
    >>> spec.build().name
    'InfiniteHBD(K=3)'
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> ArchitectureSpec:
        return cls(name=name, params=tuple(sorted(params.items())))

    def build(
        self, gpus_per_node: int = 4, registry: ArchitectureRegistry | None = None
    ) -> HBDArchitecture:
        """Instantiate through the (global by default) architecture registry."""
        from repro.api.registry import REGISTRY

        reg = registry if registry is not None else REGISTRY
        return reg.create(self.name, gpus_per_node=gpus_per_node, **dict(self.params))

    def to_dict(self) -> str | dict[str, Any]:
        if not self.params:
            return self.name
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: str | Mapping[str, Any]) -> ArchitectureSpec:
        if isinstance(data, str):
            return cls(name=data)
        _check_fields(cls, data)
        return cls.of(data["name"], **dict(data.get("params", {})))


def default_architecture_specs() -> tuple[ArchitectureSpec, ...]:
    """The paper's eight-architecture line-up as registry specs.

    >>> [spec.name for spec in default_architecture_specs()][:3]
    ['InfiniteHBD(K=2)', 'InfiniteHBD(K=3)', 'Big-Switch']
    >>> len(default_architecture_specs())
    8
    """
    from repro.hbd.registry import DEFAULT_LINEUP

    return tuple(ArchitectureSpec(name=name) for name in DEFAULT_LINEUP)


# ------------------------------------------------------------------ workloads
@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative job queue for the ``schedule`` experiment.

    ``kind="synthetic"`` samples a Poisson-arrival, heavy-tailed queue via
    :func:`repro.scheduler.workload.generate_workload`; ``kind="explicit"``
    carries the jobs verbatim.  ``tp_size=None`` / ``max_gpus=None`` defer to
    the sweep's TP size and half the simulated cluster respectively, so one
    workload spec scales across the architecture x TP grid.

    >>> spec = WorkloadSpec(n_jobs=3, seed=1)
    >>> jobs = spec.build(tp_size=8, max_gpus=64)
    >>> [job.name for job in jobs]
    ['job-0', 'job-1', 'job-2']
    >>> all(job.gpus % 8 == 0 and job.gpus <= 64 for job in jobs)
    True
    >>> WorkloadSpec.from_dict(spec.to_dict()) == spec
    True
    """

    kind: str = "synthetic"
    jobs: tuple[JobSpec, ...] = ()
    n_jobs: int = 100
    seed: int = 0
    tp_size: int | None = None
    max_gpus: int | None = None
    mean_interarrival_hours: float = 1.0
    median_tp_groups: float = 4.0
    sigma_tp_groups: float = 1.2
    median_work_hours: float = 8.0
    sigma_work_hours: float = 1.0
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "explicit"):
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: ['synthetic', 'explicit']"
            )
        if self.kind == "explicit" and not self.jobs:
            raise ValueError("explicit workloads need at least one job")
        if self.kind == "synthetic" and self.jobs:
            raise ValueError("synthetic workloads must not carry explicit jobs")

    def build(self, tp_size: int, max_gpus: int) -> tuple[JobSpec, ...]:
        """The concrete job queue (``tp_size`` / ``max_gpus`` fill the defaults)."""
        if self.kind == "explicit":
            return self.jobs
        from repro.scheduler.workload import WorkloadConfig, generate_workload

        return generate_workload(
            WorkloadConfig(
                n_jobs=self.n_jobs,
                seed=self.seed,
                tp_size=self.tp_size if self.tp_size is not None else tp_size,
                max_gpus=self.max_gpus if self.max_gpus is not None else max_gpus,
                mean_interarrival_hours=self.mean_interarrival_hours,
                median_tp_groups=self.median_tp_groups,
                sigma_tp_groups=self.sigma_tp_groups,
                median_work_hours=self.median_work_hours,
                sigma_work_hours=self.sigma_work_hours,
                checkpoint_interval_hours=self.checkpoint_interval_hours,
                restart_overhead_hours=self.restart_overhead_hours,
            )
        )

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["jobs"] = [job.to_dict() for job in self.jobs]
        if not data["jobs"]:
            del data["jobs"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> WorkloadSpec:
        _check_fields(cls, data)
        fields = dict(data)
        if "jobs" in fields:
            fields["jobs"] = tuple(JobSpec.from_dict(j) for j in fields["jobs"])
        return cls(**fields)


@dataclass(frozen=True)
class SchedulerSpec:
    """Declarative scheduler configuration for the ``schedule`` experiment.

    ``horizon_hours=None`` runs the workload to completion (past the trace
    end the cluster is fault-free); a finite horizon hard-stops the replay
    and reports unfinished jobs.  ``placement`` selects node-level placement
    (``"packed"`` / ``"spread"``: jobs hold concrete node ids and fault hits
    are deterministic); ``None`` keeps the expected-value capacity replay.
    ``backfill`` lets small jobs jump a blocked FIFO head when they cannot
    delay its projected start.

    ``preemptive=False`` (the default) keeps each policy's own preemption
    mode -- off for ``fifo`` / ``smallest-first`` / ``shortest-remaining``,
    on for ``gittins`` and ``optimizer``, whose whole point is moving work
    mid-flight; ``preemptive=True`` forces preemption on for the classic
    queue orders.  The per-policy knobs (``gittins_*``, ``lookahead_k``,
    ``optimizer_*``) are serialized only when they differ from their
    defaults, so spec files and digests written before a knob existed stay
    byte-stable.

    >>> SchedulerSpec(policy="smallest-first", preemptive=True).build()
    SmallestFirstPolicy(smallest-first, preemptive)
    >>> SchedulerSpec(policy="gittins").build()   # preemptive by default
    GittinsPolicy(gittins, preemptive)
    >>> SchedulerSpec(policy="lookahead", lookahead_k=3).build().lookahead_k
    3
    >>> SchedulerSpec(placement="packed").build_placement()
    PackedPlacement(packed)
    >>> sorted(SchedulerSpec(policy="gittins").to_dict())   # knobs at defaults
    ['backfill', 'horizon_hours', 'placement', 'policy', 'preemptive']
    >>> SchedulerSpec(policy="lifo")
    Traceback (most recent call last):
        ...
    ValueError: unknown scheduling policy 'lifo'; known: ['fifo', 'smallest-first', 'shortest-remaining', 'gittins', 'lookahead', 'optimizer']
    >>> SchedulerSpec(placement="scattered")
    Traceback (most recent call last):
        ...
    ValueError: unknown placement policy 'scattered'; known: ['packed', 'spread']
    """

    policy: str = "fifo"
    preemptive: bool = False
    horizon_hours: float | None = None
    placement: str | None = None
    backfill: bool = False
    gittins_threshold_gpu_hours: float = 2048.0
    gittins_levels: int = 3
    gittins_starve_limit: float = 4.0
    lookahead_k: int = 5
    optimizer_horizon_hours: float = 8.0
    optimizer_stability_bonus: float = 0.5

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r}; known: {list(POLICY_NAMES)}"
            )
        if self.horizon_hours is not None and self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if self.placement is not None and self.placement not in PLACEMENT_NAMES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"known: {list(PLACEMENT_NAMES)}"
            )
        if self.gittins_threshold_gpu_hours <= 0:
            raise ValueError("gittins_threshold_gpu_hours must be positive")
        if self.gittins_levels < 1:
            raise ValueError("gittins_levels must be >= 1")
        if self.gittins_starve_limit <= 0:
            raise ValueError("gittins_starve_limit must be positive")
        if self.lookahead_k < 1:
            raise ValueError("lookahead_k must be >= 1")
        if self.optimizer_horizon_hours <= 0:
            raise ValueError("optimizer_horizon_hours must be positive")
        if self.optimizer_stability_bonus < 0:
            raise ValueError("optimizer_stability_bonus must be non-negative")

    def build(self) -> SchedulingPolicy:
        # False defers to the policy's own preemption mode; True forces it on.
        preemptive = True if self.preemptive else None
        if self.policy == "gittins":
            return policy_by_name(
                self.policy,
                preemptive,
                threshold_gpu_hours=self.gittins_threshold_gpu_hours,
                levels=self.gittins_levels,
                starve_limit=self.gittins_starve_limit,
            )
        if self.policy == "lookahead":
            return policy_by_name(self.policy, preemptive, k=self.lookahead_k)
        if self.policy == "optimizer":
            return policy_by_name(
                self.policy,
                preemptive,
                horizon_hours=self.optimizer_horizon_hours,
                stability_bonus=self.optimizer_stability_bonus,
            )
        return policy_by_name(self.policy, preemptive)

    def build_placement(self) -> PlacementPolicy | None:
        if self.placement is None:
            return None
        return placement_by_name(self.placement)

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        # Per-policy knobs are emitted only when they differ from their
        # defaults, keeping pre-knob spec files and digests byte-stable.
        for spec_field in dataclasses.fields(self):
            if (
                spec_field.name in _SCHEDULER_KNOB_FIELDS
                and data[spec_field.name] == spec_field.default
            ):
                del data[spec_field.name]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> SchedulerSpec:
        _check_fields(cls, data)
        return cls(**data)


#: Per-policy knob fields of :class:`SchedulerSpec`, serialized only when
#: they differ from their defaults (digest stability for pre-knob specs).
_SCHEDULER_KNOB_FIELDS = frozenset(
    {
        "gittins_threshold_gpu_hours",
        "gittins_levels",
        "gittins_starve_limit",
        "lookahead_k",
        "optimizer_horizon_hours",
        "optimizer_stability_bonus",
    }
)


# ------------------------------------------------------------------ scenarios
@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario: a trace, a line-up, and the sweep axes.

    >>> scenario = Scenario.default("demo", tp_sizes=(8, 32), n_nodes=288)
    >>> (scenario.name, scenario.tp_sizes, len(scenario.architectures))
    ('demo', (8, 32), 8)
    >>> Scenario.from_dict(scenario.to_dict()) == scenario
    True
    """

    name: str
    trace: TraceSpec = field(default_factory=TraceSpec)
    architectures: tuple[ArchitectureSpec, ...] = ()
    tp_sizes: tuple[int, ...] = (32,)
    n_nodes: int | None = 720
    seed: int = 348
    job_gpus: int = 2560
    availability: float = 1.0
    workload: WorkloadSpec | None = None
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tp_sizes or any(tp < 1 for tp in self.tp_sizes):
            raise ValueError("tp_sizes must be a non-empty tuple of positive ints")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")

    @classmethod
    def default(cls, name: str = "default", **overrides: Any) -> Scenario:
        """The paper's 2,880-GPU line-up scenario with optional overrides."""
        overrides.setdefault("architectures", default_architecture_specs())
        return cls(name=name, **overrides)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "name": self.name,
            "trace": self.trace.to_dict(),
            "architectures": [a.to_dict() for a in self.architectures],
            "tp_sizes": list(self.tp_sizes),
            "n_nodes": self.n_nodes,
            "seed": self.seed,
            "job_gpus": self.job_gpus,
            "availability": self.availability,
        }
        # Scheduler axes are emitted only when set, so pre-scheduler spec
        # files (and their digests) are unchanged.
        if self.workload is not None:
            data["workload"] = self.workload.to_dict()
        if self.scheduler != SchedulerSpec():
            data["scheduler"] = self.scheduler.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Scenario:
        _check_fields(cls, data)
        fields = dict(data)
        if "trace" in fields:
            fields["trace"] = TraceSpec.from_dict(fields["trace"])
        if "architectures" in fields:
            fields["architectures"] = tuple(
                ArchitectureSpec.from_dict(a) for a in fields["architectures"]
            )
        if "tp_sizes" in fields:
            fields["tp_sizes"] = tuple(fields["tp_sizes"])
        if fields.get("workload") is not None:
            fields["workload"] = WorkloadSpec.from_dict(fields["workload"])
        if "scheduler" in fields:
            fields["scheduler"] = SchedulerSpec.from_dict(fields["scheduler"])
        return cls(**fields)


# ------------------------------------------------------------------ the spec
@dataclass(frozen=True)
class ExperimentSpec:
    """A scenario plus the experiments to run over it.

    ``options`` carries per-experiment keyword overrides, keyed by experiment
    name (e.g. ``{"fault_waiting": {"job_scales": [2304, 2560]}}``).
    ``max_workers`` bounds the runner's process pool (``None`` = auto,
    ``0``/``1`` = serial).  ``num_seeds`` repeats every experiment over that
    many trace seeds (base seed, base seed + 1, ...) so results grow
    ``*_mean`` / ``*_stddev`` / ``*_ci95`` columns; ``1`` (the default) is
    the exact single-seed path and leaves serialized dumps and digests
    unchanged.  ``cache`` selects the runner's result cache
    (``"off"`` / ``"memory"`` / ``"disk"``, see :mod:`repro.cache`); it is a
    *how* knob like ``max_workers`` -- excluded from :meth:`digest` and
    emitted in dumps only when enabled, so cached and fresh runs share one
    provenance digest and ``cache="off"`` dumps are byte-identical to
    pre-cache ones.

    >>> spec = ExperimentSpec.of(
    ...     scenario=Scenario.default("demo", trace=TraceSpec(days=5, seed=1)),
    ...     experiments=("waste", "goodput"),
    ...     options={"goodput": {"job_gpus": 512}},
    ... )
    >>> ExperimentSpec.from_json(spec.to_json()) == spec
    True
    >>> spec.options_for("goodput")
    {'job_gpus': 512}
    >>> len(spec.digest())   # sha256 of the canonical JSON form
    64
    """

    scenario: Scenario
    experiments: tuple[str, ...] = ("waste",)
    options: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...] = ()
    max_workers: int | None = None
    num_seeds: int = 1
    cache: str = "off"

    def __post_init__(self) -> None:
        if self.num_seeds < 1:
            raise ValueError("num_seeds must be >= 1")
        if self.cache not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {self.cache!r}; known: {list(CACHE_MODES)}"
            )
        unknown = sorted(set(self.experiments) - set(KNOWN_EXPERIMENTS))
        if unknown:
            raise ValueError(
                f"unknown experiment(s) {unknown}; known: {list(KNOWN_EXPERIMENTS)}"
            )
        if not self.experiments:
            raise ValueError("experiments must be non-empty")
        bad_options = sorted(
            name for name, _ in self.options if name not in KNOWN_EXPERIMENTS
        )
        if bad_options:
            raise ValueError(
                f"options for unknown experiment(s) {bad_options}; "
                f"known: {list(KNOWN_EXPERIMENTS)}"
            )
        if "sample_interval_hours" in self.options_for("goodput"):
            # Still accepted (old spec files keep loading) but ignored by the
            # event-driven replay and scrubbed from dumps/digests.
            warnings.warn(
                "goodput option 'sample_interval_hours' is deprecated and has "
                "no effect: the goodput replay is event-driven and exact",
                DeprecationWarning,
                stacklevel=2,
            )

    @classmethod
    def of(
        cls,
        scenario: Scenario,
        experiments: tuple[str, ...] = ("waste",),
        options: Mapping[str, Mapping[str, Any]] | None = None,
        max_workers: int | None = None,
        num_seeds: int = 1,
        cache: str = "off",
    ) -> ExperimentSpec:
        """Build a spec from plain mappings (the ergonomic constructor)."""
        packed = tuple(
            (name, tuple(sorted(opts.items())))
            for name, opts in sorted((options or {}).items())
        )
        return cls(
            scenario=scenario,
            experiments=tuple(experiments),
            options=packed,
            max_workers=max_workers,
            num_seeds=num_seeds,
            cache=cache,
        )

    def options_for(self, experiment: str) -> dict[str, Any]:
        for name, opts in self.options:
            if name == experiment:
                return dict(opts)
        return {}

    def to_dict(self) -> dict[str, Any]:
        options: dict[str, dict[str, Any]] = {}
        for name, opts in self.options:
            cleaned = dict(opts)
            # Deprecated, ignored by the event-driven replay: accepted as
            # input (so the DeprecationWarning fires) but scrubbed from
            # serialized dumps and digests.
            if name == "goodput":
                cleaned.pop("sample_interval_hours", None)
            options[name] = cleaned
        data = {
            "scenario": self.scenario.to_dict(),
            "experiments": list(self.experiments),
            "options": options,
            "max_workers": self.max_workers,
        }
        # Emitted only when it changes behaviour, so single-seed spec files
        # (and their digests) are unchanged.
        if self.num_seeds != 1:
            data["num_seeds"] = self.num_seeds
        if self.cache != "off":
            data["cache"] = self.cache
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ExperimentSpec:
        _check_fields(cls, data)
        return cls.of(
            scenario=Scenario.from_dict(data["scenario"]),
            experiments=tuple(data.get("experiments", ("waste",))),
            options=data.get("options"),
            max_workers=data.get("max_workers"),
            num_seeds=int(data.get("num_seeds", 1)),
            cache=str(data.get("cache", "off")),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> ExperimentSpec:
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable SHA-256 of the canonical JSON form (stamped into results).

        The ``cache`` knob is excluded: it changes *how* results are
        obtained, never *what* they are, so a cached run carries the same
        provenance digest as the fresh run that populated the cache.
        """
        data = self.to_dict()
        data.pop("cache", None)
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
