"""Spec-driven experiment execution with process parallelism.

:class:`ExperimentRunner` turns an :class:`~repro.api.spec.ExperimentSpec`
into a deterministic list of independent tasks (one per experiment ×
architecture × TP size), executes them -- in parallel over a forked process
pool when more than one CPU is available -- and assembles the uniform
:class:`~repro.api.results.ResultSet`.

Three things make the runner faster than the seed's serial sweep loops even
on a single core:

* the fault trace is generated once per process and memoized
  (:meth:`TraceSpec.build`),
* the trace is swept into its exact
  :class:`~repro.faults.timeline.IntervalTimeline` once per (trace, cluster
  size) and that one interval set is replayed across the whole architecture x
  TP sweep -- O(events log events) instead of O(samples x events) grid
  scans, and
* within each replay ``architecture.breakdown()`` is memoized per distinct
  fault set.

Capacity metrics (mean / p99 waste, supported job scale, waiting fraction)
are exact duration-weighted quantities over the intervals -- no
``sample_interval_hours`` dependence.  The module also exposes the
timeline-sharing comparison helpers that :mod:`repro.simulation.sweeps` is
now a thin shim over.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Mapping, Sequence
from multiprocessing.context import BaseContext
from typing import Any

from repro.api.results import (
    RESULT_SCHEMA_VERSION,
    CacheStats,
    ExperimentResult,
    Provenance,
    ResultSet,
)
from repro.api.spec import (
    ArchitectureSpec,
    CorrelatedFaultSpec,
    ExperimentSpec,
    Scenario,
    TraceSpec,
)
from repro.cache import ResultCache, content_key
from repro.faults.timeline import IntervalTimeline, serialize_timeline
from repro.faults.trace import FaultTrace
from repro.hbd.base import HBDArchitecture
from repro.mc import TraceBatch, replay_batch, seed_stats
from repro.simulation.cluster import IntervalSeries, replay_intervals
from repro.simulation.goodput import GoodputConfig, GoodputSimulator


# ------------------------------------------------------------- parallel plumbing
def _resolve_workers(max_workers: int | None, n_tasks: int) -> int:
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, n_tasks))


def _fork_context() -> BaseContext | None:
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _map_tasks(fn: Callable[[Any], Any], payloads: Sequence[Any], max_workers: int | None) -> list[Any]:
    """Map ``fn`` over ``payloads``, forking a pool when it can help.

    Falls back to in-process serial execution on a single core or when fork
    is unavailable; results keep payload order either way, so the output is
    identical no matter how it was executed.
    """
    workers = _resolve_workers(max_workers, len(payloads))
    context = _fork_context() if workers > 1 else None
    if context is None:
        return [fn(p) for p in payloads]
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, payloads))


# ------------------------------------------------------- shared fault timelines
_TIMELINE_CACHE: dict[tuple[TraceSpec, int | None], IntervalTimeline] = {}
_TIMELINE_LOCK = threading.Lock()


def _timeline_for(
    trace_spec: TraceSpec, n_nodes: int | None
) -> IntervalTimeline:
    """Per-process memoized exact interval timeline for a declarative trace."""
    key = (trace_spec, n_nodes)
    with _TIMELINE_LOCK:
        cached = _TIMELINE_CACHE.get(key)
    if cached is not None:
        return cached
    timeline = trace_spec.build().interval_timeline(n_nodes)
    with _TIMELINE_LOCK:
        _TIMELINE_CACHE.setdefault(key, timeline)
    return timeline


# ------------------------------------------------ concrete-object sweep helpers
def _sweep_one(args: tuple[HBDArchitecture, IntervalTimeline, int]) -> IntervalSeries:
    architecture, timeline, tp_size = args
    return replay_intervals(architecture, timeline, tp_size)


def compare_architectures_over_trace(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_size: int,
    n_nodes: int | None = None,
    max_workers: int | None = 1,
) -> dict[str, IntervalSeries]:
    """Replay one trace against many architectures over a shared exact timeline.

    >>> from repro.api.spec import TraceSpec
    >>> from repro.hbd import BigSwitchHBD, NVLHBD
    >>> trace = TraceSpec(days=5, seed=1).build()
    >>> series = compare_architectures_over_trace(
    ...     [BigSwitchHBD(4), NVLHBD(72, 4)], trace, tp_size=32, n_nodes=288)
    >>> sorted(series)
    ['Big-Switch', 'NVL-72']
    >>> series["Big-Switch"].mean_waste_ratio <= series["NVL-72"].mean_waste_ratio
    True
    """
    timeline = trace.interval_timeline(n_nodes)
    payloads = [(arch, timeline, tp_size) for arch in architectures]
    series = _map_tasks(_sweep_one, payloads, max_workers)
    return {arch.name: s for arch, s in zip(architectures, series, strict=True)}


def compare_architectures_over_tp_sizes(
    architectures: Sequence[HBDArchitecture],
    trace: FaultTrace,
    tp_sizes: Sequence[int],
    n_nodes: int | None = None,
    max_workers: int | None = 1,
) -> dict[str, dict[int, IntervalSeries]]:
    """Full architecture × TP-size replay grid over a shared exact timeline.

    >>> from repro.api.spec import TraceSpec
    >>> from repro.hbd import NVLHBD
    >>> grid = compare_architectures_over_tp_sizes(
    ...     [NVLHBD(72, 4)], TraceSpec(days=5, seed=1).build(),
    ...     tp_sizes=(8, 32), n_nodes=288)
    >>> sorted(grid["NVL-72"])
    [8, 32]
    """
    timeline = trace.interval_timeline(n_nodes)
    payloads = [(arch, timeline, tp) for arch in architectures for tp in tp_sizes]
    series = _map_tasks(_sweep_one, payloads, max_workers)
    grid: dict[str, dict[int, IntervalSeries]] = {}
    for (arch, _, tp), s in zip(payloads, series, strict=True):
        grid.setdefault(arch.name, {})[tp] = s
    return grid


# ------------------------------------------------------------ experiment tasks
def _scenario_nodes(scenario: Scenario) -> int:
    if scenario.n_nodes is not None:
        return scenario.n_nodes
    return scenario.trace.build().n_nodes


# -------------------------------------------------------- multi-seed plumbing
def _seed_trace_specs(spec: ExperimentSpec) -> list[TraceSpec]:
    """The spec's trace at seeds ``base, base + 1, ..., base + num_seeds - 1``.

    Seed 0 of the list is the spec's own trace, so every ``num_seeds=1``
    code path sees exactly the single-seed inputs it always did.
    """
    base = spec.scenario.trace
    return [
        dataclasses.replace(base, seed=base.seed + offset)
        for offset in range(spec.num_seeds)
    ]


def _aggregate_seed_metrics(
    per_seed: Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """Fold per-seed metric dicts into Monte-Carlo columns.

    Every numeric metric ``X`` grows ``X_mean`` / ``X_stddev`` (ddof=1) /
    ``X_ci95`` (1.96 * stddev / sqrt(n)) siblings; the base ``X`` column
    becomes the cross-seed mean when the metric varies and keeps its exact
    single-seed value (and type -- cluster constants like ``total_gpus`` stay
    ints) when it does not.  Non-numeric metrics (policy names, flags) keep
    the base seed's value.  A ``num_seeds`` metric records the seed count.
    """
    aggregated: dict[str, Any] = {}
    for key in per_seed[0]:
        values = [metrics[key] for metrics in per_seed]
        first = values[0]
        if isinstance(first, bool) or not isinstance(first, (int, float)):
            aggregated[key] = first
            continue
        stats = seed_stats([float(value) for value in values])
        identical = all(value == first for value in values)
        aggregated[key] = first if identical else stats.mean
        aggregated[f"{key}_mean"] = stats.mean
        aggregated[f"{key}_stddev"] = stats.stddev
        aggregated[f"{key}_ci95"] = stats.ci95
    aggregated["num_seeds"] = len(per_seed)
    return aggregated


def _run_capacity_multi_seed(
    spec: ExperimentSpec, payload: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Batched Monte-Carlo variant of the capacity experiments.

    All ``num_seeds`` timelines stack into one :class:`TraceBatch` and replay
    in a single vectorized pass; per-seed values are bit-for-bit the scalar
    path's, the emitted series is the base seed's.
    """
    scenario = spec.scenario
    experiment = payload["experiment"]
    arch_spec = ArchitectureSpec.from_dict(payload["arch"])
    tp_size = payload["tp_size"]
    architecture = arch_spec.build(gpus_per_node=scenario.trace.gpus_per_node)
    trace_specs = _seed_trace_specs(spec)
    timelines = [_timeline_for(ts, scenario.n_nodes) for ts in trace_specs]
    batch = TraceBatch.from_timelines(
        timelines, seeds=[ts.seed for ts in trace_specs]
    )
    batch_series = replay_batch(architecture, batch, tp_size)
    base = batch_series.series_for_seed(0)

    per_seed: list[dict[str, Any]]
    if experiment == "waste":
        means = batch_series.mean_waste_ratios()
        p99s = batch_series.p99_waste_ratios()
        mins = batch_series.min_usable_gpus()
        per_seed = [
            {
                "mean_waste_ratio": means[i],
                "p99_waste_ratio": p99s[i],
                "min_usable_gpus": mins[i],
                "total_gpus": batch_series.total_gpus,
            }
            for i in range(batch.n_seeds)
        ]
        out_series: dict[str, Sequence[float]] = {
            "times_days": base.times_days,
            "durations_hours": base.durations_hours,
            "waste_ratios": base.waste_ratios,
            "usable_gpus": base.usable_gpus,
        }
    elif experiment == "max_job_scale":
        scales = batch_series.supported_job_scales(scenario.availability)
        per_seed = [
            {
                "max_job_scale": scales[i],
                "availability": scenario.availability,
                "total_gpus": batch_series.total_gpus,
            }
            for i in range(batch.n_seeds)
        ]
        out_series = {}
    else:  # fault_waiting
        options = spec.options_for("fault_waiting")
        job_scales = [int(s) for s in options.get("job_scales", [scenario.job_gpus])]
        rates = batch_series.fault_waiting_rates(scenario.job_gpus)
        per_seed = [
            {"fault_waiting_rate": rates[i], "job_gpus": scenario.job_gpus}
            for i in range(batch.n_seeds)
        ]
        out_series = {
            "job_scales": job_scales,
            "waiting_rates": [base.fault_waiting_rate(s) for s in job_scales],
        }

    metrics = _aggregate_seed_metrics(per_seed)
    return [
        ExperimentResult.of(
            experiment, scenario.name, architecture.name, tp_size, metrics, out_series
        ).to_dict()
    ]


def _run_capacity_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    """waste / max_job_scale / fault_waiting: exact interval-replay experiments."""
    if spec.num_seeds > 1:
        return _run_capacity_multi_seed(spec, payload)
    scenario = spec.scenario
    experiment = payload["experiment"]
    arch_spec = ArchitectureSpec.from_dict(payload["arch"])
    tp_size = payload["tp_size"]
    architecture = arch_spec.build(gpus_per_node=scenario.trace.gpus_per_node)
    timeline = _timeline_for(scenario.trace, scenario.n_nodes)
    # Aggregate-only experiments replay in streaming mode: the sweep walks
    # the intervals once (O(delta) per step when the architecture supports
    # it) and never materialises the interval list.  "waste" emits the
    # piecewise-constant step series, so it keeps the materialised replay.
    series = replay_intervals(
        architecture, timeline, tp_size, streaming=experiment != "waste"
    )

    if experiment == "waste":
        # Duration-weighted exact aggregates -- independent of any sampling
        # grid; the emitted series is the piecewise-constant step function.
        metrics: dict[str, Any] = {
            "mean_waste_ratio": series.mean_waste_ratio,
            "p99_waste_ratio": series.p99_waste_ratio,
            "min_usable_gpus": series.min_usable_gpus,
            "total_gpus": series.total_gpus,
        }
        out_series = {
            "times_days": series.times_days,
            "durations_hours": series.durations_hours,
            "waste_ratios": series.waste_ratios,
            "usable_gpus": series.usable_gpus,
        }
    elif experiment == "max_job_scale":
        metrics = {
            "max_job_scale": series.supported_job_scale(scenario.availability),
            "availability": scenario.availability,
            "total_gpus": series.total_gpus,
        }
        out_series = {}
    else:  # fault_waiting
        options = spec.options_for("fault_waiting")
        job_scales = [int(s) for s in options.get("job_scales", [scenario.job_gpus])]
        rates = [series.fault_waiting_rate(scale) for scale in job_scales]
        metrics = {
            "fault_waiting_rate": series.fault_waiting_rate(scenario.job_gpus),
            "job_gpus": scenario.job_gpus,
        }
        out_series = {"job_scales": job_scales, "waiting_rates": rates}

    return [
        ExperimentResult.of(
            experiment, scenario.name, architecture.name, tp_size, metrics, out_series
        ).to_dict()
    ]


def _run_goodput_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    scenario = spec.scenario
    arch_spec = ArchitectureSpec.from_dict(payload["arch"])
    tp_size = payload["tp_size"]
    architecture = arch_spec.build(gpus_per_node=scenario.trace.gpus_per_node)
    options = spec.options_for("goodput")
    # The deprecated "sample_interval_hours" option never reaches this point:
    # ExperimentSpec warns about it at construction time and scrubs it from
    # the serialized form the task payload carries.
    config = GoodputConfig(
        job_gpus=int(options.get("job_gpus", scenario.job_gpus)),
        tp_size=tp_size,
        checkpoint_interval_hours=float(options.get("checkpoint_interval_hours", 1.0)),
        restart_overhead_hours=float(options.get("restart_overhead_hours", 0.25)),
    )
    per_seed: list[dict[str, Any]] = []
    for trace_spec in _seed_trace_specs(spec):
        report = GoodputSimulator(
            architecture, trace_spec.build(), config, n_nodes=scenario.n_nodes
        ).run()
        per_seed.append({
            "goodput": report.goodput,
            "waiting_fraction": report.waiting_fraction,
            "job_impacting_faults": report.job_impacting_faults,
            "productive_hours": report.productive_hours,
            "waiting_hours": report.waiting_hours,
            "restart_hours": report.restart_hours,
            "total_hours": report.total_hours,
            "job_gpus": config.job_gpus,
        })
    metrics = per_seed[0] if len(per_seed) == 1 else _aggregate_seed_metrics(per_seed)
    return [
        ExperimentResult.of(
            "goodput", scenario.name, architecture.name, tp_size, metrics
        ).to_dict()
    ]


def _run_schedule_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Multi-job cluster scheduling over the exact fault timeline."""
    from repro.scheduler.engine import ClusterScheduler

    scenario = spec.scenario
    if scenario.workload is None:
        raise ValueError("experiment 'schedule' needs scenario.workload")
    arch_spec = ArchitectureSpec.from_dict(payload["arch"])
    tp_size = payload["tp_size"]
    architecture = arch_spec.build(gpus_per_node=scenario.trace.gpus_per_node)

    per_seed: list[dict[str, Any]] = []
    series: dict[str, Sequence[float]] = {}
    for trace_spec in _seed_trace_specs(spec):
        timeline = _timeline_for(trace_spec, scenario.n_nodes)

        # Size cap for generated jobs: half the simulated cluster, rounded to
        # a TP multiple, so the same workload spec stays schedulable across
        # the whole architecture line-up (fragmentation differs per
        # architecture).
        total_gpus = architecture.total_gpus(timeline.n_nodes)
        default_max = max(tp_size, total_gpus // 2 // tp_size * tp_size)
        jobs = scenario.workload.build(tp_size=tp_size, max_gpus=default_max)

        report = ClusterScheduler(
            architecture,
            timeline,
            jobs,
            policy=scenario.scheduler.build(),
            horizon_hours=scenario.scheduler.horizon_hours,
            placement=scenario.scheduler.build_placement(),
            backfill=scenario.scheduler.backfill,
        ).run()
        per_seed.append({
            "policy": report.policy,
            "preemptive": report.preemptive,
            "placement": report.placement,
            "backfill": report.backfill,
            "n_jobs": report.n_jobs,
            "finished_jobs": report.finished_jobs,
            "makespan_hours": report.makespan_hours,
            "mean_jct_hours": report.mean_jct_hours,
            "p50_jct_hours": report.p50_jct_hours,
            "p99_jct_hours": report.p99_jct_hours,
            "mean_queueing_delay_hours": report.mean_queueing_delay_hours,
            "p99_queueing_delay_hours": report.p99_queueing_delay_hours,
            "cluster_goodput": report.cluster_goodput,
            "cluster_utilization": report.cluster_utilization,
            "mean_finish_time_fairness": report.mean_finish_time_fairness,
            "max_finish_time_fairness": report.max_finish_time_fairness,
            "jain_fairness_index": report.jain_fairness_index,
            "total_gpus": report.total_gpus,
        })
        if not series:  # the emitted series is the base seed's
            series = {
                "jct_hours": report.jct_hours(),
                "queueing_delays_hours": report.queueing_delays_hours(),
                "submit_hours": [job.submit_hour for job in report.jobs],
                "productive_hours": [job.productive_hours for job in report.jobs],
                "finish_time_fairness": report.finish_time_fairness(),
            }
    metrics = per_seed[0] if len(per_seed) == 1 else _aggregate_seed_metrics(per_seed)
    return [
        ExperimentResult.of(
            "schedule", scenario.name, architecture.name, tp_size, metrics, series
        ).to_dict()
    ]


def _run_blast_radius_task(
    spec: ExperimentSpec, payload: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Packed-vs-spread blast-radius study over correlation levels.

    For every (placement, correlation) cell the scenario's trace is replayed
    with the correlated overlay dialed to that level (the base trace is
    bit-identical across levels, so differences are pure overlay effects) in
    placed mode, and the deterministic fault-hit counters become the metrics:
    ``fault_events``, ``jobs_killed``, ``max_blast_radius`` and
    ``mean_blast_radius`` (jobs descheduled per fault transition).
    """
    from repro.scheduler.engine import ClusterScheduler

    scenario = spec.scenario
    if scenario.workload is None:
        raise ValueError("experiment 'blast_radius' needs scenario.workload")
    arch_spec = ArchitectureSpec.from_dict(payload["arch"])
    tp_size = payload["tp_size"]
    architecture = arch_spec.build(gpus_per_node=scenario.trace.gpus_per_node)
    options = spec.options_for("blast_radius")
    placements = [str(p) for p in options.get("placements", ("packed", "spread"))]
    correlations = [float(c) for c in options.get("correlations", (0.0, 0.5, 1.0))]
    corr_base = scenario.trace.correlated or CorrelatedFaultSpec()

    rows: list[dict[str, Any]] = []
    for placement in placements:
        for correlation in correlations:
            per_seed: list[dict[str, Any]] = []
            for trace_spec in _seed_trace_specs(spec):
                cell_spec = dataclasses.replace(
                    trace_spec,
                    correlated=dataclasses.replace(corr_base, correlation=correlation),
                )
                timeline = _timeline_for(cell_spec, scenario.n_nodes)
                total_gpus = architecture.total_gpus(timeline.n_nodes)
                default_max = max(tp_size, total_gpus // 2 // tp_size * tp_size)
                jobs = scenario.workload.build(tp_size=tp_size, max_gpus=default_max)
                report = ClusterScheduler(
                    architecture,
                    timeline,
                    jobs,
                    policy=scenario.scheduler.build(),
                    horizon_hours=scenario.scheduler.horizon_hours,
                    placement=placement,
                    backfill=scenario.scheduler.backfill,
                ).run()
                per_seed.append({
                    "placement": placement,
                    "correlation": correlation,
                    "fault_events": report.fault_events,
                    "jobs_killed": report.jobs_killed,
                    "max_blast_radius": report.max_blast_radius,
                    "mean_blast_radius": report.mean_blast_radius,
                    "n_jobs": report.n_jobs,
                    "finished_jobs": report.finished_jobs,
                    "makespan_hours": report.makespan_hours,
                    "mean_jct_hours": report.mean_jct_hours,
                    "p99_jct_hours": report.p99_jct_hours,
                    "cluster_goodput": report.cluster_goodput,
                    "total_gpus": report.total_gpus,
                })
            metrics = (
                per_seed[0] if len(per_seed) == 1 else _aggregate_seed_metrics(per_seed)
            )
            rows.append(
                ExperimentResult.of(
                    "blast_radius", scenario.name, architecture.name, tp_size, metrics
                ).to_dict()
            )
    return rows


def _run_cross_tor_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    import numpy as np

    from repro.core.orchestrator import JobSpec, Orchestrator
    from repro.dcn.fattree import FatTreeConfig
    from repro.faults.model import sample_fault_set

    scenario = spec.scenario
    options = spec.options_for("cross_tor")
    method = payload["method"]
    tp_size = payload["tp_size"]
    n_nodes = _scenario_nodes(scenario)
    gpus_per_node = scenario.trace.gpus_per_node
    total_gpus = n_nodes * gpus_per_node

    orchestrator = Orchestrator(
        n_nodes=n_nodes,
        k=int(options.get("k", 2)),
        fat_tree_config=FatTreeConfig(
            n_nodes=n_nodes,
            nodes_per_tor=int(options.get("nodes_per_tor", 4)),
            tors_per_domain=int(options.get("tors_per_domain", 64)),
        ),
    )
    job_scale_ratio = float(options.get("job_scale_ratio", 0.85))
    fault_ratio = float(options.get("fault_ratio", 0.05))
    job_gpus = int(job_scale_ratio * total_gpus) // tp_size * tp_size
    job = JobSpec(total_gpus=job_gpus, tp_size=tp_size, gpus_per_node=gpus_per_node)
    faults = sample_fault_set(
        n_nodes, fault_ratio, np.random.default_rng(scenario.seed)
    )
    result, report = orchestrator.place_and_report(
        job, faults, method=method, seed=scenario.seed
    )
    metrics = {
        "cross_tor_rate": report.cross_tor_rate,
        "satisfied": bool(result.satisfied),
        "constraints_used": result.constraints_used,
        "job_gpus": job_gpus,
        "fault_ratio": fault_ratio,
    }
    return [
        ExperimentResult.of(
            "cross_tor", scenario.name, f"orchestrator:{method}", tp_size, metrics
        ).to_dict()
    ]


def _run_mfu_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    from repro.training.models import gpt_moe_1t, llama31_405b
    from repro.training.parallelism import search_optimal_strategy

    scenario = spec.scenario
    options = spec.options_for("mfu")
    model_name = str(options.get("model", "llama"))
    if model_name == "llama":
        model = llama31_405b()
        global_batch = int(options.get("global_batch") or 2048)
        ep_choices: Sequence[int] = (1,)
    elif model_name == "moe":
        model = gpt_moe_1t()
        global_batch = int(options.get("global_batch") or 1536)
        ep_choices = (1, 2, 4, 8)
    else:
        raise ValueError(f"unknown mfu model {model_name!r}; known: ['llama', 'moe']")
    result = search_optimal_strategy(
        model,
        int(options.get("gpus", 8192)),
        global_batch,
        ep_choices=ep_choices,
        expert_imbalance_coef=float(options.get("imbalance", 0.2)),
        max_tp=options.get("max_tp"),
    )
    if result.best_config is None:
        metrics: dict[str, Any] = {"feasible": False}
    else:
        c, e = result.best_config, result.best_estimate
        metrics = {
            "feasible": True,
            "mfu": e.mfu,
            "iteration_time_s": e.iteration_time_s,
            "bubble_fraction": e.bubble_fraction,
            "memory_gib_per_gpu": e.memory_gib_per_gpu,
            "tp": c.tp,
            "pp": c.pp,
            "dp": c.dp,
            "ep": c.ep,
            "global_batch": global_batch,
        }
    return [
        ExperimentResult.of("mfu", scenario.name, model.name, 0, metrics).to_dict()
    ]


def _run_cost_task(spec: ExperimentSpec, payload: Mapping[str, Any]) -> list[dict[str, Any]]:
    from repro.cost.analysis import interconnect_cost_table

    scenario = spec.scenario
    options = spec.options_for("cost")
    rows = interconnect_cost_table(include_hpn=bool(options.get("include_hpn", False)))
    return [
        ExperimentResult.of(
            "cost",
            scenario.name,
            row.name,
            0,
            {
                "cost_per_gpu": row.cost_per_gpu,
                "power_per_gpu": row.power_per_gpu,
                "cost_per_gBps": row.cost_per_gBps,
                "power_per_gBps": row.power_per_gBps,
            },
        ).to_dict()
        for row in rows
    ]


_HANDLERS: dict[str, Callable[[ExperimentSpec, Mapping[str, Any]], list[dict[str, Any]]]] = {
    "waste": _run_capacity_task,
    "max_job_scale": _run_capacity_task,
    "fault_waiting": _run_capacity_task,
    "goodput": _run_goodput_task,
    "schedule": _run_schedule_task,
    "blast_radius": _run_blast_radius_task,
    "cross_tor": _run_cross_tor_task,
    "mfu": _run_mfu_task,
    "cost": _run_cost_task,
}

#: Experiments swept over the architecture × TP-size grid.
_ARCH_SWEEP_EXPERIMENTS = (
    "waste",
    "max_job_scale",
    "fault_waiting",
    "goodput",
    "schedule",
    "blast_radius",
)

#: Experiments that replay the shared exact interval timeline (and therefore
#: ride the shared-memory event-log fan-out).
_TIMELINE_EXPERIMENTS = ("waste", "max_job_scale", "fault_waiting", "schedule")


def _execute_payload(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Top-level task entry point (picklable for the process pool)."""
    spec = ExperimentSpec.from_dict(payload["spec"])
    return _HANDLERS[payload["experiment"]](spec, payload)


def _round_robin_chunks(n_items: int, n_chunks: int) -> list[list[int]]:
    """Deal item indices round-robin into at most ``n_chunks`` lists.

    Round-robin (rather than contiguous slabs) balances chunks when task
    cost correlates with position -- e.g. all of one experiment's cells
    first -- while each list stays in ascending order so per-chunk results
    reassemble deterministically.
    """
    return [list(range(start, n_items, n_chunks)) for start in range(min(n_chunks, n_items))]


def _execute_chunk(chunk: dict[str, Any]) -> list[list[dict[str, Any]]]:
    """Run one worker's batch of tasks (picklable pool entry point).

    ``chunk`` carries the spec dict once, the shared timeline transports
    (tiny shm handles or pickled logs), and the per-task payloads minus
    their ``spec`` key.  Transported timelines are adopted into this
    process's timeline memo *only when absent* -- forked workers already
    inherit the parent's cache copy-on-write and must keep those exact
    objects.
    """
    for entry in chunk["timelines"]:
        key = (TraceSpec.from_dict(entry["trace"]), entry["n_nodes"])
        with _TIMELINE_LOCK:
            present = key in _TIMELINE_CACHE
        if not present:
            timeline = entry["transport"].timeline()
            with _TIMELINE_LOCK:
                _TIMELINE_CACHE.setdefault(key, timeline)
    spec_dict = chunk["spec"]
    return [_execute_payload({**task, "spec": spec_dict}) for task in chunk["tasks"]]


# ---------------------------------------------------------------- the runner
class ExperimentRunner:
    """Execute an :class:`ExperimentSpec` and collect a :class:`ResultSet`.

    ``ExperimentRunner(spec, num_seeds=N)`` (or ``spec.num_seeds``) repeats
    the architecture-sweep experiments over ``N`` trace seeds: the capacity
    experiments replay all seeds in one vectorized :mod:`repro.mc` pass, and
    every numeric metric grows ``*_mean`` / ``*_stddev`` / ``*_ci95``
    columns.  ``num_seeds=1`` (the default) is the exact single-seed path.

    ``ExperimentRunner(spec, cache="memory"|"disk")`` (or ``spec.cache``)
    consults the content-addressed result store (:mod:`repro.cache`) before
    computing each task and writes fresh rows back on miss; cached rows are
    re-stamped with this run's provenance, so hit and miss results are
    bit-for-bit identical.  When the pool forks, tasks are dealt into one
    chunk per worker and the shared interval timelines ship as
    shared-memory event-log handles (:mod:`repro.faults.timeline`) instead
    of per-task pickles.

    >>> from repro.api.spec import ArchitectureSpec, ExperimentSpec, Scenario, TraceSpec
    >>> spec = ExperimentSpec.of(
    ...     scenario=Scenario(
    ...         name="doc",
    ...         trace=TraceSpec(days=5, seed=1),
    ...         architectures=(ArchitectureSpec(name="Big-Switch"),
    ...                        ArchitectureSpec(name="NVL-72")),
    ...         tp_sizes=(32,),
    ...         n_nodes=288,
    ...     ),
    ...     experiments=("waste", "max_job_scale"),
    ...     max_workers=1,
    ... )
    >>> runner = ExperimentRunner(spec)
    >>> len(runner.tasks())   # experiment x architecture x TP size
    4
    >>> results = runner.run()
    >>> sorted(set(r.experiment for r in results))
    ['max_job_scale', 'waste']
    >>> results.filter(architecture="Big-Switch")[0].provenance.spec_sha256 == spec.digest()
    True
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        max_workers: int | None = None,
        num_seeds: int | None = None,
        cache: str | None = None,
    ) -> None:
        overrides: dict[str, Any] = {}
        if num_seeds is not None and num_seeds != spec.num_seeds:
            # The override becomes part of the effective spec, so stamped
            # digests always describe what actually ran.
            overrides["num_seeds"] = num_seeds
        if cache is not None and cache != spec.cache:
            overrides["cache"] = cache
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        self.spec = spec
        self.max_workers = max_workers if max_workers is not None else spec.max_workers

    def tasks(self) -> list[dict[str, Any]]:
        """The deterministic task list (experiment × architecture × TP)."""
        spec = self.spec
        scenario = spec.scenario
        spec_dict = spec.to_dict()
        payloads: list[dict[str, Any]] = []
        for experiment in spec.experiments:
            if experiment in _ARCH_SWEEP_EXPERIMENTS:
                if not scenario.architectures:
                    raise ValueError(
                        f"experiment {experiment!r} needs scenario.architectures"
                    )
                for arch in scenario.architectures:
                    for tp in scenario.tp_sizes:
                        payloads.append({
                            "spec": spec_dict,
                            "experiment": experiment,
                            "arch": arch.to_dict(),
                            "tp_size": tp,
                        })
            elif experiment == "cross_tor":
                methods = spec.options_for("cross_tor").get(
                    "methods", ["greedy", "optimized"]
                )
                for method in methods:
                    payloads.append({
                        "spec": spec_dict,
                        "experiment": experiment,
                        "method": method,
                        "tp_size": scenario.tp_sizes[0],
                    })
            else:  # mfu, cost: one task each
                payloads.append({"spec": spec_dict, "experiment": experiment})
        return payloads

    def run(self) -> ResultSet:
        """Execute all tasks (cache-first, parallel on miss), stamp provenance."""
        payloads = self.tasks()
        mode = self.spec.cache
        cache_stats: CacheStats | None = None
        if mode == "off":
            rows_per_task = self._execute(payloads)
        else:
            store = ResultCache(mode)
            keys = [self._task_cache_key(p) for p in payloads]
            cached: list[list[dict[str, Any]] | None] = [store.get(k) for k in keys]
            miss_indices = [i for i, rows in enumerate(cached) if rows is None]
            computed = self._execute([payloads[i] for i in miss_indices])
            stored = 0
            for index, rows in zip(miss_indices, computed, strict=True):
                cached[index] = rows
                stored += store.put(keys[index], rows)
            rows_per_task = [rows for rows in cached if rows is not None]
            cache_stats = CacheStats(
                mode=mode,
                hits=len(payloads) - len(miss_indices),
                misses=len(miss_indices),
                stored=stored,
            )
        provenance = Provenance(
            seed=self.spec.scenario.seed,
            version=_package_version(),
            spec_sha256=self.spec.digest(),
        )
        results = [
            ExperimentResult.from_dict(data).with_provenance(provenance)
            for task_rows in rows_per_task
            for data in task_rows
        ]
        return ResultSet(results, cache_stats=cache_stats)

    def _task_cache_key(self, payload: Mapping[str, Any]) -> str:
        """Content key of one task: everything that determines its rows.

        Covers the scenario, seed count, the experiment plus its options,
        and the task's own sweep axes -- but not ``max_workers`` or
        ``cache``, which change how results are obtained, never what they
        are.  The package and result-schema versions are folded in so any
        release or row-shape change invalidates every prior entry.
        """
        body: dict[str, Any] = {
            "package_version": _package_version(),
            "result_schema": RESULT_SCHEMA_VERSION,
            "scenario": self.spec.scenario.to_dict(),
            "num_seeds": self.spec.num_seeds,
            "experiment": payload["experiment"],
            "options": self.spec.options_for(payload["experiment"]),
        }
        for axis in ("arch", "method", "tp_size"):
            if axis in payload:
                body[axis] = payload[axis]
        return content_key(body)

    def _execute(self, payloads: Sequence[Mapping[str, Any]]) -> list[list[dict[str, Any]]]:
        """Compute tasks fresh: serial in-process, or chunked over a forked pool.

        The parallel path submits one chunk per worker (spec dict pickled
        once per chunk, not once per task) and ships each shared interval
        timeline as a single shared-memory event-log handle that every
        chunk references; segments are unlinked once the pool is done.
        """
        if not payloads:
            return []
        self._warm_caches(payloads)
        workers = _resolve_workers(self.max_workers, len(payloads))
        context = _fork_context() if workers > 1 else None
        if context is None:
            return [_execute_payload(dict(p)) for p in payloads]

        transports = self._timeline_transports(payloads)
        spec_dict = self.spec.to_dict()
        index_chunks = _round_robin_chunks(len(payloads), workers)
        chunks = [
            {
                "spec": spec_dict,
                "timelines": transports,
                "tasks": [
                    {k: v for k, v in payloads[i].items() if k != "spec"}
                    for i in indices
                ],
            }
            for indices in index_chunks
        ]
        try:
            with ProcessPoolExecutor(max_workers=len(chunks), mp_context=context) as pool:
                chunk_results = list(pool.map(_execute_chunk, chunks))
        finally:
            for entry in transports:
                entry["transport"].unlink()
        ordered: list[list[dict[str, Any]] | None] = [None] * len(payloads)
        for indices, rows_lists in zip(index_chunks, chunk_results, strict=True):
            for index, rows in zip(indices, rows_lists, strict=True):
                ordered[index] = rows
        return [rows for rows in ordered if rows is not None]

    def _timeline_transports(self, payloads: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        """One shared transport per (trace seed, cluster size) the tasks replay.

        Every capacity/schedule cell of a scenario references the same
        entry, so each distinct event log is serialized exactly once per
        run no matter how many tasks or workers consume it.
        """
        if not any(p["experiment"] in _TIMELINE_EXPERIMENTS for p in payloads):
            return []
        n_nodes = self.spec.scenario.n_nodes
        return [
            {
                "trace": trace_spec.to_dict(),
                "n_nodes": n_nodes,
                "transport": serialize_timeline(_timeline_for(trace_spec, n_nodes)),
            }
            for trace_spec in _seed_trace_specs(self.spec)
        ]

    def _warm_caches(self, payloads: Sequence[Mapping[str, Any]]) -> None:
        """Build the trace (and shared timelines) before the pool forks.

        Forked workers inherit the parent's memo caches copy-on-write, so
        warming here means the trace is generated and sampled exactly once
        per run instead of once per worker process.  Scoped to the
        experiments actually being computed, so a fully cached run warms
        nothing.
        """
        scenario = self.spec.scenario
        experiments = list(dict.fromkeys(p["experiment"] for p in payloads))
        trace_specs = _seed_trace_specs(self.spec)
        if any(e in _ARCH_SWEEP_EXPERIMENTS for e in experiments):
            for trace_spec in trace_specs:
                trace_spec.build()
        if any(e in _TIMELINE_EXPERIMENTS for e in experiments):
            for trace_spec in trace_specs:
                _timeline_for(trace_spec, scenario.n_nodes)


def run_experiment(
    spec: ExperimentSpec, max_workers: int | None = None, cache: str | None = None
) -> ResultSet:
    """One-call convenience wrapper around :class:`ExperimentRunner`.

    >>> from repro.api.spec import ArchitectureSpec, ExperimentSpec, Scenario, TraceSpec
    >>> results = run_experiment(ExperimentSpec.of(
    ...     scenario=Scenario(
    ...         name="doc",
    ...         trace=TraceSpec(days=5, seed=1),
    ...         architectures=(ArchitectureSpec(name="Big-Switch"),),
    ...         tp_sizes=(32,),
    ...         n_nodes=288,
    ...     ),
    ...     experiments=("waste",),
    ... ), max_workers=1)
    >>> (len(results), results[0].architecture)
    (1, 'Big-Switch')
    >>> 0.0 <= results[0].metric("mean_waste_ratio") < 1.0
    True
    """
    return ExperimentRunner(spec, max_workers=max_workers, cache=cache).run()


def _package_version() -> str:
    import repro

    version = getattr(repro, "__version__", "0")
    return str(version)
