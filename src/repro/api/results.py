"""Unified, serializable experiment results.

Every experiment the runner executes -- waste, max-job-scale, fault-waiting,
goodput, cross-ToR, MFU, cost -- emits the same record shape: a
:class:`ExperimentResult` with scalar ``metrics``, optional named ``series``
(time series / CDF inputs), and :class:`Provenance` (seed, package version,
spec digest) so any result file can be traced back to the exact spec that
produced it.  :class:`ResultSet` is the ordered container with JSON I/O.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

#: Version of the ExperimentResult row shape.  Part of the runner's cache
#: key (:meth:`repro.api.runner.ExperimentRunner` -- see ``docs/api.md``),
#: so bumping it invalidates every cached row without touching cache files.
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CacheStats:
    """Result-cache counters for one runner invocation.

    ``hits`` tasks were served from the cache, ``misses`` were computed
    fresh, ``stored`` of those were written back (always equal to
    ``misses`` unless a write failed).  Attached to :class:`ResultSet` only
    when caching was on, so ``cache="off"`` output stays byte-identical to
    pre-cache dumps.

    >>> stats = CacheStats(mode="disk", hits=3, misses=1, stored=1)
    >>> CacheStats.from_dict(stats.to_dict()) == stats
    True
    """

    mode: str
    hits: int
    misses: int
    stored: int

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> CacheStats:
        return cls(
            mode=data["mode"],
            hits=data["hits"],
            misses=data["misses"],
            stored=data["stored"],
        )


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: enough to reproduce it bit-for-bit.

    >>> stamp = Provenance(seed=348, version="0", spec_sha256="ab" * 32)
    >>> Provenance.from_dict(stamp.to_dict()) == stamp
    True
    """

    seed: int
    version: str
    spec_sha256: str

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Provenance:
        return cls(
            seed=data["seed"],
            version=data["version"],
            spec_sha256=data["spec_sha256"],
        )


@dataclass(frozen=True)
class ExperimentResult:
    """One (experiment, architecture, TP size) cell of a sweep.

    ``architecture`` is the legend name (or a pseudo-name such as
    ``orchestrator:greedy`` / a model name for non-architecture experiments);
    ``tp_size`` is 0 when the experiment has no TP axis.

    >>> result = ExperimentResult.of(
    ...     "waste", "demo", "NVL-72", 32,
    ...     metrics={"mean_waste_ratio": 0.05},
    ...     series={"waste_ratios": [0.0, 0.1]},
    ... )
    >>> result.metric("mean_waste_ratio")
    0.05
    >>> result.series_dict["waste_ratios"]
    (0.0, 0.1)
    >>> ExperimentResult.from_dict(result.to_dict()) == result
    True
    """

    experiment: str
    scenario: str
    architecture: str
    tp_size: int
    metrics: tuple[tuple[str, Any], ...]
    series: tuple[tuple[str, tuple[float, ...]], ...] = ()
    provenance: Provenance | None = None

    @classmethod
    def of(
        cls,
        experiment: str,
        scenario: str,
        architecture: str,
        tp_size: int,
        metrics: Mapping[str, Any],
        series: Mapping[str, Sequence[float]] | None = None,
        provenance: Provenance | None = None,
    ) -> ExperimentResult:
        return cls(
            experiment=experiment,
            scenario=scenario,
            architecture=architecture,
            tp_size=tp_size,
            metrics=tuple(sorted(metrics.items())),
            series=tuple(sorted((k, tuple(v)) for k, v in (series or {}).items())),
            provenance=provenance,
        )

    # ------------------------------------------------------------- accessors
    @property
    def metrics_dict(self) -> dict[str, Any]:
        return dict(self.metrics)

    @property
    def series_dict(self) -> dict[str, tuple[float, ...]]:
        return dict(self.series)

    def metric(self, name: str) -> Any:
        try:
            return self.metrics_dict[name]
        except KeyError:
            raise KeyError(
                f"result {self.experiment}/{self.architecture} has no metric "
                f"{name!r}; available: {sorted(self.metrics_dict)}"
            ) from None

    def metric_stats(self, name: str) -> dict[str, float | int]:
        """Monte-Carlo columns for one metric: mean / stddev / ci95 / n_seeds.

        Multi-seed results (``num_seeds > 1``) carry explicit ``<name>_mean``
        / ``<name>_stddev`` / ``<name>_ci95`` metrics; single-seed results
        degrade to a zero-spread point estimate, so callers can treat every
        result uniformly.

        >>> result = ExperimentResult.of(
        ...     "waste", "demo", "NVL-72", 32, metrics={"mean_waste_ratio": 0.05})
        >>> result.metric_stats("mean_waste_ratio")
        {'mean': 0.05, 'stddev': 0.0, 'ci95': 0.0, 'n_seeds': 1}
        """
        metrics = self.metrics_dict
        if f"{name}_mean" in metrics:
            return {
                "mean": metrics[f"{name}_mean"],
                "stddev": metrics[f"{name}_stddev"],
                "ci95": metrics[f"{name}_ci95"],
                "n_seeds": int(metrics.get("num_seeds", 1)),
            }
        return {
            "mean": float(self.metric(name)),
            "stddev": 0.0,
            "ci95": 0.0,
            "n_seeds": int(metrics.get("num_seeds", 1)),
        }

    def with_provenance(self, provenance: Provenance) -> ExperimentResult:
        return dataclasses.replace(self, provenance=provenance)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "architecture": self.architecture,
            "tp_size": self.tp_size,
            "metrics": self.metrics_dict,
        }
        if self.series:
            data["series"] = {k: list(v) for k, v in self.series}
        if self.provenance is not None:
            data["provenance"] = self.provenance.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ExperimentResult:
        provenance = data.get("provenance")
        return cls.of(
            experiment=data["experiment"],
            scenario=data["scenario"],
            architecture=data["architecture"],
            tp_size=data["tp_size"],
            metrics=data["metrics"],
            series=data.get("series"),
            provenance=Provenance.from_dict(provenance) if provenance else None,
        )


@dataclass
class ResultSet:
    """Ordered collection of :class:`ExperimentResult` with JSON round-trip.

    >>> cell = lambda arch, tp, value: ExperimentResult.of(
    ...     "waste", "demo", arch, tp, {"mean_waste_ratio": value})
    >>> results = ResultSet([cell("NVL-72", 32, 0.05), cell("Big-Switch", 32, 0.01)])
    >>> len(results.filter(architecture="NVL-72"))
    1
    >>> results.metric_table("waste", "mean_waste_ratio")
    {'NVL-72': {32: 0.05}, 'Big-Switch': {32: 0.01}}
    >>> ResultSet.from_json(results.to_json()) == results
    True
    """

    results: list[ExperimentResult] = field(default_factory=list)
    cache_stats: CacheStats | None = None

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> ExperimentResult:
        return self.results[index]

    def filter(
        self,
        experiment: str | None = None,
        architecture: str | None = None,
        tp_size: int | None = None,
    ) -> ResultSet:
        """Sub-set matching every given axis (None = wildcard)."""
        return ResultSet([
            r for r in self.results
            if (experiment is None or r.experiment == experiment)
            and (architecture is None or r.architecture == architecture)
            and (tp_size is None or r.tp_size == tp_size)
        ])

    def architectures(self) -> list[str]:
        """Distinct architecture names, in first-seen order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.architecture)
        return list(seen)

    def metric_table(self, experiment: str, metric: str) -> dict[str, dict[int, Any]]:
        """``{architecture: {tp_size: value}}`` for one experiment metric."""
        table: dict[str, dict[int, Any]] = {}
        for r in self.filter(experiment=experiment):
            table.setdefault(r.architecture, {})[r.tp_size] = r.metric(metric)
        return table

    def stats_table(
        self, experiment: str, metric: str
    ) -> dict[str, dict[int, dict[str, float | int]]]:
        """``{architecture: {tp_size: {mean, stddev, ci95, n_seeds}}}``.

        The Monte-Carlo sibling of :meth:`metric_table`
        (:meth:`ExperimentResult.metric_stats` per cell); single-seed cells
        report zero spread.
        """
        table: dict[str, dict[int, dict[str, float | int]]] = {}
        for r in self.filter(experiment=experiment):
            table.setdefault(r.architecture, {})[r.tp_size] = r.metric_stats(metric)
        return table

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"results": [r.to_dict() for r in self.results]}
        # Emitted only when caching was on, so cache="off" dumps (and every
        # pre-cache result file) keep their exact byte layout.
        if self.cache_stats is not None:
            data["cache_stats"] = self.cache_stats.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ResultSet:
        stats = data.get("cache_stats")
        return cls(
            [ExperimentResult.from_dict(r) for r in data["results"]],
            cache_stats=CacheStats.from_dict(stats) if stats else None,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> ResultSet:
        return cls.from_dict(json.loads(text))
