"""Theoretical GPU-waste upper bound for InfiniteHBD (Appendix C, Table 7).

Appendix C derives an upper bound on the expected GPU waste ratio of the
K-Hop topology under i.i.d. node failures with probability ``P_s``:

* the expected number of breakpoints contributed by a single node is at most
  ``2 * (P_s^K + P_s^{2K})`` (a breakpoint needs a run of at least ``K``
  consecutive failures on one side of the node);
* each breakpoint wastes at most ``R * (N_t - R)`` GPUs, where ``N_t`` is the
  TP group size in GPUs and ``R`` the GPUs per node;
* combining and taking the small-``P_s`` limit yields the bound

      E[waste ratio]  <=  2 * (N_t - R) * P_s^K                      (1)

Table 7 evaluates the bound for R in {4, 8}, K in {2, 3, 4}, ``N_t = 32``,
with node failure rates derived from the p99 of the production trace
(``P_s = 7.22%`` for 8-GPU nodes, ``P_s = 3.67%`` for 4-GPU nodes).
"""

from __future__ import annotations

from collections.abc import Sequence

#: Node failure probabilities used by Table 7 (p99-derived, per Appendix C).
TABLE7_NODE_FAILURE_RATE: dict[int, float] = {4: 0.0367, 8: 0.0722}


def breakpoint_expectation_per_node(p_s: float, k: int) -> float:
    """Upper bound on the expected breakpoints adjacent to one healthy node."""
    if not 0.0 <= p_s < 1.0:
        raise ValueError("p_s must be in [0, 1)")
    if k < 1:
        raise ValueError("k must be >= 1")
    return 2.0 * (p_s ** k + p_s ** (2 * k))


def expected_waste_per_breakpoint(tp_size: int, gpus_per_node: int) -> float:
    """Expected GPUs wasted by a single breakpoint: ``R * (N_t - R)``."""
    if tp_size < 1 or gpus_per_node < 1:
        raise ValueError("tp_size and gpus_per_node must be >= 1")
    return gpus_per_node * max(0, tp_size - gpus_per_node)


def waste_ratio_upper_bound(
    p_s: float, k: int, tp_size: int, gpus_per_node: int
) -> float:
    """Equation (1): upper bound on the expected GPU waste ratio."""
    if tp_size < gpus_per_node:
        return 0.0
    return 2.0 * (tp_size - gpus_per_node) * (p_s ** k)


def waste_bound_table(
    tp_size: int = 32,
    ks: Sequence[int] = (2, 3, 4),
    node_sizes: Sequence[int] = (4, 8),
    failure_rates: dict[int, float] | None = None,
) -> list[dict[str, float]]:
    """Regenerate Table 7 (rows: node size R, columns: K)."""
    rates = failure_rates or TABLE7_NODE_FAILURE_RATE
    rows: list[dict[str, float]] = []
    for r in node_sizes:
        if r not in rates:
            raise KeyError(f"no failure rate provided for R={r}")
        row: dict[str, float] = {"gpus_per_node": r, "node_failure_rate": rates[r]}
        for k in ks:
            row[f"k{k}_bound"] = waste_ratio_upper_bound(rates[r], k, tp_size, r)
        rows.append(row)
    return rows
