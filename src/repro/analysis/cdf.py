"""Shared empirical-distribution helpers (CDF, quantiles, streaming).

Three call sites used to hand-roll the same computation (the waste-ratio CDF
of a replay series, the fault-ratio CDF of a trace, and the duration-weighted
exact variants the interval timeline engine added); they all route through
:func:`empirical_cdf` now, and the duration-weighted quantiles of the
interval engine route through :func:`weighted_quantile`.

:class:`StreamingDistribution` is the streaming-aggregation counterpart: a
duration-weighted accumulator for piecewise-constant signals that folds mean
/ quantile / CDF accumulation into a single pass, so very long replays never
materialise their interval list.  It is *exact*, not a sketch: the signals it
accumulates (waste ratios, usable GPU counts) take few distinct values, so
grouping weight by value loses nothing while keeping memory O(distinct
values) instead of O(intervals).
"""

from __future__ import annotations

from collections.abc import Sequence


def empirical_cdf(
    values: Sequence[float], weights: Sequence[float] | None = None
) -> tuple[list[float], list[float]]:
    """``(sorted values, cumulative probability)`` of an empirical distribution.

    Without ``weights`` every value counts equally and the cumulative column
    is exactly ``(i + 1) / n`` -- bit-for-bit what the previous hand-rolled
    implementations produced.  With ``weights`` (e.g. interval durations) the
    cumulative column is the normalised running weight, i.e. the exact CDF of
    a piecewise-constant process.
    """
    if weights is None:
        sorted_values = sorted(values)
        n = len(sorted_values)
        return sorted_values, [(i + 1) / n for i in range(n)]
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    pairs = sorted(zip(values, weights, strict=True))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise ValueError("total weight must be positive")
    sorted_values = [value for value, _ in pairs]
    cumulative: list[float] = []
    running = 0.0
    for _, weight in pairs:
        running += weight
        cumulative.append(running / total)
    return sorted_values, cumulative


def weighted_quantile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """Quantile of a weighted empirical distribution (inverse-CDF convention).

    Returns the smallest value whose cumulative weight reaches ``q`` of the
    total; ``q=0`` gives the minimum, ``q=1`` the maximum.  This is the exact
    analogue of a sample quantile when each value persists for ``weight``
    time units.  Empty input yields 0.0 and a zero total weight yields the
    smallest value (degenerate distributions, not errors, for callers folding
    over possibly-empty interval sets).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if not values:
        return 0.0
    pairs = sorted(zip(values, weights, strict=True))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return pairs[0][0]
    target = q * total
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        if cumulative >= target:
            return value
    return pairs[-1][0]


class StreamingDistribution:
    """Duration-weighted distribution accumulator for streaming replays.

    ``add(value, weight)`` folds one piecewise-constant segment in; weight is
    grouped per distinct value, so memory is bounded by the number of
    *levels* the signal visits (for replay signals: at most one per usable
    GPU count), never by the number of segments.  The weighted mean
    accumulates in arrival order, so it is bit-for-bit what a materialised
    ``sum(v * w) / sum(w)`` over the same segments produces; quantiles and
    the CDF match :func:`weighted_quantile` / :func:`empirical_cdf` up to
    the float-summation reordering that grouping introduces (exactly, when
    the weights are exactly representable).
    """

    __slots__ = ("_weights", "_weighted_sum", "_total_weight", "_count")

    def __init__(self) -> None:
        self._weights: dict[float, float] = {}
        self._weighted_sum = 0.0
        self._total_weight = 0.0
        self._count = 0

    def add(self, value: float, weight: float) -> None:
        """Fold in one segment of ``value`` persisting for ``weight`` units."""
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self._weights[value] = self._weights.get(value, 0.0) + weight
        self._weighted_sum += value * weight
        self._total_weight += weight
        self._count += 1

    def __len__(self) -> int:
        """Number of segments folded in (not distinct values)."""
        return self._count

    @property
    def n_values(self) -> int:
        """Number of distinct values seen (the memory footprint)."""
        return len(self._weights)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    def items(self) -> list[tuple[float, float]]:
        """``(value, total weight)`` pairs, sorted by value."""
        return sorted(self._weights.items())

    def mean(self) -> float:
        """Weighted mean (0.0 for an empty accumulator)."""
        if self._total_weight <= 0:
            return 0.0
        return self._weighted_sum / self._total_weight

    def min(self) -> float:
        if not self._weights:
            return 0.0
        return min(self._weights)

    def max(self) -> float:
        if not self._weights:
            return 0.0
        return max(self._weights)

    def quantile(self, q: float) -> float:
        """Weighted quantile, same convention as :func:`weighted_quantile`."""
        items = self.items()
        return weighted_quantile(
            [v for v, _ in items], [w for _, w in items], q
        )

    def cdf(self) -> tuple[list[float], list[float]]:
        """``(distinct sorted values, cumulative probability)``.

        The same step function :func:`empirical_cdf` produces from the
        materialised segments, with duplicate values collapsed to their last
        (i.e. highest-cumulative) point.
        """
        items = self.items()
        if not items:
            return [], []
        return empirical_cdf([v for v, _ in items], [w for _, w in items])

    def weight_below(self, threshold: float) -> float:
        """Total weight of values strictly below ``threshold``."""
        return sum(w for v, w in self._weights.items() if v < threshold)
