"""Shared empirical-distribution helpers (CDF and quantiles).

Three call sites used to hand-roll the same computation (the waste-ratio CDF
of a replay series, the fault-ratio CDF of a trace, and the duration-weighted
exact variants the interval timeline engine added); they all route through
:func:`empirical_cdf` now, and the duration-weighted quantiles of the
interval engine route through :func:`weighted_quantile`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def empirical_cdf(
    values: Sequence[float], weights: Optional[Sequence[float]] = None
) -> Tuple[List[float], List[float]]:
    """``(sorted values, cumulative probability)`` of an empirical distribution.

    Without ``weights`` every value counts equally and the cumulative column
    is exactly ``(i + 1) / n`` -- bit-for-bit what the previous hand-rolled
    implementations produced.  With ``weights`` (e.g. interval durations) the
    cumulative column is the normalised running weight, i.e. the exact CDF of
    a piecewise-constant process.
    """
    if weights is None:
        sorted_values = sorted(values)
        n = len(sorted_values)
        return sorted_values, [(i + 1) / n for i in range(n)]
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    pairs = sorted(zip(values, weights))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise ValueError("total weight must be positive")
    sorted_values = [value for value, _ in pairs]
    cumulative: List[float] = []
    running = 0.0
    for _, weight in pairs:
        running += weight
        cumulative.append(running / total)
    return sorted_values, cumulative


def weighted_quantile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """Quantile of a weighted empirical distribution (inverse-CDF convention).

    Returns the smallest value whose cumulative weight reaches ``q`` of the
    total; ``q=0`` gives the minimum, ``q=1`` the maximum.  This is the exact
    analogue of a sample quantile when each value persists for ``weight``
    time units.  Empty input yields 0.0 and a zero total weight yields the
    smallest value (degenerate distributions, not errors, for callers folding
    over possibly-empty interval sets).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if not values:
        return 0.0
    pairs = sorted(zip(values, weights))
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return pairs[0][0]
    target = q * total
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        if cumulative >= target:
            return value
    return pairs[-1][0]
