"""Theoretical analyses accompanying the system (Appendix C) and shared stats."""

from repro.analysis.cdf import StreamingDistribution, empirical_cdf, weighted_quantile
from repro.analysis.waste_bound import (
    breakpoint_expectation_per_node,
    expected_waste_per_breakpoint,
    waste_ratio_upper_bound,
    waste_bound_table,
)

__all__ = [
    "StreamingDistribution",
    "empirical_cdf",
    "weighted_quantile",
    "breakpoint_expectation_per_node",
    "expected_waste_per_breakpoint",
    "waste_ratio_upper_bound",
    "waste_bound_table",
]
