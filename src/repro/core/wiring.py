"""Physical wiring plan for an InfiniteHBD deployment.

Deploying the K-Hop Ring in a datacenter means pulling one fiber pair per
OCSTrx external path between specific (node, bundle, port) endpoints.  This
module turns the logical deployment (Algorithm 3's node order plus the K-hop
link rule) into the concrete cabling list a datacenter technician would work
from, and cross-checks it against the per-node bill of materials of Table 8.

Port convention (per node, matching Figure 4/5):

* bundles ``0 .. K-1`` carry the inter-node links;
* bundle ``i``'s ``EXTERNAL_1`` port faces the node ``i + 1`` positions ahead
  in deployment order, and its ``EXTERNAL_2`` port faces the node ``i + 1``
  positions behind;
* the remaining ``R - K`` GPU pairs are joined by intra-node DAC links
  (two cables per idle pair, as in the Table 8 BOM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.orchestrator import DeploymentPlan, deployment_strategy
from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.hardware.ocstrx import PathState


@dataclass(frozen=True)
class CableSpec:
    """One inter-node fiber bundle (all modules of one OCSTrx bundle)."""

    cable_id: int
    node_a: int
    bundle_a: int
    port_a: PathState
    node_b: int
    bundle_b: int
    port_b: PathState
    hop_distance: int
    network_distance: int

    @property
    def crosses_tor(self) -> bool:
        """Whether the cable leaves its ToR (network distance > 1)."""
        return self.network_distance > 1

    @property
    def crosses_domain(self) -> bool:
        """Whether the cable leaves its aggregation-switch domain."""
        return self.network_distance > 3


@dataclass(frozen=True)
class NodeWiring:
    """Per-node summary of the wiring plan."""

    node_id: int
    external_cables: int
    intra_node_dac_links: int
    ocstrx_modules: int


@dataclass
class WiringPlan:
    """The full cabling list plus per-node summaries."""

    cables: list[CableSpec]
    nodes: list[NodeWiring]
    k: int
    gpus_per_node: int
    modules_per_bundle: int

    # ------------------------------------------------------------- summaries
    @property
    def total_cables(self) -> int:
        return len(self.cables)

    @property
    def total_fiber_pairs(self) -> int:
        """Individual fiber pairs (one per OCSTrx module on each cable)."""
        return len(self.cables) * self.modules_per_bundle

    @property
    def total_ocstrx_modules(self) -> int:
        return sum(node.ocstrx_modules for node in self.nodes)

    @property
    def total_dac_links(self) -> int:
        return sum(node.intra_node_dac_links for node in self.nodes)

    def cables_by_hop_distance(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for cable in self.cables:
            counts[cable.hop_distance] = counts.get(cable.hop_distance, 0) + 1
        return counts

    def cross_tor_cable_fraction(self) -> float:
        if not self.cables:
            return 0.0
        return sum(1 for c in self.cables if c.crosses_tor) / len(self.cables)

    def cross_domain_cable_fraction(self) -> float:
        if not self.cables:
            return 0.0
        return sum(1 for c in self.cables if c.crosses_domain) / len(self.cables)

    def cables_of_node(self, node_id: int) -> list[CableSpec]:
        return [c for c in self.cables if node_id in (c.node_a, c.node_b)]

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Internal-consistency checks of the plan.

        * every interior node terminates exactly ``2K`` external links
          (fewer only at the two ends of the deployment line);
        * no (node, bundle, port) endpoint is used twice;
        * hop distances never exceed ``K``.
        """
        endpoint_seen: set = set()
        per_node_links: dict[int, int] = {}
        for cable in self.cables:
            for node, bundle, port in (
                (cable.node_a, cable.bundle_a, cable.port_a),
                (cable.node_b, cable.bundle_b, cable.port_b),
            ):
                key = (node, bundle, port)
                if key in endpoint_seen:
                    raise ValueError(f"endpoint {key} terminates two cables")
                endpoint_seen.add(key)
                per_node_links[node] = per_node_links.get(node, 0) + 1
            if cable.hop_distance > self.k:
                raise ValueError(
                    f"cable {cable.cable_id} spans {cable.hop_distance} hops > K={self.k}"
                )
        for node in self.nodes:
            links = per_node_links.get(node.node_id, 0)
            if links > 2 * self.k:
                raise ValueError(
                    f"node {node.node_id} terminates {links} links (> 2K)"
                )


class WiringPlanner:
    """Generates the wiring plan for a deployment."""

    def __init__(
        self,
        n_nodes: int,
        k: int = 2,
        gpus_per_node: int = 4,
        modules_per_bundle: int = 8,
        fat_tree: FatTree | None = None,
        plan: DeploymentPlan | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if gpus_per_node < k:
            raise ValueError("a node cannot host more inter-node bundles than GPUs")
        self.n_nodes = n_nodes
        self.k = k
        self.gpus_per_node = gpus_per_node
        self.modules_per_bundle = modules_per_bundle
        self.fat_tree = fat_tree or FatTree(
            FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=4, tors_per_domain=64)
        )
        if self.fat_tree.config.n_nodes != n_nodes:
            raise ValueError("fat_tree size must match n_nodes")
        self.plan = plan or deployment_strategy(
            n_nodes, k, self.fat_tree.config.nodes_per_tor
        )

    def build(self) -> WiringPlan:
        """Generate the full cabling list."""
        order = self.plan.order
        cables: list[CableSpec] = []
        cable_id = 0
        for position, node_a in enumerate(order):
            for offset in range(1, self.k + 1):
                peer_position = position + offset
                if peer_position >= len(order):
                    continue
                node_b = order[peer_position]
                bundle = offset - 1
                cables.append(
                    CableSpec(
                        cable_id=cable_id,
                        node_a=node_a,
                        bundle_a=bundle,
                        port_a=PathState.EXTERNAL_1,
                        node_b=node_b,
                        bundle_b=bundle,
                        port_b=PathState.EXTERNAL_2,
                        hop_distance=offset,
                        network_distance=self.fat_tree.network_distance(node_a, node_b),
                    )
                )
                cable_id += 1

        nodes = [
            NodeWiring(
                node_id=node_id,
                external_cables=sum(
                    1 for c in cables if node_id in (c.node_a, c.node_b)
                ),
                intra_node_dac_links=2 * (self.gpus_per_node - self.k),
                ocstrx_modules=self.k * self.modules_per_bundle,
            )
            for node_id in range(self.n_nodes)
        ]
        plan = WiringPlan(
            cables=cables,
            nodes=nodes,
            k=self.k,
            gpus_per_node=self.gpus_per_node,
            modules_per_bundle=self.modules_per_bundle,
        )
        plan.validate()
        return plan

    def bom_check(self, plan: WiringPlan) -> dict[str, float]:
        """Per-node component counts for cross-checking against Table 8.

        Returns OCSTrx modules, fibers (one per module port in use, i.e. two
        fiber ends per module but one fiber per module per cable side) and
        DAC links per node, matching the units of the published BOM.
        """
        per_node_ocstrx = plan.total_ocstrx_modules / self.n_nodes
        per_node_dac = plan.total_dac_links / self.n_nodes
        # Each OCSTrx module terminates one fiber (Table 8 counts one fiber
        # per transceiver module).
        per_node_fiber = per_node_ocstrx
        return {
            "ocstrx_modules_per_node": per_node_ocstrx,
            "dac_links_per_node": per_node_dac,
            "fibers_per_node": per_node_fiber,
        }
