"""Multi-dimensional parallelism over InfiniteHBD (section 7 discussion).

InfiniteHBD natively optimises a single communication-intensive dimension
(TP).  Section 7 sketches two ways to host a second HBD dimension (e.g. TP +
EP, or TP + CP) and their trade-offs:

* **Independent interconnects** -- the OCSTrx bundle of every GPU is split
  into ``d`` sub-bundles, each wired into its own inter-node topology.  Every
  dimension gets a *fixed* ``1/d`` share of the GPU's HBD bandwidth and full
  fault-tolerance semantics, but bandwidth cannot shift between dimensions,
  so a dimension that communicates rarely wastes its share.
* **Time-division** -- the main and backup links are re-pointed between the
  dimensions' topologies with the OCSTrx Fast Switch (60-80 us).  Each
  dimension sees the *full* GPU bandwidth while it holds the fabric, at the
  cost of a per-switch reconfiguration overhead and the loss of the backup
  links' fault-isolation role while they are lent to the second dimension.

:class:`MultiDimensionPlanner` quantifies both options for a given traffic
mix so the trade-off can be evaluated instead of hand-waved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Sequence


class MultiDimStrategy(enum.Enum):
    """How a second (or third) HBD dimension is provisioned."""

    INDEPENDENT = "independent_interconnects"
    TIME_DIVISION = "time_division"


@dataclass(frozen=True)
class DimensionTraffic:
    """Per-iteration traffic of one parallel dimension on the HBD.

    ``phases`` is the number of separate communication bursts per iteration
    (each burst needs one fabric hand-over under time division).
    """

    name: str
    bytes_per_gpu: float
    phases: int = 1

    def __post_init__(self) -> None:
        if self.bytes_per_gpu < 0:
            raise ValueError("bytes_per_gpu must be non-negative")
        if self.phases < 1:
            raise ValueError("phases must be >= 1")


@dataclass
class MultiDimPlan:
    """Evaluation of one provisioning strategy for a traffic mix."""

    strategy: MultiDimStrategy
    per_dimension_bandwidth_gbps: dict[str, float]
    communication_time_s: float
    reconfiguration_time_s: float
    keeps_backup_links: bool

    @property
    def total_time_s(self) -> float:
        return self.communication_time_s + self.reconfiguration_time_s


class MultiDimensionPlanner:
    """Compare independent-interconnect vs time-division provisioning."""

    def __init__(
        self,
        hbd_bandwidth_gbps: float = 6400.0,
        reconfiguration_us: float = 70.0,
    ) -> None:
        if hbd_bandwidth_gbps <= 0:
            raise ValueError("hbd_bandwidth_gbps must be positive")
        if reconfiguration_us < 0:
            raise ValueError("reconfiguration_us must be non-negative")
        self.hbd_bandwidth_gbps = hbd_bandwidth_gbps
        self.reconfiguration_us = reconfiguration_us

    # ------------------------------------------------------------------ plans
    def independent_plan(self, traffic: Sequence[DimensionTraffic]) -> MultiDimPlan:
        """Every dimension owns a fixed ``1/d`` slice of the HBD bandwidth.

        Dimensions communicate concurrently on their own sub-fabrics, so the
        iteration's communication time is set by the slowest dimension.
        """
        self._check(traffic)
        d = len(traffic)
        share = self.hbd_bandwidth_gbps / d
        share_bytes_per_s = share * 1e9 / 8.0
        times = [t.bytes_per_gpu / share_bytes_per_s for t in traffic]
        return MultiDimPlan(
            strategy=MultiDimStrategy.INDEPENDENT,
            per_dimension_bandwidth_gbps={t.name: share for t in traffic},
            communication_time_s=max(times),
            reconfiguration_time_s=0.0,
            keeps_backup_links=False if d > 1 else True,
        )

    def time_division_plan(self, traffic: Sequence[DimensionTraffic]) -> MultiDimPlan:
        """Dimensions take turns owning the full HBD bandwidth.

        Communication serialises across dimensions; every phase hand-over
        costs one OCSTrx reconfiguration.
        """
        self._check(traffic)
        full_bytes_per_s = self.hbd_bandwidth_gbps * 1e9 / 8.0
        comm_time = sum(t.bytes_per_gpu / full_bytes_per_s for t in traffic)
        switches = sum(t.phases for t in traffic) if len(traffic) > 1 else 0
        return MultiDimPlan(
            strategy=MultiDimStrategy.TIME_DIVISION,
            per_dimension_bandwidth_gbps={
                t.name: self.hbd_bandwidth_gbps for t in traffic
            },
            communication_time_s=comm_time,
            reconfiguration_time_s=switches * self.reconfiguration_us * 1e-6,
            keeps_backup_links=len(traffic) <= 1,
        )

    def compare(self, traffic: Sequence[DimensionTraffic]) -> dict[str, MultiDimPlan]:
        """Both plans for the same traffic mix, keyed by strategy value."""
        return {
            MultiDimStrategy.INDEPENDENT.value: self.independent_plan(traffic),
            MultiDimStrategy.TIME_DIVISION.value: self.time_division_plan(traffic),
        }

    def preferred_strategy(self, traffic: Sequence[DimensionTraffic]) -> MultiDimStrategy:
        """Strategy with the lower total time for this traffic mix.

        Balanced, always-busy dimensions favour independent interconnects
        (parallel transfers hide each other); skewed or bursty mixes favour
        time division (the busy dimension gets the whole fabric).
        """
        plans = self.compare(traffic)
        independent = plans[MultiDimStrategy.INDEPENDENT.value]
        time_division = plans[MultiDimStrategy.TIME_DIVISION.value]
        if time_division.total_time_s < independent.total_time_s:
            return MultiDimStrategy.TIME_DIVISION
        return MultiDimStrategy.INDEPENDENT

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _check(traffic: Sequence[DimensionTraffic]) -> None:
        if not traffic:
            raise ValueError("at least one dimension is required")
        names = [t.name for t in traffic]
        if len(set(names)) != len(names):
            raise ValueError("dimension names must be unique")
