"""Reconfigurable K-Hop Ring / K-Hop Line topology (paper section 4.2).

Nodes are arranged on a line (or a ring) in deployment order.  Every node is
connected by OCSTrx external paths to all nodes within ``K`` hops in each
direction, giving it a degree of ``2K``.  During AllReduce only the two links
towards the immediate healthy neighbours are active; the other ``2K - 2``
links are backups used to bypass faulty nodes.

The key property exploited by the large-scale evaluation is: a run of up to
``K - 1`` consecutive faulty nodes can be bypassed (its two healthy endpoints
are at distance <= K and therefore share a backup link), whereas a run of
``K`` or more consecutive faults breaks the line into two disconnected
segments (a *breakpoint* in the paper's Appendix C terminology).

:class:`KHopRingTopology` provides:

* the explicit :mod:`networkx` graph of the topology,
* healthy-segment extraction under an arbitrary fault set,
* TP-group placement counting (used by the waste-ratio simulations), and
* breakpoint counting (used to validate the Appendix C analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import networkx as nx


@dataclass(frozen=True)
class KHopTopologyConfig:
    """Static parameters of a K-Hop topology.

    Attributes
    ----------
    n_nodes:
        Number of nodes on the line / ring.
    k:
        Hop count ``K`` (number of OCSTrx bundles per node used for
        inter-node connectivity).  ``K=2`` and ``K=3`` are the paper's
        evaluated configurations.
    gpus_per_node:
        ``R`` -- GPUs per node (4 or 8).
    ring:
        If True the topology wraps around (K-Hop Ring); if False it is a
        K-Hop Line (reduced fault tolerance at the two ends).
    """

    n_nodes: int
    k: int = 2
    gpus_per_node: int = 4
    ring: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def degree(self) -> int:
        """External link degree of each node (2K, capped by topology size)."""
        return min(2 * self.k, max(0, self.n_nodes - 1))


@dataclass(frozen=True)
class Segment:
    """A maximal healthy segment of the K-Hop topology.

    ``nodes`` are healthy node ids in deployment order.  Adjacent nodes in the
    sequence are guaranteed to be within ``K`` hops of each other in the
    underlying topology, so the segment can host contiguous GPU rings.
    ``is_ring`` is True when the segment wraps the whole ring (no endpoints).
    """

    nodes: tuple[int, ...]
    is_ring: bool = False

    def __len__(self) -> int:
        return len(self.nodes)

    def tp_group_capacity(self, nodes_per_group: int) -> int:
        """How many TP groups of ``nodes_per_group`` nodes fit in the segment."""
        if nodes_per_group < 1:
            raise ValueError("nodes_per_group must be >= 1")
        return len(self.nodes) // nodes_per_group

    def leftover_nodes(self, nodes_per_group: int) -> int:
        """Healthy nodes of the segment that cannot form a full TP group."""
        if nodes_per_group < 1:
            raise ValueError("nodes_per_group must be >= 1")
        return len(self.nodes) % nodes_per_group


class KHopRingTopology:
    """The reconfigurable K-Hop Ring topology over ``n_nodes`` nodes."""

    def __init__(self, config: KHopTopologyConfig) -> None:
        self.config = config

    # ------------------------------------------------------------ basic graph
    def neighbors(self, node: int) -> list[int]:
        """Nodes within K hops of ``node`` (primary + backup links)."""
        self._check_node(node)
        n, k = self.config.n_nodes, self.config.k
        result: set[int] = set()
        for hop in range(1, k + 1):
            if self.config.ring:
                result.add((node + hop) % n)
                result.add((node - hop) % n)
            else:
                if node + hop < n:
                    result.add(node + hop)
                if node - hop >= 0:
                    result.add(node - hop)
        result.discard(node)
        return sorted(result)

    def has_link(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` share an OCSTrx link (<= K hops)."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return False
        return self.hop_distance(a, b) <= self.config.k

    def hop_distance(self, a: int, b: int) -> int:
        """Distance along the deployment line/ring between two nodes."""
        self._check_node(a)
        self._check_node(b)
        diff = abs(a - b)
        if self.config.ring:
            return min(diff, self.config.n_nodes - diff)
        return diff

    def graph(self, faulty: Iterable[int] | None = None) -> nx.Graph:
        """Explicit networkx graph; faulty nodes (if given) are removed."""
        faulty_set = set(faulty or ())
        g = nx.Graph()
        for node in range(self.config.n_nodes):
            if node in faulty_set:
                continue
            g.add_node(node)
        for node in range(self.config.n_nodes):
            if node in faulty_set:
                continue
            for peer in self.neighbors(node):
                if peer in faulty_set:
                    continue
                g.add_edge(node, peer)
        return g

    # -------------------------------------------------------- healthy segments
    def healthy_segments(self, faulty: Iterable[int]) -> list[Segment]:
        """Maximal healthy segments under ``faulty`` node failures.

        Two consecutive healthy nodes belong to the same segment when the run
        of faulty nodes separating them is strictly shorter than ``K`` (so the
        backup link at distance <= K bridges the gap).  In ring mode the
        segment list also merges across the wrap-around point, and if every
        gap is bridgeable the single resulting segment is flagged
        ``is_ring=True``.
        """
        n, k = self.config.n_nodes, self.config.k
        faulty_set = {f for f in faulty if 0 <= f < n}
        healthy = [i for i in range(n) if i not in faulty_set]
        if not healthy:
            return []
        if not faulty_set and self.config.ring:
            return [Segment(nodes=tuple(healthy), is_ring=True)]

        segments: list[list[int]] = [[healthy[0]]]
        for prev, cur in zip(healthy, healthy[1:], strict=False):
            if cur - prev <= k:
                segments[-1].append(cur)
            else:
                segments.append([cur])

        if self.config.ring and len(segments) > 1:
            # Gap across the wrap point: distance from the last healthy node
            # forward to the first healthy node.
            wrap_gap = (healthy[0] + n) - healthy[-1]
            if wrap_gap <= k:
                tail = segments.pop()
                segments[0] = tail + segments[0]
        elif self.config.ring and len(segments) == 1:
            wrap_gap = (healthy[0] + n) - healthy[-1]
            if wrap_gap <= k and len(faulty_set) > 0:
                # A single segment whose ends reconnect across the wrap forms
                # a ring again.
                return [Segment(nodes=tuple(segments[0]), is_ring=True)]

        return [Segment(nodes=tuple(seg)) for seg in segments]

    def breakpoints(self, faulty: Iterable[int]) -> int:
        """Number of breakpoints (unbridgeable fault gaps) on the topology.

        A breakpoint is a maximal run of >= K consecutive faulty nodes lying
        between two healthy nodes (Appendix C).  For a line topology, fault
        runs touching either end are not breakpoints (they simply shorten the
        line).
        """
        n, k = self.config.n_nodes, self.config.k
        faulty_set = {f for f in faulty if 0 <= f < n}
        healthy = [i for i in range(n) if i not in faulty_set]
        if len(healthy) <= 1:
            return 0
        count = 0
        for prev, cur in zip(healthy, healthy[1:], strict=False):
            if cur - prev - 1 >= k:
                count += 1
        if self.config.ring:
            wrap_run = (healthy[0] + n) - healthy[-1] - 1
            if wrap_run >= k:
                count += 1
        return count

    # ------------------------------------------------------------ TP capacity
    def usable_gpus(self, faulty: Iterable[int], tp_size: int) -> int:
        """GPUs that can participate in TP groups of ``tp_size`` GPUs."""
        nodes_per_group = self.nodes_per_tp_group(tp_size)
        total = 0
        for segment in self.healthy_segments(faulty):
            total += segment.tp_group_capacity(nodes_per_group) * tp_size
        return total

    def wasted_gpus(self, faulty: Iterable[int], tp_size: int) -> int:
        """Healthy GPUs that cannot be used (fragmentation / disconnection)."""
        faulty_set = {f for f in faulty if 0 <= f < self.config.n_nodes}
        healthy_gpus = (
            self.config.n_nodes - len(faulty_set)
        ) * self.config.gpus_per_node
        return healthy_gpus - self.usable_gpus(faulty_set, tp_size)

    def waste_ratio(self, faulty: Iterable[int], tp_size: int) -> float:
        """Wasted healthy GPUs as a fraction of all GPUs in the topology."""
        return self.wasted_gpus(faulty, tp_size) / self.config.total_gpus

    def nodes_per_tp_group(self, tp_size: int) -> int:
        """Nodes needed per TP group of ``tp_size`` GPUs (ceil division)."""
        if tp_size < 1:
            raise ValueError("tp_size must be >= 1")
        r = self.config.gpus_per_node
        return max(1, -(-tp_size // r))

    # --------------------------------------------------------------- helpers
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.config.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.config.n_nodes}-node topology"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        c = self.config
        kind = "Ring" if c.ring else "Line"
        return f"KHop{kind}(n={c.n_nodes}, K={c.k}, R={c.gpus_per_node})"
