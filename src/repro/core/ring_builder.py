"""Dynamic GPU-granular ring construction over the K-Hop topology.

This module implements the intra-node loopback mechanism of section 4.2: a
group of nodes connected as a line can be closed into a GPU-level ring by
activating the cross-lane loopback path of the OCSTrx bundles at the two ends
of the line, while the bundles in the middle activate the external path
towards the next node in the line.

:class:`RingBuilder` works on actual :class:`~repro.core.node.Node` objects
(driving their :class:`~repro.hardware.ocstrx.OCSTrxBundle` instances) so
that the hardware-level state -- active paths, reconfiguration latency,
delivered bandwidth -- can be asserted by tests, mirroring what the node
fabric manager of the paper's control plane does.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.khop_ring import KHopRingTopology
from repro.core.node import Node
from repro.hardware.ocstrx import PathState


class RingConstructionError(RuntimeError):
    """Raised when a GPU ring cannot be built from the requested nodes."""


@dataclass
class GPURing:
    """A constructed GPU-level ring.

    Attributes
    ----------
    gpu_order:
        GPU identifiers in ring order; the last element connects back to the
        first.
    node_order:
        The nodes (ids) the ring spans, in line order.
    reconfiguration_latency_us:
        Worst-case OCSTrx switching latency incurred to establish the ring
        (bundles switch in parallel, so this is the max over all bundles).
    bandwidth_gbps:
        Per-hop ring bandwidth (the minimum bundle bandwidth along the ring).
    """

    gpu_order: tuple[str, ...]
    node_order: tuple[int, ...]
    reconfiguration_latency_us: float
    bandwidth_gbps: float

    @property
    def size(self) -> int:
        """Number of GPUs in the ring."""
        return len(self.gpu_order)

    def neighbors_of(self, gpu_id: str) -> tuple[str, str]:
        """(previous, next) GPUs of ``gpu_id`` on the ring."""
        idx = self.gpu_order.index(gpu_id)
        prev_gpu = self.gpu_order[(idx - 1) % len(self.gpu_order)]
        next_gpu = self.gpu_order[(idx + 1) % len(self.gpu_order)]
        return prev_gpu, next_gpu


class RingBuilder:
    """Builds GPU-granular rings over a set of nodes on a K-Hop topology."""

    def __init__(self, topology: KHopRingTopology, nodes: Sequence[Node]) -> None:
        if len(nodes) != topology.config.n_nodes:
            raise ValueError(
                "number of Node objects must match the topology node count"
            )
        for expected, node in enumerate(nodes):
            if node.node_id != expected:
                raise ValueError("nodes must be ordered by node_id starting at 0")
        self.topology = topology
        self.nodes = list(nodes)

    # ----------------------------------------------------------------- checks
    def validate_line(self, node_ids: Sequence[int]) -> None:
        """Check that ``node_ids`` can form a line on the topology.

        Every consecutive pair must share an OCSTrx link (be within K hops),
        every node must be healthy, and nodes must be distinct.
        """
        if len(node_ids) < 1:
            raise RingConstructionError("a ring needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise RingConstructionError("duplicate nodes in ring request")
        for node_id in node_ids:
            if not 0 <= node_id < len(self.nodes):
                raise RingConstructionError(f"unknown node {node_id}")
            if self.nodes[node_id].failed:
                raise RingConstructionError(f"node {node_id} is failed")
            if len(node_ids) > 1 and self.nodes[node_id].n_bundles < 2:
                raise RingConstructionError(
                    f"node {node_id} has a single OCSTrx bundle; multi-node "
                    "rings need at least 2 bundles per node"
                )
        for a, b in zip(node_ids, node_ids[1:], strict=False):
            if not self.topology.has_link(a, b):
                raise RingConstructionError(
                    f"nodes {a} and {b} are {self.topology.hop_distance(a, b)} hops "
                    f"apart, beyond K={self.topology.config.k}"
                )

    # ------------------------------------------------------------------ build
    def build_ring(self, node_ids: Sequence[int]) -> GPURing:
        """Construct a GPU ring over ``node_ids`` (in line order).

        The two end nodes activate the loopback path on their outward-facing
        bundle (closing the ring inside the node); intermediate hops activate
        the external path towards their line neighbour.  All GPUs of every
        node participate, so the ring size is ``len(node_ids) * R``.
        """
        self.validate_line(node_ids)
        latencies: list[float] = []
        bandwidths: list[float] = []

        for position, node_id in enumerate(node_ids):
            node = self.nodes[node_id]
            left_bundle = node.bundle(0)
            right_bundle = node.bundle(min(1, node.n_bundles - 1))
            is_head = position == 0
            is_tail = position == len(node_ids) - 1

            if is_head and is_tail:
                # Single-node ring: both bundles loop back internally.
                latencies.append(left_bundle.activate(PathState.LOOPBACK))
                if right_bundle is not left_bundle:
                    latencies.append(right_bundle.activate(PathState.LOOPBACK))
                bandwidths.append(left_bundle.bandwidth_gbps)
                continue

            if is_head:
                latencies.append(left_bundle.activate(PathState.LOOPBACK))
                latencies.append(
                    self._activate_towards(node, right_bundle, node_ids[position + 1])
                )
                bandwidths.append(right_bundle.bandwidth_gbps)
            elif is_tail:
                latencies.append(
                    self._activate_towards(node, left_bundle, node_ids[position - 1])
                )
                latencies.append(right_bundle.activate(PathState.LOOPBACK))
                bandwidths.append(left_bundle.bandwidth_gbps)
            else:
                latencies.append(
                    self._activate_towards(node, left_bundle, node_ids[position - 1])
                )
                latencies.append(
                    self._activate_towards(node, right_bundle, node_ids[position + 1])
                )
                bandwidths.append(min(left_bundle.bandwidth_gbps,
                                      right_bundle.bandwidth_gbps))

        gpu_order = self._gpu_ring_order(node_ids)
        return GPURing(
            gpu_order=tuple(gpu_order),
            node_order=tuple(node_ids),
            reconfiguration_latency_us=max(latencies) if latencies else 0.0,
            bandwidth_gbps=min(bandwidths) if bandwidths else 0.0,
        )

    def build_ring_bypassing_faults(
        self, start: int, n_nodes: int
    ) -> GPURing:
        """Build a ring of ``n_nodes`` healthy nodes starting at ``start``.

        Faulty nodes encountered along the deployment order are skipped as
        long as the resulting gap stays within K hops; otherwise construction
        fails with :class:`RingConstructionError`.
        """
        if n_nodes < 1:
            raise RingConstructionError("n_nodes must be >= 1")
        selected: list[int] = []
        cursor = start
        limit = self.topology.config.n_nodes
        scanned = 0
        while len(selected) < n_nodes and scanned < limit:
            node_id = cursor % limit if self.topology.config.ring else cursor
            if node_id >= limit:
                break
            if not self.nodes[node_id].failed:
                selected.append(node_id)
            cursor += 1
            scanned += 1
        if len(selected) < n_nodes:
            raise RingConstructionError(
                f"not enough healthy nodes from {start}: "
                f"needed {n_nodes}, found {len(selected)}"
            )
        return self.build_ring(selected)

    # -------------------------------------------------------------- internals
    def _activate_towards(self, node: Node, bundle, peer_node_id: int) -> float:
        """Activate the external path of ``bundle`` pointing at ``peer_node_id``.

        The deployment wiring convention is: EXTERNAL_1 reaches the primary
        (distance-1) neighbour, EXTERNAL_2 the backup (distance >= 2)
        neighbour.  If the fibers have not been explicitly wired (the common
        case in large-scale simulations) we wire them on demand according to
        the hop distance.
        """
        distance = self.topology.hop_distance(node.node_id, peer_node_id)
        path = PathState.EXTERNAL_1 if distance == 1 else PathState.EXTERNAL_2
        if bundle.peer(path) is None:
            bundle.wire_external(path, peer_node_id)
        return bundle.activate(path)

    def _gpu_ring_order(self, node_ids: Sequence[int]) -> list[str]:
        """GPU traversal order of the ring.

        The ring goes "out" along the upper-half GPUs of each node and comes
        "back" along the lower-half GPUs, matching the cross-lane loopback of
        Figure 2 (GPUs 1..R/2 forward, GPUs R/2+1..R on the return path).
        """
        forward: list[str] = []
        backward: list[str] = []
        for node_id in node_ids:
            node = self.nodes[node_id]
            half = node.n_gpus // 2
            forward.extend(g.gpu_id for g in node.gpus[:half])
            backward.extend(g.gpu_id for g in node.gpus[half:])
        return forward + list(reversed(backward))
