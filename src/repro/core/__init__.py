"""Core InfiniteHBD contribution: nodes, K-Hop Ring topology, orchestration.

* :mod:`repro.core.node` -- GPU node model (UBB 2.0 style 4-/8-GPU nodes with
  OCSTrx bundles).
* :mod:`repro.core.khop_ring` -- the reconfigurable K-Hop Ring / K-Hop Line
  topology, fault bypass and healthy-segment extraction.
* :mod:`repro.core.ring_builder` -- dynamic GPU-granular ring construction on
  top of the K-Hop topology (intra-node loopback semantics).
* :mod:`repro.core.orchestrator` -- the HBD-DCN orchestration algorithms
  (Algorithms 1-5 of the paper) plus the greedy baseline.
"""

from repro.core.node import GPU, Node, make_nodes
from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig, Segment
from repro.core.alltoall_topology import AllToAllTopologyConfig, PowerOfTwoTopology
from repro.core.ring_builder import GPURing, RingBuilder, RingConstructionError
from repro.core.multidim import (
    DimensionTraffic,
    MultiDimensionPlanner,
    MultiDimPlan,
    MultiDimStrategy,
)
from repro.core.wiring import CableSpec, WiringPlan, WiringPlanner
from repro.core.orchestrator import (
    DeploymentPlan,
    OrchestrationResult,
    Orchestrator,
    TPGroup,
    deployment_strategy,
    greedy_placement,
    orchestrate_dcn_free,
    orchestrate_fat_tree,
    placement_fat_tree,
)

__all__ = [
    "GPU",
    "Node",
    "make_nodes",
    "KHopRingTopology",
    "KHopTopologyConfig",
    "Segment",
    "AllToAllTopologyConfig",
    "PowerOfTwoTopology",
    "CableSpec",
    "WiringPlan",
    "WiringPlanner",
    "DimensionTraffic",
    "MultiDimensionPlanner",
    "MultiDimPlan",
    "MultiDimStrategy",
    "GPURing",
    "RingBuilder",
    "RingConstructionError",
    "DeploymentPlan",
    "OrchestrationResult",
    "Orchestrator",
    "TPGroup",
    "deployment_strategy",
    "greedy_placement",
    "orchestrate_dcn_free",
    "orchestrate_fat_tree",
    "placement_fat_tree",
]
