"""GPU node model used by the InfiniteHBD topology.

A node follows the OCP UBB 2.0 style layout of Figure 4: ``R`` GPUs are served
by up to ``R`` OCSTrx bundles, each bundle connecting a *pair* of GPUs (one on
the upper-half SerDes lanes, one on the lower-half).  In the K-Hop Ring
topology a node uses ``K`` of its bundles for inter-node links towards each
direction (for a total of ``2K`` external paths since every bundle has two
external paths) and keeps the rest in loopback or replaces them with DAC
links.

The node model is intentionally lightweight: the large-scale cluster
simulations (Figures 13-16) only need node identity, GPU count, failure state
and bundle bookkeeping, while the ring-construction code
(:mod:`repro.core.ring_builder`) manipulates the bundles directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.ocstrx import OCSTrxBundle, OCSTrxConfig, PathState


@dataclass
class GPU:
    """A single GPU (or TPU-like accelerator) inside a node."""

    gpu_id: str
    node_id: int
    local_index: int
    hbd_bandwidth_gbps: float = 6400.0  # 8 x 800G OCSTrx
    dcn_bandwidth_gbps: float = 400.0   # ConnectX-7 class NIC
    failed: bool = False

    @property
    def healthy(self) -> bool:
        return not self.failed


class Node:
    """A GPU node with OCSTrx bundles.

    Parameters
    ----------
    node_id:
        Integer identity of the node; also its position in the physical
        deployment order (``S_all`` in the paper's notation).
    n_gpus:
        ``R`` -- GPUs per node (4 or 8 in the paper's evaluations).
    n_bundles:
        ``K`` -- OCSTrx bundles used for inter-node connectivity; determines
        the hop count of the K-Hop Ring.  Must satisfy ``K <= R``.
    modules_per_bundle:
        Physical OCSTrx modules per bundle (8 x 800G for a 6.4 Tbps GPU).
    """

    def __init__(
        self,
        node_id: int,
        n_gpus: int = 4,
        n_bundles: int = 2,
        modules_per_bundle: int = 8,
        trx_config: OCSTrxConfig | None = None,
    ) -> None:
        if n_gpus < 2:
            raise ValueError("a node needs at least 2 GPUs")
        if n_gpus % 2 != 0:
            raise ValueError("n_gpus must be even (bundles serve GPU pairs)")
        if not 1 <= n_bundles <= n_gpus:
            raise ValueError("n_bundles (K) must satisfy 1 <= K <= R")
        self.node_id = node_id
        self.n_gpus = n_gpus
        self.n_bundles = n_bundles
        self.gpus: list[GPU] = [
            GPU(gpu_id=f"n{node_id}/g{i}", node_id=node_id, local_index=i)
            for i in range(n_gpus)
        ]
        self.bundles: list[OCSTrxBundle] = [
            OCSTrxBundle(
                bundle_id=f"n{node_id}/b{i}",
                n_modules=modules_per_bundle,
                config=trx_config,
            )
            for i in range(n_bundles)
        ]
        self._failed = False

    # ------------------------------------------------------------------ state
    @property
    def failed(self) -> bool:
        """Whether the node (as a whole) is failed."""
        return self._failed

    @property
    def healthy(self) -> bool:
        return not self._failed

    @property
    def healthy_gpu_count(self) -> int:
        if self._failed:
            return 0
        return sum(1 for g in self.gpus if g.healthy)

    def fail(self) -> None:
        """Fail the node: all GPUs and bundles become unavailable."""
        self._failed = True
        for gpu in self.gpus:
            gpu.failed = True
        for bundle in self.bundles:
            bundle.fail()

    def repair(self) -> None:
        """Repair the node: GPUs and bundles become available again (dark)."""
        self._failed = False
        for gpu in self.gpus:
            gpu.failed = False
        for bundle in self.bundles:
            bundle.repair()

    # -------------------------------------------------------------- bandwidth
    @property
    def hbd_bandwidth_gbps(self) -> float:
        """Per-GPU HBD bandwidth (the bundle the GPU drives)."""
        if not self.gpus:
            return 0.0
        return self.gpus[0].hbd_bandwidth_gbps

    # ---------------------------------------------------------------- wiring
    def bundle(self, index: int) -> OCSTrxBundle:
        """Bundle at ``index`` (0-based, < K)."""
        return self.bundles[index]

    def bundle_states(self) -> dict[str, PathState]:
        """Current path state per bundle id (for debugging / assertions)."""
        return {b.bundle_id: b.state for b in self.bundles}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Node(id={self.node_id}, R={self.n_gpus}, K={self.n_bundles}, "
            f"failed={self._failed})"
        )


def make_nodes(
    n_nodes: int,
    n_gpus: int = 4,
    n_bundles: int = 2,
    modules_per_bundle: int = 8,
    trx_config: OCSTrxConfig | None = None,
) -> list[Node]:
    """Create ``n_nodes`` identical nodes numbered 0..n_nodes-1."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return [
        Node(
            node_id=i,
            n_gpus=n_gpus,
            n_bundles=n_bundles,
            modules_per_bundle=modules_per_bundle,
            trx_config=trx_config,
        )
        for i in range(n_nodes)
    ]
