"""HBD-DCN orchestration algorithms (paper section 4.3 and Appendix D).

The orchestrator answers: given a job that needs ``s`` GPUs arranged into TP
groups of ``t`` GPUs, the current fault set, the InfiniteHBD deployment and
the Fat-Tree DCN, which nodes should host which TP group so that (1) every TP
group is contiguous on the HBD and (2) the outer-parallel (DP/CP/PP/SP)
traffic crosses as few ToRs as possible?

Implemented algorithms (numbering follows the paper):

* ``deployment_strategy``   -- Algorithm 3: interleave nodes into ``p``
  parallel sub-lines so that HBD neighbours sit under *different* ToRs while
  ToR-mates sit at the same position of different sub-lines.
* ``orchestrate_dcn_free``  -- Algorithm 2: DFS/segment based placement that
  only maximises GPU utilisation (no DCN awareness).
* ``placement_fat_tree``    -- Algorithm 4: placement under a given number of
  locality constraints (sub-line confinement + ToR-alignment of faults).
* ``orchestrate_fat_tree``  -- Algorithm 5 / Algorithm 1: binary search over
  the number of constraints; returns the most-constrained placement that
  still satisfies the job scale.
* ``greedy_placement``      -- the Baseline of section 6.4: respects HBD
  contiguity but ignores the DCN structure.

The high-level :class:`Orchestrator` couples these with the
:class:`~repro.dcn.traffic.TrafficModel` so that a single call produces both
the placement and its cross-ToR traffic report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.dcn.traffic import CrossToRReport, TrafficModel, TrafficVolumes


# --------------------------------------------------------------------------
# Data structures
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class TPGroup:
    """One tensor-parallel group: an ordered tuple of node ids.

    Node order matters -- consecutive nodes are HBD neighbours and the GPU
    ring is built along this order.
    """

    nodes: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def rank_node(self, rank: int) -> int:
        """Node hosting TP rank position ``rank`` (node granularity)."""
        return self.nodes[rank]


@dataclass(frozen=True)
class JobSpec:
    """A training job request.

    Attributes
    ----------
    total_gpus:
        ``s`` -- GPUs the job needs in total.
    tp_size:
        ``t`` -- GPUs per TP group.
    gpus_per_node:
        ``r`` -- GPUs per node.
    """

    total_gpus: int
    tp_size: int
    gpus_per_node: int = 4

    def __post_init__(self) -> None:
        if self.total_gpus < 1 or self.tp_size < 1 or self.gpus_per_node < 1:
            raise ValueError("job parameters must be positive")
        if self.tp_size % self.gpus_per_node and self.gpus_per_node % self.tp_size:
            raise ValueError(
                "tp_size and gpus_per_node must divide one another "
                f"(got tp={self.tp_size}, r={self.gpus_per_node})"
            )
        if self.total_gpus % self.tp_size:
            raise ValueError("total_gpus must be a multiple of tp_size")

    @property
    def nodes_per_group(self) -> int:
        """``m`` -- nodes per TP group."""
        return max(1, -(-self.tp_size // self.gpus_per_node))

    @property
    def groups_needed(self) -> int:
        return self.total_gpus // self.tp_size


@dataclass
class DeploymentPlan:
    """Physical deployment of the HBD line over the DCN (Algorithm 3 output).

    ``order`` lists node ids in HBD (deployment) order: position ``i`` and
    ``i+1`` are HBD neighbours.  ``k`` is the hop count of the K-Hop topology,
    ``nodes_per_tor`` the interleaving factor ``p``.
    """

    order: list[int]
    k: int
    nodes_per_tor: int

    def __post_init__(self) -> None:
        if len(set(self.order)) != len(self.order):
            raise ValueError("deployment order contains duplicate nodes")
        self._position = {node: i for i, node in enumerate(self.order)}

    @property
    def n_nodes(self) -> int:
        return len(self.order)

    def position_of(self, node: int) -> int:
        """Position of ``node`` in deployment (HBD) order."""
        return self._position[node]

    def hbd_neighbors(self, node: int) -> list[int]:
        """Nodes within K hops of ``node`` along the deployment order."""
        pos = self.position_of(node)
        result = []
        for offset in range(-self.k, self.k + 1):
            if offset == 0:
                continue
            idx = pos + offset
            if 0 <= idx < len(self.order):
                result.append(self.order[idx])
        return result

    def edges(self) -> list[tuple[int, int]]:
        """All HBD links implied by the deployment (within K positions)."""
        result = []
        for i, a in enumerate(self.order):
            for j in range(i + 1, min(i + self.k + 1, len(self.order))):
                result.append((a, self.order[j]))
        return result


@dataclass
class OrchestrationResult:
    """Placement produced by one of the orchestration entry points."""

    placement: list[TPGroup]
    satisfied: bool
    constraints_used: int = 0
    method: str = "dcn_free"

    @property
    def placed_groups(self) -> int:
        return len(self.placement)

    def placed_gpus(self, gpus_per_node: int) -> int:
        return sum(len(g) for g in self.placement) * gpus_per_node

    def as_node_lists(self) -> list[list[int]]:
        """Placement as plain lists (for the traffic model)."""
        return [list(g.nodes) for g in self.placement]


# --------------------------------------------------------------------------
# Algorithm 3: deployment strategy
# --------------------------------------------------------------------------
def deployment_strategy(n_nodes: int, k: int, nodes_per_tor: int) -> DeploymentPlan:
    """Interleave physical nodes into ``p`` sub-lines (Algorithm 3).

    Sub-line ``i`` consists of the nodes whose intra-ToR index is ``i``
    (physical ids ``i, i+p, i+2p, ...``); the sub-lines are concatenated so a
    single HBD line covers every node.  HBD neighbours are therefore always
    in *different* ToRs (network distance 3) while ToR-mates occupy the same
    position of different sub-lines -- the property the Fat-Tree placement
    exploits to keep outer-parallel traffic under a ToR.

    Nodes beyond the largest multiple of ``p`` (an incompletely filled ToR)
    are appended at the end of the line.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    if nodes_per_tor < 1:
        raise ValueError("nodes_per_tor must be >= 1")
    p = nodes_per_tor
    l = n_nodes // p
    order: list[int] = []
    for i in range(p):
        for j in range(l):
            order.append(i + j * p)
    for leftover in range(l * p, n_nodes):
        order.append(leftover)
    return DeploymentPlan(order=order, k=k, nodes_per_tor=p)


# --------------------------------------------------------------------------
# Algorithm 2: DCN-free orchestration
# --------------------------------------------------------------------------
def _healthy_runs(
    sequence: Sequence[int], faulty: set[int], k: int
) -> list[list[int]]:
    """Split ``sequence`` into healthy runs bridgeable across < k faults.

    Adjacent healthy entries stay in the same run when fewer than ``k``
    consecutive faulty entries separate them (the backup links of the K-Hop
    topology bridge such gaps); a longer fault run is a breakpoint.
    """
    runs: list[list[int]] = []
    current: list[int] = []
    gap = 0
    for node in sequence:
        if node in faulty:
            gap += 1
            continue
        if current and gap >= k:
            runs.append(current)
            current = []
        current.append(node)
        gap = 0
    if current:
        runs.append(current)
    return runs


def orchestrate_dcn_free(
    sequence: Sequence[int],
    k: int,
    faulty: Iterable[int],
    nodes_per_group: int,
) -> list[TPGroup]:
    """Algorithm 2: place TP groups greedily on healthy HBD segments.

    ``sequence`` is a node sequence in HBD order (the full deployment order or
    a sub-line of it).  Healthy connected components are found by bridging
    fault gaps shorter than ``k``; each component is then chopped into
    consecutive groups of ``nodes_per_group`` nodes.
    """
    if nodes_per_group < 1:
        raise ValueError("nodes_per_group must be >= 1")
    faulty_set = set(faulty)
    placement: list[TPGroup] = []
    for run in _healthy_runs(sequence, faulty_set, k):
        for start in range(0, len(run) - nodes_per_group + 1, nodes_per_group):
            placement.append(TPGroup(nodes=tuple(run[start : start + nodes_per_group])))
    return placement


# --------------------------------------------------------------------------
# Algorithm 4: Fat-Tree placement under constraints
# --------------------------------------------------------------------------
def _expand_faults_to_tor(
    faulty: set[int],
    fat_tree: FatTree,
    domains_under_constraint: int,
) -> set[int]:
    """Apply the TP-group alignment constraint.

    For the first ``domains_under_constraint`` aggregation domains, a faulty
    node contaminates its whole ToR: all ToR-mates are treated as faulty so
    that every sub-line loses the same positions and rank alignment is
    preserved.
    """
    expanded = set(faulty)
    for node in list(faulty):
        if node >= fat_tree.config.n_nodes:
            continue
        if fat_tree.domain_of(node) < domains_under_constraint:
            expanded.update(fat_tree.nodes_in_tor(fat_tree.tor_of(node)))
    return expanded


def placement_fat_tree(
    plan: DeploymentPlan,
    fat_tree: FatTree,
    n_constraints: int,
    faulty: Iterable[int],
    nodes_per_group: int,
) -> list[TPGroup]:
    """Algorithm 4: placement under ``n_constraints`` locality constraints.

    Constraints are consumed in two bands:

    1. the first ``n_maxsubline`` constraints confine TP groups to
       domain-restricted sub-lines (no group crosses an aggregation domain
       and groups stay within one sub-line), one constraint per sub-line;
    2. further constraints apply ToR-alignment of faults, one per
       aggregation domain.
    """
    if n_constraints < 0:
        raise ValueError("n_constraints must be >= 0")
    faulty_set = {f for f in faulty if 0 <= f < fat_tree.config.n_nodes}
    p = fat_tree.config.nodes_per_tor
    d = fat_tree.config.nodes_per_domain
    n_domains = fat_tree.config.n_domains
    subline_len = max(1, d // p)
    n_maxsubline = n_domains * p

    n_subline = min(n_maxsubline, n_constraints)
    n_align = max(0, n_constraints - n_maxsubline)
    n_align = min(n_align, n_domains)

    effective_faults = _expand_faults_to_tor(faulty_set, fat_tree, n_align)

    placement: list[TPGroup] = []
    working = list(plan.order)
    for _ in range(n_subline):
        if not working:
            break
        subline, working = working[:subline_len], working[subline_len:]
        placement.extend(
            orchestrate_dcn_free(subline, plan.k, effective_faults, nodes_per_group)
        )
    if working:
        placement.extend(
            orchestrate_dcn_free(working, plan.k, effective_faults, nodes_per_group)
        )
    return placement


# --------------------------------------------------------------------------
# Algorithm 5 / Algorithm 1: binary search over constraints
# --------------------------------------------------------------------------
def orchestrate_fat_tree(
    plan: DeploymentPlan,
    fat_tree: FatTree,
    faulty: Iterable[int],
    job: JobSpec,
) -> OrchestrationResult:
    """Binary search for the most-constrained placement meeting the job scale.

    Returns the placement computed with the largest number of constraints
    that still yields at least ``job.groups_needed`` TP groups; if even the
    unconstrained placement cannot satisfy the job, the unconstrained
    placement is returned with ``satisfied=False``.
    """
    faulty_set = set(faulty)
    m = job.nodes_per_group
    p = fat_tree.config.nodes_per_tor
    n_domains = fat_tree.config.n_domains
    n_maxsubline = n_domains * p
    high = n_domains + n_maxsubline
    low = 0
    best_constraints: int | None = None

    while low <= high:
        mid = (low + high) // 2
        placement = placement_fat_tree(plan, fat_tree, mid, faulty_set, m)
        if len(placement) >= job.groups_needed:
            best_constraints = mid
            low = mid + 1
        else:
            high = mid - 1

    if best_constraints is None:
        placement = placement_fat_tree(plan, fat_tree, 0, faulty_set, m)
        placement = _order_groups_for_outer_parallelism(placement, fat_tree)
        return OrchestrationResult(
            placement=placement[: job.groups_needed] if placement else [],
            satisfied=False,
            constraints_used=0,
            method="fat_tree",
        )

    placement = placement_fat_tree(plan, fat_tree, best_constraints, faulty_set, m)
    placement = _order_groups_for_outer_parallelism(placement, fat_tree)
    return OrchestrationResult(
        placement=placement[: job.groups_needed],
        satisfied=True,
        constraints_used=best_constraints,
        method="fat_tree",
    )


def _order_groups_for_outer_parallelism(
    placement: list[TPGroup], fat_tree: FatTree
) -> list[TPGroup]:
    """Emit the placement in an order that keeps outer-parallel sets aligned.

    The training framework assigns outer-parallel (DP/CP) sets to consecutive
    groups of the emitted placement, so the scheduler:

    1. buckets groups by their exact ToR-coverage tuple -- groups in the same
       bucket are rank-aligned with each other, so sets formed inside a
       bucket exchange all first-tier traffic under shared ToRs;
    2. emits large buckets first and singleton (misaligned) groups last, so
       that when the job needs fewer groups than are available the
       misaligned leftovers are the ones dropped.
    """
    p = fat_tree.config.nodes_per_tor
    buckets: dict[tuple, list[TPGroup]] = {}
    for group in placement:
        tors = tuple(fat_tree.tor_of(n) for n in group.nodes)
        buckets.setdefault(tors, []).append(group)

    ordered: list[TPGroup] = []
    leftovers: list[TPGroup] = []
    # Largest buckets first; ties broken by coverage for determinism.
    for coverage in sorted(buckets, key=lambda c: (-len(buckets[c]), c)):
        bucket = buckets[coverage]
        aligned_count = (len(bucket) // p) * p
        ordered.extend(bucket[:aligned_count])
        leftovers.extend(bucket[aligned_count:])
    return ordered + leftovers


# --------------------------------------------------------------------------
# Baseline: greedy placement ignoring the DCN
# --------------------------------------------------------------------------
def greedy_placement(
    plan: DeploymentPlan,
    faulty: Iterable[int],
    job: JobSpec,
    seed: int = 0,
) -> OrchestrationResult:
    """The Baseline of section 6.4.

    Nodes are picked along the HBD deployment order starting from a random
    offset (so HBD contiguity of each TP group is respected -- the "first
    permutation that meets the requirements"), but the DCN structure is
    ignored: no sub-line confinement, no ToR alignment, and the emitted group
    order is randomised, so outer-parallel sets pair groups from arbitrary
    ToRs.
    """
    rng = random.Random(seed)
    faulty_set = set(faulty)
    m = job.nodes_per_group
    order = list(plan.order)
    offset = rng.randrange(len(order)) if order else 0
    rotated = order[offset:] + order[:offset]
    placement = orchestrate_dcn_free(rotated, plan.k, faulty_set, m)
    rng.shuffle(placement)
    satisfied = len(placement) >= job.groups_needed
    return OrchestrationResult(
        placement=placement[: job.groups_needed] if satisfied else placement,
        satisfied=satisfied,
        constraints_used=0,
        method="greedy",
    )


# --------------------------------------------------------------------------
# High-level facade
# --------------------------------------------------------------------------
class Orchestrator:
    """Couples the deployment plan, the Fat-Tree and the traffic model."""

    def __init__(
        self,
        n_nodes: int,
        k: int = 2,
        fat_tree_config: FatTreeConfig | None = None,
        volumes: TrafficVolumes | None = None,
    ) -> None:
        self.fat_tree = FatTree(
            fat_tree_config
            or FatTreeConfig(n_nodes=n_nodes, nodes_per_tor=4, tors_per_domain=64)
        )
        if self.fat_tree.config.n_nodes != n_nodes:
            raise ValueError("fat_tree_config.n_nodes must equal n_nodes")
        self.plan = deployment_strategy(
            n_nodes, k, self.fat_tree.config.nodes_per_tor
        )
        self.traffic_model = TrafficModel(self.fat_tree, volumes)

    def place(
        self,
        job: JobSpec,
        faulty: Iterable[int] = (),
        method: str = "optimized",
        seed: int = 0,
    ) -> OrchestrationResult:
        """Place ``job`` with the requested method.

        ``method`` is one of ``"optimized"`` (Algorithm 5), ``"greedy"``
        (baseline) or ``"dcn_free"`` (Algorithm 2 on the deployment order).
        """
        faulty_set = set(faulty)
        if method == "optimized":
            return orchestrate_fat_tree(self.plan, self.fat_tree, faulty_set, job)
        if method == "greedy":
            return greedy_placement(self.plan, faulty_set, job, seed=seed)
        if method == "dcn_free":
            placement = orchestrate_dcn_free(
                self.plan.order, self.plan.k, faulty_set, job.nodes_per_group
            )
            satisfied = len(placement) >= job.groups_needed
            return OrchestrationResult(
                placement=placement[: job.groups_needed] if satisfied else placement,
                satisfied=satisfied,
                method="dcn_free",
            )
        raise ValueError(f"unknown method {method!r}")

    def cross_tor_report(self, result: OrchestrationResult) -> CrossToRReport:
        """Cross-ToR traffic report for a placement."""
        return self.traffic_model.evaluate(result.as_node_lists())

    def place_and_report(
        self,
        job: JobSpec,
        faulty: Iterable[int] = (),
        method: str = "optimized",
        seed: int = 0,
    ) -> tuple[OrchestrationResult, CrossToRReport]:
        """Convenience: place the job and evaluate its cross-ToR traffic."""
        result = self.place(job, faulty, method=method, seed=seed)
        return result, self.cross_tor_report(result)
