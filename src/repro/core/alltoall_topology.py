"""Power-of-two backup-link wiring for AllToAll support (Appendix G.3).

The default K-Hop Ring connects node ``n`` to nodes ``n +- 1 .. n +- K``.
Appendix G proposes an alternative wiring for MoE-style workloads: keep the
one-dimensional arrangement but connect node ``n`` to ``n +- 2^i`` for
``i = 0 .. K-1``.  Binary-Exchange AllToAll partners are always at distances
``2^i``, so every exchange round runs over a direct OCSTrx link (using the
Fast Switch mechanism to hop between partners), without GPU forwarding or
node-level loopback.

The wiring also supports 2-D TP + EP parallelism: TP rings form on the
distance-1 links while EP groups of ``p`` nodes use the ``+-2^i`` links, with
the constraint ``TP_size * EP_size <= R * 2^(K-1)`` for an ``R``-GPU node
with ``K`` OCSTrx bundles (e.g. 64 for a 4-GPU node, 2048 for an 8-GPU node).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import networkx as nx


@dataclass(frozen=True)
class AllToAllTopologyConfig:
    """Parameters of the power-of-two wiring.

    ``n_bundles`` plays the role of ``K``: the node reaches distances
    ``2^0 .. 2^(n_bundles-1)`` in both directions.
    """

    n_nodes: int
    n_bundles: int = 4
    gpus_per_node: int = 4
    ring: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.n_bundles < 1:
            raise ValueError("n_bundles must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def max_reach(self) -> int:
        """Largest single-hop distance provided by the wiring."""
        return 2 ** (self.n_bundles - 1)

    @property
    def max_group_product(self) -> int:
        """Upper bound on ``TP_size * EP_size`` (GPUs) for 2-D parallelism."""
        return self.gpus_per_node * (2 ** (self.n_bundles - 1))


class PowerOfTwoTopology:
    """The ``n +- 2^i`` wiring of Appendix G.3."""

    def __init__(self, config: AllToAllTopologyConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ links
    def link_distances(self) -> list[int]:
        """The set of hop distances covered by direct links."""
        return [2 ** i for i in range(self.config.n_bundles)]

    def neighbors(self, node: int) -> list[int]:
        """Nodes directly reachable from ``node``."""
        self._check(node)
        n = self.config.n_nodes
        result: set[int] = set()
        for distance in self.link_distances():
            if self.config.ring:
                result.add((node + distance) % n)
                result.add((node - distance) % n)
            else:
                if node + distance < n:
                    result.add(node + distance)
                if node - distance >= 0:
                    result.add(node - distance)
        result.discard(node)
        return sorted(result)

    def has_link(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        if a == b:
            return False
        diff = abs(a - b)
        if self.config.ring:
            diff = min(diff, self.config.n_nodes - diff)
        return diff in self.link_distances()

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.config.n_nodes))
        for node in range(self.config.n_nodes):
            for peer in self.neighbors(node):
                g.add_edge(node, peer)
        return g

    # ------------------------------------------------- binary exchange support
    def binary_exchange_rounds(
        self, group_nodes: Sequence[int]
    ) -> list[list[tuple[int, int]]]:
        """Per-round communication pairs of Binary Exchange over ``group_nodes``.

        ``group_nodes`` must have a power-of-two length; round ``k`` pairs the
        member at group index ``i`` with the member at ``i XOR 2^(rounds-k)``.
        Raises ``ValueError`` if any pair lacks a direct link (the group is
        not laid out compatibly with the wiring).
        """
        p = len(group_nodes)
        if p < 1 or (p & (p - 1)) != 0:
            raise ValueError("group size must be a power of two")
        if len(set(group_nodes)) != p:
            raise ValueError("group contains duplicate nodes")
        for node in group_nodes:
            self._check(node)
        rounds = int(math.log2(p)) if p > 1 else 0
        schedule: list[list[tuple[int, int]]] = []
        for k in range(1, rounds + 1):
            mask = 1 << (rounds - k)
            pairs: list[tuple[int, int]] = []
            for index in range(p):
                partner = index ^ mask
                if index < partner:
                    a, b = group_nodes[index], group_nodes[partner]
                    if not self.has_link(a, b):
                        raise ValueError(
                            f"binary exchange needs a link between nodes {a} and {b} "
                            f"(group indices {index} and {partner})"
                        )
                    pairs.append((a, b))
            schedule.append(pairs)
        return schedule

    def supports_binary_exchange(self, group_nodes: Sequence[int]) -> bool:
        """Whether Binary Exchange can run on ``group_nodes`` without forwarding."""
        try:
            self.binary_exchange_rounds(group_nodes)
        except ValueError:
            return False
        return True

    def ep_group(self, start: int, ep_size: int, stride: int = 1) -> list[int]:
        """The ``ep_size`` nodes of an EP group starting at ``start``.

        ``stride`` is the node distance between consecutive EP members (the
        TP group width in nodes when TP and EP are stacked).  Consecutive
        members at stride ``2^j`` keep every exchange distance a power of two,
        which is the layout Figure 24 uses.
        """
        if ep_size < 1:
            raise ValueError("ep_size must be >= 1")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        n = self.config.n_nodes
        members = []
        for i in range(ep_size):
            node = start + i * stride
            if self.config.ring:
                node %= n
            elif node >= n:
                raise ValueError("EP group exceeds the line topology")
            members.append(node)
        return members

    # ------------------------------------------------ 2-D parallelism planning
    def validate_tp_ep(self, tp_size: int, ep_size: int) -> None:
        """Check the ``TP * EP`` constraint of Appendix G.3."""
        if tp_size < 1 or ep_size < 1:
            raise ValueError("tp_size and ep_size must be >= 1")
        product = tp_size * ep_size
        if product > self.config.max_group_product:
            raise ValueError(
                f"TP({tp_size}) x EP({ep_size}) = {product} exceeds the wiring "
                f"limit of {self.config.max_group_product} GPUs "
                f"(R={self.config.gpus_per_node}, bundles={self.config.n_bundles})"
            )
        if ep_size & (ep_size - 1):
            raise ValueError("ep_size must be a power of two for Binary Exchange")

    def plan_tp_ep(
        self, start: int, tp_size: int, ep_size: int
    ) -> dict[str, object]:
        """Lay out one TP x EP block starting at node ``start``.

        Returns the TP node span per EP member plus the Binary Exchange
        schedule between the EP members' lead nodes.
        """
        self.validate_tp_ep(tp_size, ep_size)
        nodes_per_tp = max(1, -(-tp_size // self.config.gpus_per_node))
        ep_leads = self.ep_group(start, ep_size, stride=nodes_per_tp)
        tp_spans = {
            lead: [
                (lead + offset) % self.config.n_nodes
                if self.config.ring
                else lead + offset
                for offset in range(nodes_per_tp)
            ]
            for lead in ep_leads
        }
        schedule = self.binary_exchange_rounds(ep_leads) if ep_size > 1 else []
        return {
            "ep_leads": ep_leads,
            "tp_spans": tp_spans,
            "exchange_schedule": schedule,
            "nodes_per_tp_group": nodes_per_tp,
        }

    # --------------------------------------------------------------- helpers
    def _check(self, node: int) -> None:
        if not 0 <= node < self.config.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.config.n_nodes}-node topology"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        c = self.config
        return (
            f"PowerOfTwoTopology(n={c.n_nodes}, bundles={c.n_bundles}, "
            f"reach={c.max_reach})"
        )
