"""Collective-communication algorithms and cost models.

* :mod:`repro.collectives.cost_model` -- the alpha-beta link/cost abstraction
  shared by all collectives.
* :mod:`repro.collectives.ring_allreduce` -- bandwidth-optimal ring AllReduce
  timing and bus-bandwidth-utilisation model (section 5.2).
* :mod:`repro.collectives.alltoall` -- AllToAll algorithms: ring (no Fast
  Switch), pairwise exchange, Bruck, and the Binary Exchange algorithm the
  paper proposes for InfiniteHBD (Appendix G), including a data-level
  functional simulation used to verify correctness.
"""

from repro.collectives.cost_model import LinkSpec, CollectiveCost
from repro.collectives.ring_allreduce import (
    RingAllReduceModel,
    ring_allreduce_time,
    ring_allreduce_utilization,
)
from repro.collectives.alltoall import (
    AllToAllCost,
    binary_exchange_alltoall,
    binary_exchange_cost,
    bruck_cost,
    pairwise_exchange_alltoall,
    pairwise_cost,
    ring_alltoall_cost,
)

__all__ = [
    "LinkSpec",
    "CollectiveCost",
    "RingAllReduceModel",
    "ring_allreduce_time",
    "ring_allreduce_utilization",
    "AllToAllCost",
    "binary_exchange_alltoall",
    "binary_exchange_cost",
    "bruck_cost",
    "pairwise_exchange_alltoall",
    "pairwise_cost",
    "ring_alltoall_cost",
]
