"""AllToAll algorithms for sparse topologies (Appendix G).

InfiniteHBD's ring topology handles AllToAll poorly (``O(p^2)`` traffic when
messages are relayed around the ring).  Appendix G shows that rewiring the
backup links to distances ``+-2^i`` and exploiting the OCSTrx Fast Switch
mechanism enables the **Binary Exchange** algorithm at ``O(p log p)`` cost
without requiring node-level loopback.

This module provides:

* a *functional* (data-level) implementation of Binary Exchange and pairwise
  exchange so correctness can be property-tested, and
* alpha-beta cost models of ring, pairwise, Bruck and Binary-Exchange
  AllToAll used to regenerate the complexity comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.collectives.cost_model import LinkSpec


# --------------------------------------------------------------------------
# Functional (data level) algorithms
# --------------------------------------------------------------------------
def _check_power_of_two(p: int) -> None:
    if p < 1 or (p & (p - 1)) != 0:
        raise ValueError(f"group size must be a power of two, got {p}")


def binary_exchange_alltoall(blocks: Sequence[Sequence]) -> list[list]:
    """Run the Binary Exchange AllToAll on explicit data blocks.

    ``blocks[i][j]`` is the payload node ``i`` wants to deliver to node ``j``.
    The return value ``result`` satisfies ``result[i][j] == blocks[j][i]``
    (node ``i`` ends up holding every node's payload destined for it, indexed
    by source).

    The exchange proceeds over ``log2(p)`` rounds; in round ``k`` node ``i``
    talks only to ``i XOR 2^(log2(p)-k)``, forwarding every payload whose
    destination lies in the partner's half of the address space -- the
    communication pattern matching the ``+-2^i`` wiring of Appendix G.3.
    """
    p = len(blocks)
    _check_power_of_two(p)
    for i, row in enumerate(blocks):
        if len(row) != p:
            raise ValueError(f"blocks[{i}] must have {p} entries")

    # held[i] maps (source, destination) -> payload currently stored at node i.
    held: list[dict[tuple[int, int], object]] = [
        {(i, dst): blocks[i][dst] for dst in range(p)} for i in range(p)
    ]
    rounds = int(math.log2(p)) if p > 1 else 0
    for k in range(1, rounds + 1):
        bit = rounds - k
        mask = 1 << bit
        new_held: list[dict[tuple[int, int], object]] = [dict() for _ in range(p)]
        for i in range(p):
            partner = i ^ mask
            for (src, dst), payload in held[i].items():
                if (dst >> bit) & 1 == (partner >> bit) & 1:
                    new_held[partner][(src, dst)] = payload
                else:
                    new_held[i][(src, dst)] = payload
        held = new_held

    result: list[list] = [[None] * p for _ in range(p)]
    for i in range(p):
        for (src, dst), payload in held[i].items():
            if dst != i:
                raise RuntimeError(
                    "binary exchange left a payload at the wrong node "
                    f"(node {i}, destination {dst})"
                )
            result[i][src] = payload
    return result


def pairwise_exchange_alltoall(blocks: Sequence[Sequence]) -> list[list]:
    """Pairwise-exchange AllToAll (reference algorithm, needs full mesh).

    In round ``k`` (1..p-1) node ``i`` exchanges directly with ``i XOR k``;
    requires direct connectivity between every pair, so it is listed only as
    the full-mesh reference the paper compares against.
    """
    p = len(blocks)
    _check_power_of_two(p)
    for i, row in enumerate(blocks):
        if len(row) != p:
            raise ValueError(f"blocks[{i}] must have {p} entries")
    result: list[list] = [[None] * p for _ in range(p)]
    for i in range(p):
        result[i][i] = blocks[i][i]
    for k in range(1, p):
        for i in range(p):
            partner = i ^ k
            result[partner][i] = blocks[i][partner]
    return result


# --------------------------------------------------------------------------
# Cost models
# --------------------------------------------------------------------------
@dataclass
class AllToAllCost:
    """Cost of one AllToAll algorithm for a given group and block size."""

    algorithm: str
    group_size: int
    block_bytes: float
    steps: int
    bytes_per_step: float
    time_s: float
    requires_fast_switch: bool = False
    requires_gpu_forwarding: bool = False

    @property
    def total_bytes_per_node(self) -> float:
        return self.steps * self.bytes_per_step


def ring_alltoall_cost(
    group_size: int, block_bytes: float, link: LinkSpec
) -> AllToAllCost:
    """AllToAll relayed around the ring without Fast Switch: O(p^2).

    Every block travels ``p/2`` hops on average, so each node forwards
    ``~p^2/2`` blocks worth of traffic over its two ring links.
    """
    p = group_size
    if p < 1:
        raise ValueError("group_size must be >= 1")
    if p == 1:
        return AllToAllCost("ring", p, block_bytes, 0, 0.0, 0.0)
    steps = p - 1
    # Per step each node forwards on the order of p/2 blocks (own + relayed).
    bytes_per_step = block_bytes * p / 2.0
    time_s = steps * link.transfer_time_s(bytes_per_step)
    return AllToAllCost(
        algorithm="ring",
        group_size=p,
        block_bytes=block_bytes,
        steps=steps,
        bytes_per_step=bytes_per_step,
        time_s=time_s,
        requires_gpu_forwarding=True,
    )


def pairwise_cost(
    group_size: int, block_bytes: float, link: LinkSpec
) -> AllToAllCost:
    """Pairwise exchange over a full mesh: p-1 steps of one block each."""
    p = group_size
    if p < 1:
        raise ValueError("group_size must be >= 1")
    if p == 1:
        return AllToAllCost("pairwise", p, block_bytes, 0, 0.0, 0.0)
    steps = p - 1
    time_s = steps * link.transfer_time_s(block_bytes)
    return AllToAllCost(
        algorithm="pairwise",
        group_size=p,
        block_bytes=block_bytes,
        steps=steps,
        bytes_per_step=block_bytes,
        time_s=time_s,
    )


def bruck_cost(
    group_size: int, block_bytes: float, link: LinkSpec
) -> AllToAllCost:
    """Bruck algorithm: log2(p) steps moving p/2 blocks each.

    Needs node-level loopback / local rotation, which InfiniteHBD does not
    provide -- listed as the theoretical reference the paper compares Binary
    Exchange against for small ``p``.
    """
    p = group_size
    _check_power_of_two(p)
    if p == 1:
        return AllToAllCost("bruck", p, block_bytes, 0, 0.0, 0.0)
    steps = int(math.ceil(math.log2(p)))
    bytes_per_step = block_bytes * p / 2.0
    time_s = steps * link.transfer_time_s(bytes_per_step)
    return AllToAllCost(
        algorithm="bruck",
        group_size=p,
        block_bytes=block_bytes,
        steps=steps,
        bytes_per_step=bytes_per_step,
        time_s=time_s,
    )


def binary_exchange_cost(
    group_size: int,
    block_bytes: float,
    link: LinkSpec,
    reconfiguration_us: float = 70.0,
    overlap_reconfiguration: bool = True,
) -> AllToAllCost:
    """Binary Exchange on InfiniteHBD: log2(p) steps of p/2 blocks each.

    Each round the OCSTrx must switch to a different partner; the 60-80 us
    reconfiguration can be overlapped with computation
    (``overlap_reconfiguration=True``, the paper's assumption) or added to
    the critical path.
    """
    p = group_size
    _check_power_of_two(p)
    if p == 1:
        return AllToAllCost("binary_exchange", p, block_bytes, 0, 0.0, 0.0,
                            requires_fast_switch=True)
    steps = int(math.ceil(math.log2(p)))
    bytes_per_step = block_bytes * p / 2.0
    per_step = link.transfer_time_s(bytes_per_step)
    if not overlap_reconfiguration:
        per_step += reconfiguration_us * 1e-6
    time_s = steps * per_step
    return AllToAllCost(
        algorithm="binary_exchange",
        group_size=p,
        block_bytes=block_bytes,
        steps=steps,
        bytes_per_step=bytes_per_step,
        time_s=time_s,
        requires_fast_switch=True,
    )


def complexity_comparison(
    group_sizes: Sequence[int],
    block_bytes: float,
    link: LinkSpec,
) -> list[dict[str, float]]:
    """Ring vs Binary Exchange vs Bruck vs pairwise across group sizes."""
    rows: list[dict[str, float]] = []
    for p in group_sizes:
        row: dict[str, float] = {"group_size": p}
        row["ring_s"] = ring_alltoall_cost(p, block_bytes, link).time_s
        row["binary_exchange_s"] = binary_exchange_cost(p, block_bytes, link).time_s
        row["bruck_s"] = bruck_cost(p, block_bytes, link).time_s
        row["pairwise_s"] = pairwise_cost(p, block_bytes, link).time_s
        rows.append(row)
    return rows
