"""Ring AllReduce timing and bandwidth-utilisation model (section 5.2).

The bandwidth-optimal ring AllReduce over ``n`` ranks performs a
reduce-scatter followed by an all-gather: ``2 * (n - 1)`` steps, each moving
``S / n`` bytes per rank, for a total of ``2 * S * (n - 1) / n`` bytes sent by
every rank.

The paper's small-cluster evaluation reports the *ring bandwidth utilisation*
-- the per-rank bus bandwidth achieved by a large-message AllReduce divided
by the physical link rate.  On the PCIe-4 experimental GPUs the measured
utilisation is 77.11% for 16 GPUs and 77.26% for 32 GPUs (nearly flat with
scale); an H100 DGX with NVLink switches reaches 81.77% inside one 8-GPU
node.  The alpha-beta model below reproduces these numbers through the link's
``protocol_efficiency`` with a small latency-driven dependence on ring size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.cost_model import (
    CollectiveCost,
    LinkSpec,
    NVLINK_SWITCH_LINK,
    PCIE4_EXPERIMENTAL_LINK,
)


def ring_allreduce_time(
    group_size: int, message_bytes: float, link: LinkSpec
) -> CollectiveCost:
    """Alpha-beta time of a ring AllReduce."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if group_size == 1 or message_bytes == 0:
        return CollectiveCost(
            algorithm="ring_allreduce",
            group_size=group_size,
            message_bytes=message_bytes,
            steps=0,
            total_bytes_on_wire=0.0,
            time_s=0.0,
        )
    steps = 2 * (group_size - 1)
    chunk = message_bytes / group_size
    time_s = steps * link.transfer_time_s(chunk)
    per_rank_wire = steps * chunk
    return CollectiveCost(
        algorithm="ring_allreduce",
        group_size=group_size,
        message_bytes=message_bytes,
        steps=steps,
        total_bytes_on_wire=per_rank_wire * group_size,
        time_s=time_s,
    )


def ring_allreduce_utilization(
    group_size: int, message_bytes: float, link: LinkSpec
) -> float:
    """Per-rank bus-bandwidth utilisation of the ring AllReduce (0..1)."""
    cost = ring_allreduce_time(group_size, message_bytes, link)
    if cost.time_s == 0:
        return 0.0
    return cost.bus_bandwidth_bytes_per_s / link.bandwidth_bytes_per_s


@dataclass
class RingAllReduceModel:
    """Convenience driver that regenerates the section 5.2 comparison."""

    message_bytes: float = 1 << 30  # 1 GiB "large packet" regime
    ring_link: LinkSpec = PCIE4_EXPERIMENTAL_LINK
    nvlink_link: LinkSpec = NVLINK_SWITCH_LINK

    def utilization(self, group_size: int) -> float:
        """Ring AllReduce utilisation on the experimental (PCIe-4) ring."""
        return ring_allreduce_utilization(group_size, self.message_bytes, self.ring_link)

    def nvlink_utilization(self, group_size: int = 8) -> float:
        """NVLink-switch DGX utilisation reference point."""
        return ring_allreduce_utilization(group_size, self.message_bytes, self.nvlink_link)

    def small_packet_latency_advantage(
        self, message_bytes: float = 64 * 1024
    ) -> float:
        """Latency reduction of direct GPU-GPU links versus a switched hop.

        For small packets the paper reports ~13% lower latency thanks to
        removing the NVLink-switch hop; here the advantage is the relative
        difference in a single small-message transfer time between a direct
        link and a switched path with an extra forwarding hop.
        """
        direct = LinkSpec(
            bandwidth_gbps=self.ring_link.bandwidth_gbps,
            latency_us=self.ring_link.latency_us,
            protocol_efficiency=self.ring_link.protocol_efficiency,
        )
        switched = LinkSpec(
            bandwidth_gbps=self.ring_link.bandwidth_gbps,
            latency_us=self.ring_link.latency_us * 1.18,
            protocol_efficiency=self.ring_link.protocol_efficiency,
        )
        t_direct = direct.transfer_time_s(message_bytes)
        t_switched = switched.transfer_time_s(message_bytes)
        if t_switched == 0:
            return 0.0
        return (t_switched - t_direct) / t_switched

    def section52_summary(self) -> dict[str, float]:
        """The three headline utilisation numbers of section 5.2."""
        return {
            "ring_16_gpu_utilization": self.utilization(16),
            "ring_32_gpu_utilization": self.utilization(32),
            "nvlink_8_gpu_utilization": self.nvlink_utilization(8),
        }
