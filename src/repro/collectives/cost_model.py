"""Alpha-beta cost model for collective communication.

All collective timing in this repository uses the classic alpha-beta model:
sending a message of ``m`` bytes over a link costs
``alpha + m / effective_bandwidth`` seconds, where ``alpha`` is the per-hop
startup latency and the effective bandwidth is the link's peak bandwidth
scaled by a protocol-efficiency factor (PCIe / Ethernet framing, flow
control, NCCL protocol overhead, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One point-to-point link in the alpha-beta model.

    Attributes
    ----------
    bandwidth_gbps:
        Peak line rate in gigabits per second.
    latency_us:
        Per-message startup latency (``alpha``) in microseconds.
    protocol_efficiency:
        Fraction of the line rate achievable by the payload (0..1].
    """

    bandwidth_gbps: float
    latency_us: float = 2.0
    protocol_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")
        if not 0.0 < self.protocol_efficiency <= 1.0:
            raise ValueError("protocol_efficiency must be in (0, 1]")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    @property
    def effective_bytes_per_s(self) -> float:
        return self.bandwidth_bytes_per_s * self.protocol_efficiency

    @property
    def alpha_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_time_s(self, message_bytes: float) -> float:
        """alpha-beta time to move ``message_bytes`` over this link."""
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if message_bytes == 0:
            return 0.0
        return self.alpha_s + message_bytes / self.effective_bytes_per_s


#: HBD link of one InfiniteHBD GPU: 8 x 800G OCSTrx = 6.4 Tbps.
INFINITEHBD_GPU_LINK = LinkSpec(bandwidth_gbps=6400.0, latency_us=2.0,
                                protocol_efficiency=0.95)

#: DCN NIC (NVIDIA ConnectX-7 class, 400 Gbps).
DCN_NIC_LINK = LinkSpec(bandwidth_gbps=400.0, latency_us=5.0,
                        protocol_efficiency=0.92)

#: PCIe-4 based experimental GPU of the section 5.2 mini-cluster (96 lanes).
PCIE4_EXPERIMENTAL_LINK = LinkSpec(bandwidth_gbps=96 * 16.0, latency_us=3.0,
                                   protocol_efficiency=0.79)

#: NVLink-switch path inside an H100 DGX node.
NVLINK_SWITCH_LINK = LinkSpec(bandwidth_gbps=3600.0, latency_us=2.3,
                              protocol_efficiency=0.83)


@dataclass
class CollectiveCost:
    """Timing result of a collective algorithm."""

    algorithm: str
    group_size: int
    message_bytes: float
    steps: int
    total_bytes_on_wire: float
    time_s: float

    @property
    def algorithm_bandwidth_bytes_per_s(self) -> float:
        """Message size over time (the "algbw" convention)."""
        if self.time_s == 0:
            return 0.0
        return self.message_bytes / self.time_s

    @property
    def bus_bandwidth_bytes_per_s(self) -> float:
        """Per-rank wire traffic over time (the "busbw" convention)."""
        if self.time_s == 0 or self.group_size == 0:
            return 0.0
        return (self.total_bytes_on_wire / self.group_size) / self.time_s
