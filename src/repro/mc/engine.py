"""Vectorized multi-seed replay of trace batches against one architecture.

:func:`replay_batch` is the batched sibling of
:func:`repro.simulation.cluster.replay_intervals`: it replays every seed of
a :class:`~repro.mc.batch.TraceBatch` in one numpy pass instead of N Python
sweeps.  The pipeline:

1. segmented cumulative sums over the stacked event log give each seed's
   faulty-node count after every event;
2. the architecture's fault-count kernel (:mod:`repro.mc.kernels`) turns
   per-(seed, domain) count transitions into usable-GPU deltas via table
   gathers -- one stable argsort groups every (seed, domain) pair at once;
3. coincident events collapse to the last record per (seed, time) boundary
   and ``np.searchsorted`` slices the merged boundaries back into per-seed
   interval arrays.

Every per-seed result is **bit-for-bit** the scalar
``replay_intervals`` output for that seed: interval boundaries are the same
floats the scalar sweep produces, integer capacity arithmetic is exact, and
the per-seed aggregates replicate the scalar left-fold summations with
``np.cumsum`` (sequential, unlike pairwise ``np.sum``) and the exact
quantile / job-scale walks with lexsort + ``searchsorted``.  Architectures
without a count decomposition (InfiniteHBD) fall back to the exact scalar
replay per seed, so ``replay_batch`` is total over the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.hbd.base import HBDArchitecture
from repro.mc.batch import TraceBatch
from repro.mc.kernels import AdditiveKernel, HealthyGroupsKernel, kernel_for
from repro.simulation.cluster import IntervalSeries, replay_intervals

_IntArray = NDArray[np.int64]
_FloatArray = NDArray[np.float64]


def _segmented_cumsum(values: _IntArray, offsets: _IntArray) -> _IntArray:
    """Cumulative sum restarted at every segment boundary."""
    if len(values) == 0:
        return np.zeros(0, dtype=np.int64)
    cumulative = np.cumsum(values)
    counts = np.diff(offsets)
    base = np.zeros(len(counts), dtype=np.int64)
    starts = offsets[:-1]
    nonzero = starts > 0
    base[nonzero] = cumulative[starts[nonzero] - 1]
    result: _IntArray = cumulative - np.repeat(base, counts)
    return result


def _domain_transitions(
    seed_of_event: _IntArray, domains: _IntArray, kinds: _IntArray, n_domains: int
) -> tuple[_IntArray, _IntArray, _IntArray, _IntArray, _IntArray]:
    """Per-(seed, domain) fault counts around every in-domain event.

    Returns ``(positions, domains_sorted, kinds_sorted, before, after)``
    where ``positions`` maps each row back into the original event order.
    One stable argsort on the composite (seed, domain) key groups all pairs
    while preserving time order inside each group.
    """
    in_domain = np.flatnonzero(domains >= 0)
    if len(in_domain) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty, empty, empty
    key = seed_of_event[in_domain] * np.int64(n_domains) + domains[in_domain]
    order = np.argsort(key, kind="stable")
    positions = in_domain[order]
    key_sorted = key[order]
    kinds_sorted = kinds[positions]
    cumulative = np.cumsum(kinds_sorted)
    new_group = np.empty(len(order), dtype=bool)
    new_group[0] = True
    new_group[1:] = key_sorted[1:] != key_sorted[:-1]
    group_id = np.cumsum(new_group) - 1
    group_start = np.flatnonzero(new_group)
    carried = np.where(group_start > 0, cumulative[group_start - 1], 0)
    after: _IntArray = cumulative - carried[group_id]
    before: _IntArray = after - kinds_sorted
    return positions, domains[positions], kinds_sorted, before, after


def _usable_after_events(
    kernel: AdditiveKernel | HealthyGroupsKernel,
    seed_of_event: _IntArray,
    node_ids: _IntArray,
    kinds: _IntArray,
    offsets: _IntArray,
) -> _IntArray:
    """Usable-GPU level after each event, per seed."""
    n_events = len(node_ids)
    domains = kernel.domain_of_node[node_ids] if n_events else np.zeros(0, np.int64)
    positions, domains_sorted, kinds_sorted, before, after = _domain_transitions(
        seed_of_event, domains, kinds, max(kernel.n_domains, 1)
    )
    delta = np.zeros(n_events, dtype=np.int64)
    if len(positions):
        if isinstance(kernel, AdditiveKernel):
            table_base = kernel.table_offset_of_domain[domains_sorted]
            delta[positions] = (
                kernel.table_flat[table_base + after]
                - kernel.table_flat[table_base + before]
            )
        else:
            healthy_delta = np.zeros(len(positions), dtype=np.int64)
            healthy_delta[(kinds_sorted > 0) & (before == 0)] = -1
            healthy_delta[(kinds_sorted < 0) & (after == 0)] = 1
            delta[positions] = healthy_delta
    if isinstance(kernel, AdditiveKernel):
        return kernel.base_usable + _segmented_cumsum(delta, offsets)
    healthy = kernel.n_domains + _segmented_cumsum(delta, offsets)
    usable: _IntArray = (healthy // kernel.group_size) * kernel.tp_size
    return usable


def _weighted_quantile_cols(
    values: _FloatArray, weights: _FloatArray, q: float
) -> float:
    """Vectorized twin of :func:`repro.analysis.cdf.weighted_quantile`."""
    n = len(values)
    if n == 0:
        return 0.0
    order = np.lexsort((weights, values))
    values_sorted = values[order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1]
    if total <= 0:
        return float(values_sorted[0])
    index = int(np.searchsorted(cumulative, q * total, side="left"))
    return float(values_sorted[min(index, n - 1)])


@dataclass(frozen=True, eq=False)
class BatchSeries:
    """Per-seed interval replay results, stacked (the multi-seed IntervalSeries).

    The five per-interval columns concatenate every seed's series;
    ``interval_offsets[i]:interval_offsets[i+1]`` is seed ``i``'s slice.
    Aggregate methods return one value per seed, each bit-for-bit what the
    corresponding :class:`~repro.simulation.cluster.IntervalSeries` property
    computes; :meth:`series_for_seed` materialises a seed's actual
    ``IntervalSeries`` for direct comparison or downstream scalar use.
    """

    starts_hours: _FloatArray
    ends_hours: _FloatArray
    waste_ratios: _FloatArray
    usable_gpus: _IntArray
    faulty_gpus: _IntArray
    interval_offsets: _IntArray
    total_gpus: int
    seeds: tuple[int, ...]

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)

    def __len__(self) -> int:
        return len(self.starts_hours)

    @classmethod
    def from_interval_series(
        cls, series: Sequence[IntervalSeries], seeds: Sequence[int] | None = None
    ) -> BatchSeries:
        """Stack scalar per-seed series (the exact-fallback constructor)."""
        if not series:
            raise ValueError("at least one series is required")
        total_gpus = series[0].total_gpus
        for entry in series:
            if entry.total_gpus != total_gpus:
                raise ValueError("all series must share total_gpus")
        offsets = np.zeros(len(series) + 1, dtype=np.int64)
        np.cumsum([len(entry) for entry in series], out=offsets[1:])
        return cls(
            starts_hours=_concat([s.starts_hours for s in series], np.float64),
            ends_hours=_concat([s.ends_hours for s in series], np.float64),
            waste_ratios=_concat([s.waste_ratios for s in series], np.float64),
            usable_gpus=_concat([s.usable_gpus for s in series], np.int64),
            faulty_gpus=_concat([s.faulty_gpus for s in series], np.int64),
            interval_offsets=offsets,
            total_gpus=total_gpus,
            seeds=tuple(seeds) if seeds is not None else tuple(range(len(series))),
        )

    # ------------------------------------------------------------ per seed
    def _bounds(self, index: int) -> tuple[int, int]:
        return int(self.interval_offsets[index]), int(self.interval_offsets[index + 1])

    def series_for_seed(self, index: int) -> IntervalSeries:
        """Seed ``index``'s scalar :class:`IntervalSeries` (exact floats)."""
        lo, hi = self._bounds(index)
        return IntervalSeries(
            starts_hours=self.starts_hours[lo:hi].tolist(),
            ends_hours=self.ends_hours[lo:hi].tolist(),
            waste_ratios=self.waste_ratios[lo:hi].tolist(),
            usable_gpus=self.usable_gpus[lo:hi].tolist(),
            faulty_gpus=self.faulty_gpus[lo:hi].tolist(),
            total_gpus=self.total_gpus,
        )

    def total_hours_for_seed(self, index: int) -> float:
        lo, hi = self._bounds(index)
        if lo == hi:
            return 0.0
        return float(self.ends_hours[hi - 1] - self.starts_hours[lo])

    # ----------------------------------------------------- aggregate columns
    def mean_waste_ratios(self) -> list[float]:
        """Per-seed exact time-averaged waste ratio."""
        result = []
        for index in range(self.n_seeds):
            lo, hi = self._bounds(index)
            total = self.total_hours_for_seed(index)
            if total == 0:
                result.append(0.0)
                continue
            weighted = self.waste_ratios[lo:hi] * (
                self.ends_hours[lo:hi] - self.starts_hours[lo:hi]
            )
            # cumsum is a sequential left fold -- bit-for-bit the scalar sum().
            result.append(float(np.cumsum(weighted)[-1] / total))
        return result

    def waste_ratio_quantiles(self, q: float) -> list[float]:
        """Per-seed exact duration-weighted waste-ratio quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        result = []
        for index in range(self.n_seeds):
            lo, hi = self._bounds(index)
            durations = self.ends_hours[lo:hi] - self.starts_hours[lo:hi]
            result.append(
                _weighted_quantile_cols(self.waste_ratios[lo:hi], durations, q)
            )
        return result

    def p99_waste_ratios(self) -> list[float]:
        return self.waste_ratio_quantiles(0.99)

    def min_usable_gpus(self) -> list[int]:
        result = []
        for index in range(self.n_seeds):
            lo, hi = self._bounds(index)
            result.append(0 if lo == hi else int(self.usable_gpus[lo:hi].min()))
        return result

    def supported_job_scales(self, availability: float = 1.0) -> list[int]:
        """Per-seed largest job scale available ``availability`` of the time."""
        if not 0.0 < availability <= 1.0:
            raise ValueError("availability must be in (0, 1]")
        result = []
        for index in range(self.n_seeds):
            lo, hi = self._bounds(index)
            if lo == hi:
                result.append(0)
                continue
            usable = self.usable_gpus[lo:hi]
            if availability == 1.0:
                result.append(int(usable.min()))
                continue
            durations = self.ends_hours[lo:hi] - self.starts_hours[lo:hi]
            order = np.lexsort((durations, usable))
            usable_sorted = usable[order]
            cumulative = np.cumsum(durations[order])
            budget = (1.0 - availability) * self.total_hours_for_seed(index)
            position = int(
                np.searchsorted(cumulative, budget * (1.0 + 1e-12), side="right")
            )
            result.append(int(usable_sorted[min(position, len(usable_sorted) - 1)]))
        return result

    def fault_waiting_rates(self, job_gpus: int) -> list[float]:
        """Per-seed exact fraction of time ``job_gpus`` cannot run."""
        result = []
        for index in range(self.n_seeds):
            lo, hi = self._bounds(index)
            total = self.total_hours_for_seed(index)
            if total == 0:
                result.append(0.0)
                continue
            durations = self.ends_hours[lo:hi] - self.starts_hours[lo:hi]
            waiting = durations * (self.usable_gpus[lo:hi] < job_gpus)
            result.append(float(np.cumsum(waiting)[-1] / total))
        return result


def _concat(
    parts: Sequence[Sequence[float] | Sequence[int]], dtype: type
) -> NDArray[np.float64] | NDArray[np.int64]:
    arrays = [np.asarray(part, dtype=dtype) for part in parts]
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(arrays)


def replay_batch(
    architecture: HBDArchitecture, batch: TraceBatch, tp_size: int
) -> BatchSeries:
    """Replay every seed of ``batch`` against ``architecture`` at ``tp_size``.

    One vectorized pass when the architecture exposes a fault-count kernel;
    exact scalar replay per seed otherwise.  Either way every per-seed
    result is bit-for-bit the scalar ``replay_intervals`` output.
    """
    if batch.gpus_per_node != architecture.gpus_per_node:
        raise ValueError(
            f"batch GPUs/node ({batch.gpus_per_node}) must match the "
            f"architecture ({architecture.gpus_per_node})"
        )
    kernel = kernel_for(architecture, batch.n_nodes, tp_size)
    if kernel is None:
        scalar = []
        for index in range(batch.n_seeds):
            series = replay_intervals(
                architecture, batch.timeline_for_seed(index), tp_size
            )
            assert isinstance(series, IntervalSeries)
            scalar.append(series)
        return BatchSeries.from_interval_series(scalar, seeds=batch.seeds)
    return _replay_batch_vectorized(architecture, batch, tp_size, kernel)


def _replay_batch_vectorized(
    architecture: HBDArchitecture,
    batch: TraceBatch,
    tp_size: int,
    kernel: AdditiveKernel | HealthyGroupsKernel,
) -> BatchSeries:
    offsets = batch.event_offsets
    n_seeds = batch.n_seeds
    duration = batch.duration_hours
    total_gpus = architecture.total_gpus(batch.n_nodes)

    times: _FloatArray = batch.log["time"]
    node_ids: _IntArray = batch.log["node"]
    kinds: _IntArray = batch.log["kind"].astype(np.int64)
    n_events = len(batch.log)
    counts = np.diff(offsets)
    seed_of_event = np.repeat(np.arange(n_seeds, dtype=np.int64), counts)

    faulty_after = _segmented_cumsum(kinds, offsets)
    usable_after = _usable_after_events(
        kernel, seed_of_event, node_ids, kinds, offsets
    )

    # Collapse coincident events: the state that holds after a boundary is
    # the last record at that (seed, time).  Normalization guarantees no
    # record sits at or beyond the trace end.
    if n_events:
        is_last = np.empty(n_events, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = (times[1:] != times[:-1]) | (
            seed_of_event[1:] != seed_of_event[:-1]
        )
        boundary_time = times[is_last]
        boundary_faulty = faulty_after[is_last]
        boundary_usable = usable_after[is_last]
        boundary_seed = seed_of_event[is_last]
    else:
        boundary_time = np.zeros(0, dtype=np.float64)
        boundary_faulty = np.zeros(0, dtype=np.int64)
        boundary_usable = np.zeros(0, dtype=np.int64)
        boundary_seed = np.zeros(0, dtype=np.int64)

    boundary_offsets = np.searchsorted(
        boundary_seed, np.arange(n_seeds + 1, dtype=np.int64)
    )
    boundary_counts = np.diff(boundary_offsets)

    # A seed gets a lead interval from t=0 in the base (zero-fault) state
    # unless its first boundary already sits at t=0.
    lead = np.ones(n_seeds, dtype=np.int64)
    has_boundary = boundary_counts > 0
    first_time = np.zeros(n_seeds, dtype=np.float64)
    first_time[has_boundary] = boundary_time[boundary_offsets[:-1][has_boundary]]
    lead[has_boundary & (first_time == 0.0)] = 0

    out_offsets = np.zeros(n_seeds + 1, dtype=np.int64)
    np.cumsum(boundary_counts + lead, out=out_offsets[1:])
    n_intervals = int(out_offsets[-1])

    starts = np.empty(n_intervals, dtype=np.float64)
    fault_counts = np.empty(n_intervals, dtype=np.int64)
    usable = np.empty(n_intervals, dtype=np.int64)

    lead_positions = out_offsets[:-1][lead == 1]
    starts[lead_positions] = 0.0
    fault_counts[lead_positions] = 0
    usable[lead_positions] = kernel.base_usable

    if len(boundary_seed):
        destinations = (
            np.arange(len(boundary_seed), dtype=np.int64)
            - np.repeat(boundary_offsets[:-1], boundary_counts)
            + np.repeat(out_offsets[:-1] + lead, boundary_counts)
        )
        starts[destinations] = boundary_time
        fault_counts[destinations] = boundary_faulty
        usable[destinations] = boundary_usable

    ends = np.empty(n_intervals, dtype=np.float64)
    ends[:-1] = starts[1:]
    ends[out_offsets[1:] - 1] = duration

    faulty_gpus = fault_counts * np.int64(batch.gpus_per_node)
    if total_gpus:
        # int64 arithmetic then one float64 division: IEEE-identical to the
        # scalar WasteBreakdown's python int / int true division.
        waste = (total_gpus - faulty_gpus - usable) / float(total_gpus)
    else:
        waste = np.zeros(n_intervals, dtype=np.float64)

    return BatchSeries(
        starts_hours=starts,
        ends_hours=ends,
        waste_ratios=waste,
        usable_gpus=usable,
        faulty_gpus=faulty_gpus,
        interval_offsets=out_offsets,
        total_gpus=total_gpus,
        seeds=batch.seeds,
    )


__all__ = [
    "BatchSeries",
    "replay_batch",
]
