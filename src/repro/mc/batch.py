"""Seed-stacked trace batches for the vectorized Monte-Carlo engine.

A :class:`TraceBatch` is the multi-seed sibling of one
:class:`~repro.faults.timeline.IntervalTimeline`: the normalized columnar
event logs (:mod:`repro.faults.events`) of ``n_seeds`` traces over the same
cluster, concatenated into one structured array with per-seed offsets.  The
batched replay (:func:`repro.mc.engine.replay_batch`) consumes the whole
block in one vectorized pass; :meth:`TraceBatch.timeline_for_seed` recovers
any single seed's exact scalar timeline (bit-for-bit the one
``IntervalTimeline.from_trace`` would have produced from the same log), so
per-seed results can always be cross-checked against the scalar engines.

:func:`sample_trace_batch` draws synthetic batches directly in columnar
form: one seeded ``numpy`` generator produces the whole ``(seeds, events)``
block (start times, durations, node ids) in three batched draws -- an
i.i.d.-renewal fault model for Monte-Carlo studies and benchmarks.  The
experiment runner does *not* use it: runner seeds replay the calibrated
AR(1) synthetic generator per seed (via :meth:`TraceBatch.from_timelines`)
so ``num_seeds=1`` stays bit-for-bit the existing scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.faults.events import EVENT_DTYPE, ShmEventLog, _log_from_runs, shm_available
from repro.faults.timeline import IntervalTimeline, intervals_from_event_log
from repro.faults.trace import HOURS_PER_DAY


@dataclass(frozen=True, eq=False)
class TraceBatch:
    """``n_seeds`` columnar event logs over one cluster, stacked.

    ``log`` holds the per-seed normalized event logs back to back;
    ``event_offsets[i]:event_offsets[i+1]`` is seed ``i``'s slice.  Treat
    the arrays as immutable -- slices are shared zero-copy with the per-seed
    timelines this batch hands out.
    """

    log: NDArray[np.void]
    event_offsets: NDArray[np.int64]
    n_nodes: int
    gpus_per_node: int
    duration_hours: float
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if len(self.event_offsets) != len(self.seeds) + 1:
            raise ValueError("event_offsets must have n_seeds + 1 entries")
        if len(self.log) != int(self.event_offsets[-1]):
            raise ValueError("event_offsets do not cover the event log")

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)

    @classmethod
    def from_timelines(
        cls,
        timelines: Sequence[IntervalTimeline],
        seeds: Sequence[int] | None = None,
    ) -> TraceBatch:
        """Stack per-seed scalar timelines (all over the same cluster).

        Each timeline contributes its canonical event log, so
        :meth:`timeline_for_seed` round-trips every seed exactly.
        """
        if not timelines:
            raise ValueError("at least one timeline is required")
        first = timelines[0]
        seed_ids = tuple(seeds) if seeds is not None else tuple(range(len(timelines)))
        if len(seed_ids) != len(timelines):
            raise ValueError("seeds must match the number of timelines")
        for timeline in timelines:
            if timeline.n_nodes != first.n_nodes:
                raise ValueError("all timelines must share n_nodes")
            if timeline.gpus_per_node != first.gpus_per_node:
                raise ValueError("all timelines must share gpus_per_node")
            if timeline.duration_hours != first.duration_hours:
                raise ValueError("all timelines must share the trace duration")
        logs = [timeline.event_log for timeline in timelines]
        offsets = np.zeros(len(logs) + 1, dtype=np.int64)
        np.cumsum([len(log) for log in logs], out=offsets[1:])
        return cls(
            log=np.concatenate(logs) if logs else np.empty(0, dtype=EVENT_DTYPE),
            event_offsets=offsets,
            n_nodes=first.n_nodes,
            gpus_per_node=first.gpus_per_node,
            duration_hours=first.duration_hours,
            seeds=seed_ids,
        )

    def event_log_for_seed(self, index: int) -> NDArray[np.void]:
        """Seed ``index``'s normalized event log (zero-copy slice)."""
        start = int(self.event_offsets[index])
        end = int(self.event_offsets[index + 1])
        return self.log[start:end]

    def timeline_for_seed(self, index: int) -> IntervalTimeline:
        """Seed ``index``'s exact scalar timeline (shares this batch's log)."""
        log = self.event_log_for_seed(index)
        timeline = IntervalTimeline(
            intervals=intervals_from_event_log(log, self.duration_hours),
            n_nodes=self.n_nodes,
            gpus_per_node=self.gpus_per_node,
        )
        timeline.__dict__["event_log"] = log
        return timeline


@dataclass(frozen=True)
class BatchTraceConfig:
    """Knobs for :func:`sample_trace_batch` (i.i.d.-renewal fault model).

    Defaults mirror the Appendix A cluster shape
    (:class:`~repro.faults.synthetic.SyntheticTraceConfig`); the model here
    is deliberately simpler -- independent fault arrivals with exponential
    repair times -- because the whole block must come out of one batched
    draw.
    """

    n_seeds: int
    n_nodes: int = 400
    duration_days: int = 348
    gpus_per_node: int = 8
    mean_fault_ratio: float = 0.0233
    mean_repair_days: float = 2.5
    seed: int = 348

    def __post_init__(self) -> None:
        if self.n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.duration_days < 1:
            raise ValueError("duration_days must be >= 1")
        if not 0.0 < self.mean_fault_ratio < 1.0:
            raise ValueError("mean_fault_ratio must be in (0, 1)")
        if self.mean_repair_days <= 0.0:
            raise ValueError("mean_repair_days must be positive")

    @property
    def events_per_seed(self) -> int:
        """Fault events per seed so the mean concurrent-fault target holds."""
        duration_hours = self.duration_days * HOURS_PER_DAY
        repair_hours = self.mean_repair_days * HOURS_PER_DAY
        expected_concurrent = self.mean_fault_ratio * self.n_nodes
        return max(1, round(expected_concurrent * duration_hours / repair_hours))


def sample_trace_batch(config: BatchTraceConfig) -> TraceBatch:
    """Draw a whole ``(seeds, events)`` synthetic batch from one generator.

    Start times (uniform over the trace), repair durations (exponential with
    the configured mean) and node ids (uniform) each come out of a single
    batched draw of shape ``(n_seeds, events_per_seed)``, so the batch is a
    pure function of ``config.seed`` regardless of seed count.
    """
    rng = np.random.default_rng(config.seed)
    duration_hours = config.duration_days * HOURS_PER_DAY
    shape = (config.n_seeds, config.events_per_seed)
    start_block = rng.uniform(0.0, duration_hours, size=shape)
    duration_block = rng.exponential(config.mean_repair_days * HOURS_PER_DAY, size=shape)
    node_block = rng.integers(0, config.n_nodes, size=shape)
    end_block = np.minimum(start_block + duration_block, duration_hours)

    logs: list[NDArray[np.void]] = []
    for row in range(config.n_seeds):
        keep = end_block[row] > start_block[row]
        logs.append(
            _log_from_runs(
                node_block[row][keep].tolist(),
                start_block[row][keep].tolist(),
                end_block[row][keep].tolist(),
                duration_hours,
            )
        )
    offsets = np.zeros(config.n_seeds + 1, dtype=np.int64)
    np.cumsum([len(log) for log in logs], out=offsets[1:])
    return TraceBatch(
        log=np.concatenate(logs),
        event_offsets=offsets,
        n_nodes=config.n_nodes,
        gpus_per_node=config.gpus_per_node,
        duration_hours=duration_hours,
        seeds=tuple(range(config.n_seeds)),
    )


# --------------------------------------------------------------- transport
@dataclass(frozen=True, eq=False)
class ShmTraceBatch:
    """A picklable :class:`TraceBatch` riding a shared-memory event log.

    Only the stacked ``log`` -- the bulky block -- lives in shared memory;
    offsets, seeds and scalars travel in the handle (a few hundred bytes
    even for hundreds of seeds).  :meth:`batch` reconstructs the exact
    batch in the receiving process over a zero-copy view of the shared
    pages.  Falls back to by-value pickling of the whole batch when shared
    memory is unavailable (:meth:`from_batch` returning ``None``); the
    creating process must :meth:`unlink` once every consumer is done.
    """

    handle: ShmEventLog
    event_offsets: tuple[int, ...]
    n_nodes: int
    gpus_per_node: int
    duration_hours: float
    seeds: tuple[int, ...]

    @classmethod
    def from_batch(cls, batch: TraceBatch) -> ShmTraceBatch | None:
        """Package ``batch`` for shm transport (one log serialization).

        Returns ``None`` when shared memory is unavailable or segment
        creation fails -- callers then ship the :class:`TraceBatch` itself
        (plain pickle) instead.
        """
        if not shm_available():
            return None
        try:
            handle = ShmEventLog.from_log(batch.log)
        except OSError:
            return None
        return cls(
            handle=handle,
            event_offsets=tuple(int(o) for o in batch.event_offsets),
            n_nodes=batch.n_nodes,
            gpus_per_node=batch.gpus_per_node,
            duration_hours=batch.duration_hours,
            seeds=batch.seeds,
        )

    def batch(self) -> TraceBatch:
        """The exact batch, its log a zero-copy view of the shared segment."""
        return TraceBatch(
            log=self.handle.log(),
            event_offsets=np.asarray(self.event_offsets, dtype=np.int64),
            n_nodes=self.n_nodes,
            gpus_per_node=self.gpus_per_node,
            duration_hours=self.duration_hours,
            seeds=self.seeds,
        )

    def unlink(self) -> None:
        self.handle.unlink()


__all__ = [
    "BatchTraceConfig",
    "ShmTraceBatch",
    "TraceBatch",
    "sample_trace_batch",
]
