"""Batched Monte-Carlo replay engine (seeds x scenarios in one pass).

Every paper figure used to come from a single trace seed.  This package
replays a whole block of seeds at once over the shared columnar event log
(:mod:`repro.faults.events`), so per-metric variance -- the substrate for
mean / stddev / CI columns on every figure -- costs one vectorized pass
instead of N independent Python sweeps:

* :class:`TraceBatch` stacks per-seed event logs
  (:meth:`~repro.mc.batch.TraceBatch.from_timelines` for exact runner
  seeds, :func:`sample_trace_batch` for single-draw synthetic blocks);
* :func:`replay_batch` replays the block against one architecture via its
  fault-count kernel (:mod:`repro.mc.kernels`), falling back to the exact
  scalar replay per seed when no kernel exists (InfiniteHBD) -- per-seed
  results are bit-for-bit the scalar ``replay_intervals`` output either
  way;
* :func:`seed_stats` reduces per-seed metric values to the mean / stddev /
  CI columns ``ExperimentRunner(num_seeds=N)`` reports.
"""

from repro.mc.batch import BatchTraceConfig, TraceBatch, sample_trace_batch
from repro.mc.engine import BatchSeries, replay_batch
from repro.mc.kernels import AdditiveKernel, HealthyGroupsKernel, kernel_for
from repro.mc.stats import SeedStats, seed_stats

__all__ = [
    "AdditiveKernel",
    "BatchSeries",
    "BatchTraceConfig",
    "HealthyGroupsKernel",
    "SeedStats",
    "TraceBatch",
    "kernel_for",
    "replay_batch",
    "sample_trace_batch",
    "seed_stats",
]
