"""Numpy-ready forms of the per-architecture fault-count decompositions.

The hbd layer describes *what* decomposes
(:class:`~repro.hbd.base.CountDecomposition` /
:class:`~repro.hbd.base.HealthyGroupDecomposition`, pure-Python tuples);
this module repacks those descriptions into the flat arrays the batched
replay gathers against:

* :class:`AdditiveKernel` -- ``usable = base + sum of per-domain table
  deltas``; every event's usable-GPU delta is two gathers into one
  flattened table array.
* :class:`HealthyGroupsKernel` -- ``usable = (healthy_domains //
  group_size) * tp_size``; events only matter when they flip a domain
  between healthy and faulty.

:func:`kernel_for` returns ``None`` exactly when the architecture has no
count decomposition (InfiniteHBD's K-hop segments), in which case the
batched engine falls back to the exact scalar replay per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.hbd.base import (
    CountDecomposition,
    HBDArchitecture,
    HealthyGroupDecomposition,
)


@dataclass(frozen=True, eq=False)
class AdditiveKernel:
    """Flattened :class:`~repro.hbd.base.CountDecomposition`.

    ``table_flat`` concatenates the distinct lookup tables;
    ``table_offset_of_domain[d]`` is domain ``d``'s offset into it, so the
    usable contribution of domain ``d`` at fault count ``c`` is
    ``table_flat[table_offset_of_domain[d] + c]``.  ``base_usable`` is the
    zero-fault total (every domain at count 0).
    """

    domain_of_node: NDArray[np.int64]
    table_flat: NDArray[np.int64]
    table_offset_of_domain: NDArray[np.int64]
    n_domains: int
    base_usable: int


@dataclass(frozen=True, eq=False)
class HealthyGroupsKernel:
    """Flattened :class:`~repro.hbd.base.HealthyGroupDecomposition`."""

    domain_of_node: NDArray[np.int64]
    n_domains: int
    group_size: int
    tp_size: int
    base_usable: int


def kernel_for(
    architecture: HBDArchitecture, n_nodes: int, tp_size: int
) -> AdditiveKernel | HealthyGroupsKernel | None:
    """The architecture's vectorizable kernel, or ``None`` (scalar fallback)."""
    decomposition = architecture.fault_count_decomposition(n_nodes, tp_size)
    if decomposition is None:
        return None
    if isinstance(decomposition, HealthyGroupDecomposition):
        return HealthyGroupsKernel(
            domain_of_node=np.asarray(decomposition.domain_of_node, dtype=np.int64),
            n_domains=decomposition.n_domains,
            group_size=decomposition.group_size,
            tp_size=decomposition.tp_size,
            base_usable=(decomposition.n_domains // decomposition.group_size)
            * decomposition.tp_size,
        )
    return _additive_kernel(decomposition)


def _additive_kernel(decomposition: CountDecomposition) -> AdditiveKernel:
    offsets = [0]
    for table in decomposition.tables:
        offsets.append(offsets[-1] + len(table))
    flat = [entry for table in decomposition.tables for entry in table]
    base = sum(
        decomposition.tables[table_index][0]
        for table_index in decomposition.table_of_domain
    )
    return AdditiveKernel(
        domain_of_node=np.asarray(decomposition.domain_of_node, dtype=np.int64),
        table_flat=np.asarray(flat, dtype=np.int64),
        table_offset_of_domain=np.asarray(
            [offsets[t] for t in decomposition.table_of_domain], dtype=np.int64
        ),
        n_domains=len(decomposition.table_of_domain),
        base_usable=base,
    )


__all__ = [
    "AdditiveKernel",
    "HealthyGroupsKernel",
    "kernel_for",
]
