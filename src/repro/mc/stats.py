"""Cross-seed summary statistics for Monte-Carlo metric columns.

One tiny, well-specified reduction so every consumer (the experiment
runner's ``*_mean`` / ``*_stddev`` / ``*_ci95`` columns, docs, tests)
agrees on the definitions: sample mean, sample standard deviation (ddof=1,
``0.0`` for a single seed) and the normal-approximation 95% confidence
half-width ``1.96 * stddev / sqrt(n)``.  See docs/metrics.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence


@dataclass(frozen=True)
class SeedStats:
    """Mean / spread of one metric across seeds."""

    mean: float
    stddev: float
    ci95: float
    n_seeds: int


def seed_stats(values: Sequence[float]) -> SeedStats:
    """Summary statistics of per-seed metric values (at least one seed)."""
    n = len(values)
    if n == 0:
        raise ValueError("at least one value is required")
    mean = sum(values) / n
    if n == 1:
        return SeedStats(mean=mean, stddev=0.0, ci95=0.0, n_seeds=1)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    stddev = math.sqrt(variance)
    return SeedStats(
        mean=mean, stddev=stddev, ci95=1.96 * stddev / math.sqrt(n), n_seeds=n
    )


__all__ = [
    "SeedStats",
    "seed_stats",
]
