"""Cross-ToR traffic accounting for a TP placement (Figure 17a-c).

The paper's communication-efficiency evaluation reports the *cross-ToR
traffic rate*: the fraction of all training communication volume that must
traverse links above the ToR layer of the Fat-Tree.  TP traffic always stays
inside the HBD (InfiniteHBD provides direct GPU-GPU optical paths), so only
the outer parallel dimensions (DP/CP/PP/SP) generate DCN traffic.  Whether
that DCN traffic stays under a ToR depends on how the orchestrator placed the
TP groups:

* When the rank-``k`` nodes of the TP groups scheduled into the same
  outer-parallel set share a ToR (rank alignment), the bulk of the DP/CP
  volume is exchanged under that ToR.
* A hierarchical second tier (ring over the per-ToR sets, carrying ``1/p`` of
  the volume after the local reduce-scatter) always crosses ToRs.
* When ranks are misaligned (e.g. faults shifted one sub-line's groups, or a
  greedy scheduler ignored the ToR structure), the first tier volume also
  crosses ToRs.

:class:`TrafficModel` turns a placement into a :class:`CrossToRReport` using
this two-tier model.  Default volumes correspond to a TP-32 Llama-scale
workload where DCN traffic is roughly 10% of total communication volume,
matching the baseline levels reported in Figure 17; the volumes can also be
derived from :mod:`repro.training.comm` for a specific model.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.dcn.fattree import FatTree


@dataclass(frozen=True)
class TrafficVolumes:
    """Per-node communication volume in arbitrary consistent units.

    ``tp_volume`` is the HBD (intra-TP-group) volume per node per iteration;
    ``outer_volume`` the DP/CP volume per node per iteration.  Only relative
    magnitudes matter for the cross-ToR *rate*.
    """

    tp_volume: float = 9.0
    outer_volume: float = 1.0

    def __post_init__(self) -> None:
        if self.tp_volume < 0 or self.outer_volume < 0:
            raise ValueError("volumes must be non-negative")
        if self.tp_volume + self.outer_volume == 0:
            raise ValueError("at least one volume must be positive")

    @property
    def dcn_share(self) -> float:
        """Fraction of all traffic that is DCN (outer-parallel) traffic."""
        return self.outer_volume / (self.tp_volume + self.outer_volume)


@dataclass
class CrossToRReport:
    """Result of a cross-ToR traffic evaluation."""

    total_volume: float
    cross_tor_volume: float
    tier1_edges: int
    tier1_cross_edges: int
    tier2_edges: int
    placed_groups: int

    @property
    def cross_tor_rate(self) -> float:
        """Cross-ToR volume as a fraction of all communication volume."""
        if self.total_volume == 0:
            return 0.0
        return self.cross_tor_volume / self.total_volume

    @property
    def tier1_cross_fraction(self) -> float:
        """Fraction of first-tier (local DP set) edges that cross ToRs."""
        if self.tier1_edges == 0:
            return 0.0
        return self.tier1_cross_edges / self.tier1_edges


class TrafficModel:
    """Evaluate cross-ToR traffic for a placement of TP groups.

    Parameters
    ----------
    fat_tree:
        The DCN the nodes hang off.
    volumes:
        Relative TP vs outer-parallel communication volumes.
    local_set_size:
        Number of TP groups scheduled into one first-tier outer-parallel set.
        Defaults to ``nodes_per_tor`` (the CP-across-sub-lines strategy of
        the paper's Appendix D); ``None`` also selects that default.
    """

    def __init__(
        self,
        fat_tree: FatTree,
        volumes: TrafficVolumes | None = None,
        local_set_size: int | None = None,
    ) -> None:
        self.fat_tree = fat_tree
        self.volumes = volumes or TrafficVolumes()
        if local_set_size is None:
            local_set_size = fat_tree.config.nodes_per_tor
        if local_set_size < 1:
            raise ValueError("local_set_size must be >= 1")
        self.local_set_size = local_set_size

    def evaluate(self, placement: Sequence[Sequence[int]]) -> CrossToRReport:
        """Compute the cross-ToR report for ``placement``.

        ``placement`` is a list of TP groups, each an ordered list of node
        ids.  Groups are consumed in order; consecutive chunks of
        ``local_set_size`` groups form one first-tier outer-parallel set.
        """
        groups = [list(g) for g in placement if g]
        if not groups:
            return CrossToRReport(
                total_volume=0.0,
                cross_tor_volume=0.0,
                tier1_edges=0,
                tier1_cross_edges=0,
                tier2_edges=0,
                placed_groups=0,
            )
        group_size = len(groups[0])
        for g in groups:
            if len(g) != group_size:
                raise ValueError("all TP groups must have the same node count")

        n_nodes_placed = len(groups) * group_size
        v = self.volumes
        total_volume = n_nodes_placed * (v.tp_volume + v.outer_volume)

        cross_volume = 0.0
        tier1_edges = 0
        tier1_cross = 0
        tier2_edges = 0

        # First tier: ring among the rank-k nodes of each local set.
        sets: list[list[list[int]]] = [
            groups[i : i + self.local_set_size]
            for i in range(0, len(groups), self.local_set_size)
        ]
        for local_set in sets:
            if len(local_set) < 2:
                continue
            for rank in range(group_size):
                members = [g[rank] for g in local_set]
                ring_edges = self._ring_edges(members)
                for a, b in ring_edges:
                    tier1_edges += 1
                    if not self.fat_tree.same_tor(a, b):
                        tier1_cross += 1
                        cross_volume += self._tier1_edge_volume(len(local_set))

        # Second tier: ring over the sets (one representative per rank),
        # carrying 1/local_set_size of the outer volume; inherently cross-ToR
        # whenever the representatives sit under different ToRs.
        if len(sets) >= 2:
            for rank in range(group_size):
                reps = [s[0][rank] for s in sets]
                for a, b in self._ring_edges(reps):
                    tier2_edges += 1
                    if not self.fat_tree.same_tor(a, b):
                        cross_volume += self._tier2_edge_volume()

        return CrossToRReport(
            total_volume=total_volume,
            cross_tor_volume=cross_volume,
            tier1_edges=tier1_edges,
            tier1_cross_edges=tier1_cross,
            tier2_edges=tier2_edges,
            placed_groups=len(groups),
        )

    # ----------------------------------------------------------- edge volumes
    def _tier1_edge_volume(self, set_size: int) -> float:
        """Outer volume attributed to one first-tier ring edge.

        The hierarchical AllReduce keeps ``(n-1)/n`` of each member's outer
        volume inside its local set (reduce-scatter + all-gather among the
        ``n`` set members); charging ``V * (n-1)/n`` per ring edge makes a
        fully misaligned set contribute at most its members' local share.
        """
        if set_size <= 1:
            return 0.0
        return self.volumes.outer_volume * (set_size - 1) / set_size

    def _tier2_edge_volume(self) -> float:
        """Outer volume attributed to one second-tier (inter-set) ring edge.

        After the local reduce-scatter only ``1/set_size`` of the data moves
        between sets.
        """
        return self.volumes.outer_volume / float(self.local_set_size)

    @staticmethod
    def _ring_edges(members: Sequence[int]) -> list[tuple[int, int]]:
        """Edges of a ring over ``members`` (no self loops, no duplicates)."""
        n = len(members)
        if n < 2:
            return []
        if n == 2:
            return [(members[0], members[1])]
        return [(members[i], members[(i + 1) % n]) for i in range(n)]
