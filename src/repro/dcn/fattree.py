"""Three-tier Fat-Tree DCN model.

The orchestration algorithms only need locality information from the DCN:
which ToR a node hangs off, which aggregation-switch domain that ToR belongs
to, and the hop distance between two nodes.  This module provides a compact
Fat-Tree abstraction with exactly that interface plus a full
:mod:`networkx` graph export for tests and visualisation.

Hierarchy (bottom-up):

* ``nodes_per_tor`` nodes connect to each ToR switch (the paper calls this
  ``p`` or ``r``).
* ``tors_per_domain`` ToR switches connect to one group of aggregation
  switches (one *Aggregation-Switches Domain*); a domain therefore covers
  ``d = nodes_per_tor * tors_per_domain`` nodes.
* all domains connect through the core layer.

Network distance (in switch hops, as used in Figure 6/7 of the paper):

* same node: 0
* same ToR: 1 (node -> ToR -> node counts as distance 1 in the paper's
  "network distance 3 means cross-ToR" convention, where each switch layer
  crossed adds 2)
* same aggregation domain, different ToR: 3
* different aggregation domain: 5
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class FatTreeConfig:
    """Shape of the Fat-Tree.

    Attributes
    ----------
    n_nodes:
        Total number of GPU nodes attached to the fabric.
    nodes_per_tor:
        Nodes per ToR switch (``p`` in the orchestration algorithms).
    tors_per_domain:
        ToR switches per aggregation-switch domain.
    """

    n_nodes: int
    nodes_per_tor: int = 4
    tors_per_domain: int = 16

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.nodes_per_tor < 1:
            raise ValueError("nodes_per_tor must be >= 1")
        if self.tors_per_domain < 1:
            raise ValueError("tors_per_domain must be >= 1")

    @property
    def nodes_per_domain(self) -> int:
        """``d`` -- nodes covered by one aggregation-switch domain."""
        return self.nodes_per_tor * self.tors_per_domain

    @property
    def n_tors(self) -> int:
        """Number of ToR switches (ceiling to cover all nodes)."""
        return -(-self.n_nodes // self.nodes_per_tor)

    @property
    def n_domains(self) -> int:
        """Number of aggregation-switch domains."""
        return -(-self.n_tors // self.tors_per_domain)


class FatTree:
    """Locality queries over a Fat-Tree DCN."""

    def __init__(self, config: FatTreeConfig) -> None:
        self.config = config

    # -------------------------------------------------------------- locality
    def tor_of(self, node: int) -> int:
        """Index of the ToR switch ``node`` is attached to."""
        self._check_node(node)
        return node // self.config.nodes_per_tor

    def domain_of(self, node: int) -> int:
        """Index of the aggregation-switch domain covering ``node``."""
        return self.tor_of(node) // self.config.tors_per_domain

    def nodes_in_tor(self, tor: int) -> list[int]:
        """Node ids attached to ToR ``tor``."""
        if not 0 <= tor < self.config.n_tors:
            raise ValueError(f"ToR {tor} out of range")
        start = tor * self.config.nodes_per_tor
        end = min(start + self.config.nodes_per_tor, self.config.n_nodes)
        return list(range(start, end))

    def nodes_in_domain(self, domain: int) -> list[int]:
        """Node ids covered by aggregation domain ``domain``."""
        if not 0 <= domain < self.config.n_domains:
            raise ValueError(f"domain {domain} out of range")
        start = domain * self.config.nodes_per_domain
        end = min(start + self.config.nodes_per_domain, self.config.n_nodes)
        return list(range(start, end))

    def same_tor(self, a: int, b: int) -> bool:
        return self.tor_of(a) == self.tor_of(b)

    def same_domain(self, a: int, b: int) -> bool:
        return self.domain_of(a) == self.domain_of(b)

    def network_distance(self, a: int, b: int) -> int:
        """Switch-layer distance between two nodes (paper convention)."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return 0
        if self.same_tor(a, b):
            return 1
        if self.same_domain(a, b):
            return 3
        return 5

    def intra_tor_index(self, node: int) -> int:
        """Position of ``node`` within its ToR (0..nodes_per_tor-1)."""
        self._check_node(node)
        return node % self.config.nodes_per_tor

    # ------------------------------------------------------------------ graph
    def graph(self) -> nx.Graph:
        """Full switch-level graph (nodes, ToRs, aggregation groups, core)."""
        g = nx.Graph()
        core = "core"
        g.add_node(core, kind="core")
        for domain in range(self.config.n_domains):
            agg = f"agg{domain}"
            g.add_node(agg, kind="aggregation")
            g.add_edge(agg, core)
        for tor in range(self.config.n_tors):
            tor_name = f"tor{tor}"
            g.add_node(tor_name, kind="tor")
            g.add_edge(tor_name, f"agg{tor // self.config.tors_per_domain}")
            for node in self.nodes_in_tor(tor):
                g.add_node(node, kind="node")
                g.add_edge(node, tor_name)
        return g

    # --------------------------------------------------------------- helpers
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.config.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.config.n_nodes}-node DCN"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        c = self.config
        return (
            f"FatTree(n_nodes={c.n_nodes}, p={c.nodes_per_tor}, "
            f"tors/domain={c.tors_per_domain})"
        )
