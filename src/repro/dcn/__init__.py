"""Datacenter network (DCN) substrate.

The paper evaluates InfiniteHBD against a Fat-Tree DCN (section 6.4).  This
subpackage provides:

* :mod:`repro.dcn.fattree` -- a three-tier Fat-Tree model with ToR switches,
  aggregation-switch domains and a core layer, exposing the locality queries
  the orchestration algorithms need (ToR of a node, aggregation domain of a
  node, network distance).
* :mod:`repro.dcn.traffic` -- the cross-ToR traffic accounting model used to
  regenerate Figure 17a-c.
"""

from repro.dcn.fattree import FatTree, FatTreeConfig
from repro.dcn.railopt import RailOptimized, RailOptimizedConfig, RailTrafficModel
from repro.dcn.traffic import CrossToRReport, TrafficModel, TrafficVolumes

__all__ = [
    "FatTree",
    "FatTreeConfig",
    "RailOptimized",
    "RailOptimizedConfig",
    "RailTrafficModel",
    "CrossToRReport",
    "TrafficModel",
    "TrafficVolumes",
]
