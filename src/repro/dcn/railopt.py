"""Rail-Optimized DCN model.

The paper states InfiniteHBD is compatible with Rail-Optimized DCNs as well
as Fat-Trees (sections 2.1, 4.3, 8).  In a rail-optimized fabric, GPU ``g``
of every node in a pod connects to rail switch ``g`` (one "rail" per local
GPU index), so same-rank traffic between nodes of the same pod never crosses
a spine switch.

For the orchestration analysis the relevant locality questions are:

* which pod a node belongs to,
* which rail a (node, local GPU index) pair uses,
* whether two GPUs can communicate under a single rail switch
  (same pod *and* same local index), one spine hop (same pod, different
  rail), or across pods.

The :class:`RailTrafficModel` mirrors :class:`~repro.dcn.traffic.TrafficModel`
for this fabric: outer-parallel (DP/CP) traffic between same-rank GPUs stays
on a rail when the communicating nodes share a pod, so a placement that packs
each outer-parallel set into one pod needs no spine bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import networkx as nx


@dataclass(frozen=True)
class RailOptimizedConfig:
    """Shape of a rail-optimized pod fabric."""

    n_nodes: int
    gpus_per_node: int = 4
    nodes_per_pod: int = 32

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.nodes_per_pod < 1:
            raise ValueError("nodes_per_pod must be >= 1")

    @property
    def n_pods(self) -> int:
        return -(-self.n_nodes // self.nodes_per_pod)

    @property
    def rails_per_pod(self) -> int:
        return self.gpus_per_node


class RailOptimized:
    """Locality queries over a rail-optimized DCN."""

    def __init__(self, config: RailOptimizedConfig) -> None:
        self.config = config

    # -------------------------------------------------------------- locality
    def pod_of(self, node: int) -> int:
        self._check_node(node)
        return node // self.config.nodes_per_pod

    def rail_of(self, node: int, gpu_index: int) -> tuple[int, int]:
        """(pod, rail) identity of one GPU's NIC."""
        self._check_node(node)
        if not 0 <= gpu_index < self.config.gpus_per_node:
            raise ValueError(f"gpu_index {gpu_index} out of range")
        return self.pod_of(node), gpu_index

    def same_pod(self, a: int, b: int) -> bool:
        return self.pod_of(a) == self.pod_of(b)

    def same_rail(self, a: int, gpu_a: int, b: int, gpu_b: int) -> bool:
        """Whether two GPUs hang off the same rail switch."""
        return self.rail_of(a, gpu_a) == self.rail_of(b, gpu_b)

    def switch_hops(self, a: int, gpu_a: int, b: int, gpu_b: int) -> int:
        """Switch layers crossed: 1 (same rail), 3 (same pod), 5 (cross pod)."""
        if a == b and gpu_a == gpu_b:
            return 0
        if self.same_rail(a, gpu_a, b, gpu_b):
            return 1
        if self.same_pod(a, b):
            return 3
        return 5

    def nodes_in_pod(self, pod: int) -> list[int]:
        if not 0 <= pod < self.config.n_pods:
            raise ValueError(f"pod {pod} out of range")
        start = pod * self.config.nodes_per_pod
        end = min(start + self.config.nodes_per_pod, self.config.n_nodes)
        return list(range(start, end))

    # ------------------------------------------------------------------ graph
    def graph(self) -> nx.Graph:
        """Switch-level graph: GPUs -> rail switches -> spine."""
        g = nx.Graph()
        spine = "spine"
        g.add_node(spine, kind="spine")
        for pod in range(self.config.n_pods):
            for rail in range(self.config.rails_per_pod):
                rail_name = f"pod{pod}/rail{rail}"
                g.add_node(rail_name, kind="rail")
                g.add_edge(rail_name, spine)
            for node in self.nodes_in_pod(pod):
                for gpu in range(self.config.gpus_per_node):
                    gpu_name = (node, gpu)
                    g.add_node(gpu_name, kind="gpu")
                    g.add_edge(gpu_name, f"pod{pod}/rail{gpu}")
        return g

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.config.n_nodes:
            raise ValueError(
                f"node {node} out of range for {self.config.n_nodes}-node fabric"
            )


class RailTrafficModel:
    """Cross-spine traffic accounting for a TP placement on a rail fabric.

    Outer-parallel (DP/CP) traffic runs between the same local GPU index of
    same-rank nodes, so an edge stays on its rail exactly when the two nodes
    share a pod.  The returned rate is the fraction of outer-parallel edges
    that must cross the spine.
    """

    def __init__(self, fabric: RailOptimized, local_set_size: int | None = None) -> None:
        self.fabric = fabric
        if local_set_size is None:
            local_set_size = fabric.config.gpus_per_node
        if local_set_size < 1:
            raise ValueError("local_set_size must be >= 1")
        self.local_set_size = local_set_size

    def cross_spine_fraction(self, placement: Sequence[Sequence[int]]) -> float:
        groups = [list(g) for g in placement if g]
        if len(groups) < 2:
            return 0.0
        group_size = len(groups[0])
        for g in groups:
            if len(g) != group_size:
                raise ValueError("all TP groups must have the same node count")
        edges = 0
        crossing = 0
        sets = [
            groups[i : i + self.local_set_size]
            for i in range(0, len(groups), self.local_set_size)
        ]
        for local_set in sets:
            if len(local_set) < 2:
                continue
            for rank in range(group_size):
                members = [g[rank] for g in local_set]
                ring = list(zip(members, members[1:] + members[:1], strict=True))
                if len(members) == 2:
                    ring = ring[:1]
                for a, b in ring:
                    edges += 1
                    if not self.fabric.same_pod(a, b):
                        crossing += 1
        if edges == 0:
            return 0.0
        return crossing / edges
