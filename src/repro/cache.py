"""Content-addressed two-tier cache for experiment results.

:class:`ResultCache` memoizes the result rows of individual runner tasks
behind a content key, so repeated and overlapping sweeps stop recomputing
experiments whose inputs have not changed.  The store is deliberately dumb:
keys are opaque SHA-256 hex digests the caller derives from canonical JSON
(:func:`content_key`), values are JSON-serializable row lists, and the cache
never interprets either.

Two tiers:

* **memory** -- a process-wide LRU of canonical-JSON entries (capacity via
  ``REPRO_CACHE_MEMORY_ENTRIES``, default 256).  Entries are stored as
  serialized text and parsed on every hit, so a memory hit returns exactly
  the objects a disk hit would -- and callers can never mutate the cached
  copy.
* **disk** -- a persistent content-addressed directory
  (``REPRO_CACHE_DIR`` or ``~/.cache/repro``), layered *behind* the memory
  tier.  Entries live at ``v<schema>/<key[:2]>/<key>.json`` and are written
  atomically (unique temp file + ``os.replace``), so concurrent writers on
  the same entry can never produce a torn read: a reader sees either the
  old complete entry or the new complete entry.

Every disk entry is self-verifying: it records the cache schema version,
its own key, and the SHA-256 of its canonical row payload.  A load that
finds anything wrong -- unparseable JSON, a truncated file, a schema or key
mismatch, a row digest that does not match -- evicts the entry and reports
a miss instead of crashing, so a corrupted cache degrades to recomputation.

This module reads no wall clocks and draws no randomness: eviction is
explicit (:func:`clear_disk_cache`) or LRU-capacity driven, never TTL
based, so cache behaviour is a pure function of the calls made against it.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping
from typing import Any

#: Bump when the on-disk entry layout changes; old entries become invisible
#: (they live under their own ``v<N>`` directory) rather than misread.
CACHE_SCHEMA_VERSION = 1

#: The cache modes :class:`ResultCache` (and ``ExperimentSpec.cache``) accept.
CACHE_MODES = ("off", "memory", "disk")

#: Environment variable overriding the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the memory-tier LRU capacity.
CACHE_MEMORY_ENTRIES_ENV = "REPRO_CACHE_MEMORY_ENTRIES"

_DEFAULT_MEMORY_ENTRIES = 256


def canonical_json(value: Any) -> str:
    """The canonical serialized form: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_key(body: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of ``body``'s canonical JSON form.

    >>> key = content_key({"experiment": "waste", "tp_size": 32})
    >>> key == content_key({"tp_size": 32, "experiment": "waste"})
    True
    >>> len(key)
    64
    """
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def cache_dir() -> Path:
    """The on-disk cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _memory_capacity() -> int:
    raw = os.environ.get(CACHE_MEMORY_ENTRIES_ENV)
    if raw is None:
        return _DEFAULT_MEMORY_ENTRIES
    try:
        return max(1, int(raw))
    except ValueError:
        return _DEFAULT_MEMORY_ENTRIES


# One process-wide LRU shared by every ResultCache instance: repeated runner
# invocations in the same process hit it regardless of which instance stored
# the entry.  Values are canonical-JSON strings (see module docstring).
_MEMORY: OrderedDict[str, str] = OrderedDict()
_MEMORY_LOCK = threading.Lock()


def clear_memory_cache() -> int:
    """Drop every memory-tier entry; returns how many were held."""
    with _MEMORY_LOCK:
        count = len(_MEMORY)
        _MEMORY.clear()
    return count


class ResultCache:
    """Two-tier content-addressed store for JSON result rows.

    ``mode`` is one of :data:`CACHE_MODES`: ``"off"`` turns every operation
    into a no-op (``get`` always misses), ``"memory"`` uses only the
    process-wide LRU, ``"disk"`` layers the persistent tier behind it.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     cache = ResultCache("disk", tmp)
    ...     key = content_key({"experiment": "waste"})
    ...     cache.get(key) is None
    ...     cache.put(key, [{"metrics": {"x": 0.5}}])
    ...     cache.get(key)
    True
    True
    [{'metrics': {'x': 0.5}}]
    """

    def __init__(self, mode: str, directory: str | os.PathLike[str] | None = None) -> None:
        if mode not in CACHE_MODES:
            raise ValueError(f"unknown cache mode {mode!r}; known: {list(CACHE_MODES)}")
        self.mode = mode
        self.directory = Path(directory) if directory is not None else cache_dir()
        self.memory_entries = _memory_capacity()

    # -------------------------------------------------------------- interface
    def get(self, key: str) -> list[dict[str, Any]] | None:
        """The cached rows for ``key``, or ``None`` on a miss.

        Checks the memory tier first, then (in ``"disk"`` mode) the on-disk
        tier; a disk hit is promoted into the memory LRU.  Corrupt disk
        entries are evicted and reported as misses.
        """
        if self.mode == "off":
            return None
        with _MEMORY_LOCK:
            text = _MEMORY.get(key)
            if text is not None:
                _MEMORY.move_to_end(key)
        if text is not None:
            return _parse_rows(text)
        if self.mode != "disk":
            return None
        rows = self._load_disk(key)
        if rows is not None:
            self._remember(key, canonical_json(rows))
        return rows

    def put(self, key: str, rows: list[dict[str, Any]]) -> bool:
        """Store ``rows`` under ``key`` in every enabled tier.

        Disk writes are atomic (temp file + ``os.replace``) and best-effort:
        an unwritable cache directory degrades to memory-only caching rather
        than failing the computation that produced the rows.  Returns whether
        the entry landed in the mode's primary tier (always ``True`` for
        ``"memory"``; ``False`` in ``"disk"`` mode when the write failed).
        """
        if self.mode == "off":
            return False
        text = canonical_json(rows)
        self._remember(key, text)
        if self.mode == "disk":
            return self._store_disk(key, rows, text)
        return True

    def entry_path(self, key: str) -> Path:
        """Where ``key``'s entry lives (or would live) on disk."""
        return self.directory / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    # ---------------------------------------------------------- memory tier
    def _remember(self, key: str, text: str) -> None:
        with _MEMORY_LOCK:
            _MEMORY[key] = text
            _MEMORY.move_to_end(key)
            while len(_MEMORY) > self.memory_entries:
                _MEMORY.popitem(last=False)

    # ------------------------------------------------------------ disk tier
    def _load_disk(self, key: str) -> list[dict[str, Any]] | None:
        path = self.entry_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            _evict(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            _evict(path)
            return None
        rows = entry.get("rows")
        expected = entry.get("rows_sha256")
        if not isinstance(rows, list) or not isinstance(expected, str):
            _evict(path)
            return None
        digest = hashlib.sha256(canonical_json(rows).encode()).hexdigest()
        if digest != expected:
            _evict(path)
            return None
        return rows

    def _store_disk(self, key: str, rows: list[dict[str, Any]], text: str) -> bool:
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "package_version": _package_version(),
            "rows_sha256": hashlib.sha256(text.encode()).hexdigest(),
            "rows": rows,
        }
        path = self.entry_path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(canonical_json(entry), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()
            return False
        return True


def _parse_rows(text: str) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = json.loads(text)
    return rows


def _evict(path: Path) -> None:
    """Best-effort removal of a corrupt or stale entry."""
    with contextlib.suppress(OSError):
        path.unlink()


def _package_version() -> str:
    import repro

    return str(getattr(repro, "__version__", "0"))


# ------------------------------------------------------------- operability
@dataclass(frozen=True)
class CacheInfo:
    """A point-in-time summary of the on-disk tier (``repro cache info``)."""

    directory: str
    schema_version: int
    entries: int
    total_bytes: int


def disk_cache_info(directory: str | os.PathLike[str] | None = None) -> CacheInfo:
    """Entry count and total size of the current-schema on-disk tier."""
    base = Path(directory) if directory is not None else cache_dir()
    root = base / f"v{CACHE_SCHEMA_VERSION}"
    entries = 0
    total_bytes = 0
    if root.is_dir():
        for path in sorted(root.rglob("*.json")):
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
    return CacheInfo(
        directory=str(base),
        schema_version=CACHE_SCHEMA_VERSION,
        entries=entries,
        total_bytes=total_bytes,
    )


def clear_disk_cache(directory: str | os.PathLike[str] | None = None) -> int:
    """Remove every on-disk entry (all schema versions); returns the count.

    Only ``v<digit>``-prefixed subdirectories of the cache root are touched,
    so pointing ``REPRO_CACHE_DIR`` at a shared directory cannot make
    ``clear`` delete unrelated files.
    """
    base = Path(directory) if directory is not None else cache_dir()
    removed = 0
    for version_dir in sorted(base.glob("v[0-9]*")):
        if not version_dir.is_dir():
            continue
        for path in sorted(version_dir.rglob("*.json")):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        for sub in sorted(version_dir.rglob("*"), reverse=True):
            if sub.is_dir():
                with contextlib.suppress(OSError):
                    sub.rmdir()
        with contextlib.suppress(OSError):
            version_dir.rmdir()
    return removed


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MEMORY_ENTRIES_ENV",
    "CACHE_MODES",
    "CACHE_SCHEMA_VERSION",
    "CacheInfo",
    "ResultCache",
    "cache_dir",
    "canonical_json",
    "clear_disk_cache",
    "clear_memory_cache",
    "content_key",
    "disk_cache_info",
]
