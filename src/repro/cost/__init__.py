"""Interconnect cost and power analysis (section 6.5, Tables 6 and 8).

* :mod:`repro.cost.components` -- the component catalog (unit cost, unit
  bandwidth, unit power) transcribed from Table 8.
* :mod:`repro.cost.architectures` -- per-architecture bills of materials and
  reference deployments.
* :mod:`repro.cost.analysis` -- per-GPU / per-GBps normalisation (Table 6)
  and the fault-aware aggregate-cost model behind Figure 17d.
"""

from repro.cost.components import Component, COMPONENT_CATALOG
from repro.cost.architectures import (
    ArchitectureBOM,
    BOMLine,
    all_reference_boms,
    reference_bom,
)
from repro.cost.analysis import (
    CostSummary,
    interconnect_cost_table,
    aggregate_cost,
    aggregate_cost_sweep,
)

__all__ = [
    "Component",
    "COMPONENT_CATALOG",
    "ArchitectureBOM",
    "BOMLine",
    "all_reference_boms",
    "reference_bom",
    "CostSummary",
    "interconnect_cost_table",
    "aggregate_cost",
    "aggregate_cost_sweep",
]
