"""Interconnect component catalog (Table 8 of the paper).

Unit costs come from public retailer pricing with the wholesale discount the
paper applies, and from the industry analyses the paper cites for items
without public pricing (NVLink Switch, Google Palomar OCS, 1.6T ACC cables).
Only the *published* numbers of Table 8 are embedded here; nothing is
re-derived.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Component:
    """One interconnect component type.

    Attributes
    ----------
    name:
        Catalog key.
    unit_cost_usd:
        Cost per unit in US dollars.
    unit_bandwidth_gBps:
        Bandwidth per unit in gigabytes per second (as listed in Table 8).
    unit_power_watts:
        Power per unit in watts.
    """

    name: str
    unit_cost_usd: float
    unit_bandwidth_gBps: float
    unit_power_watts: float

    def __post_init__(self) -> None:
        if self.unit_cost_usd < 0 or self.unit_power_watts < 0:
            raise ValueError("cost and power must be non-negative")
        if self.unit_bandwidth_gBps < 0:
            raise ValueError("bandwidth must be non-negative")


#: Table 8 component catalog, keyed by a short identifier.
COMPONENT_CATALOG: dict[str, Component] = {
    # --- TPUv4 interconnect -------------------------------------------------
    "palomar_ocs": Component("palomar_ocs", 80000.0, 6400.0, 108.0),
    "dac_50gBps": Component("dac_50gBps", 63.60, 50.0, 0.1),
    "optical_400g_fr4": Component("optical_400g_fr4", 360.0, 50.0, 12.0),
    "fiber_50gBps": Component("fiber_50gBps", 6.80, 50.0, 0.0),
    # --- NVIDIA GB200 NVL series --------------------------------------------
    "nvlink_switch": Component("nvlink_switch", 28000.0, 3600.0, 275.0),
    "dac_25gBps": Component("dac_25gBps", 35.60, 25.0, 0.1),
    "acc_1600g": Component("acc_1600g", 320.0, 200.0, 2.5),
    "optical_osfp_1600g": Component("optical_osfp_1600g", 850.0, 200.0, 25.0),
    "fiber_200gBps": Component("fiber_200gBps", 6.80, 200.0, 0.0),
    # --- Alibaba HPN (DCN reference, Table 8 only) ---------------------------
    "eps_51_2t": Component("eps_51_2t", 14960.0, 6400.0, 3145.0),
    # --- InfiniteHBD ---------------------------------------------------------
    "dac_1600g": Component("dac_1600g", 199.60, 200.0, 0.1),
    "ocstrx_800g": Component("ocstrx_800g", 600.0, 100.0, 12.0),
    "fiber_100gBps": Component("fiber_100gBps", 6.80, 100.0, 0.0),
}


def component(name: str) -> Component:
    """Look up a catalog entry, raising ``KeyError`` with the known names."""
    try:
        return COMPONENT_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; known: {sorted(COMPONENT_CATALOG)}"
        ) from None
