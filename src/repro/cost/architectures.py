"""Per-architecture interconnect bills of materials (Table 8).

Each :class:`ArchitectureBOM` pins the reference deployment size (GPU count
and per-GPU HBD bandwidth) and the list of component quantities exactly as
published in Table 8, so the Table 6 normalisation is pure arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.components import Component, component


@dataclass(frozen=True)
class BOMLine:
    """One line of a bill of materials."""

    component: Component
    quantity: int

    def __post_init__(self) -> None:
        if self.quantity < 0:
            raise ValueError("quantity must be non-negative")

    @property
    def cost_usd(self) -> float:
        return self.component.unit_cost_usd * self.quantity

    @property
    def power_watts(self) -> float:
        return self.component.unit_power_watts * self.quantity


@dataclass(frozen=True)
class ArchitectureBOM:
    """Interconnect BOM of one reference deployment."""

    name: str
    n_gpus: int
    per_gpu_bandwidth_gBps: float
    lines: tuple[BOMLine, ...]

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if self.per_gpu_bandwidth_gBps <= 0:
            raise ValueError("per_gpu_bandwidth_gBps must be positive")

    # ------------------------------------------------------------ aggregates
    @property
    def total_cost_usd(self) -> float:
        return sum(line.cost_usd for line in self.lines)

    @property
    def total_power_watts(self) -> float:
        return sum(line.power_watts for line in self.lines)

    @property
    def cost_per_gpu(self) -> float:
        return self.total_cost_usd / self.n_gpus

    @property
    def power_per_gpu(self) -> float:
        return self.total_power_watts / self.n_gpus

    @property
    def cost_per_gpu_per_gBps(self) -> float:
        return self.cost_per_gpu / self.per_gpu_bandwidth_gBps

    @property
    def power_per_gpu_per_gBps(self) -> float:
        return self.power_per_gpu / self.per_gpu_bandwidth_gBps


def _bom(name: str, n_gpus: int, bandwidth: float, parts: list[tuple[str, int]]) -> ArchitectureBOM:
    return ArchitectureBOM(
        name=name,
        n_gpus=n_gpus,
        per_gpu_bandwidth_gBps=bandwidth,
        lines=tuple(BOMLine(component(part), qty) for part, qty in parts),
    )


def tpuv4_bom() -> ArchitectureBOM:
    """Google TPUv4: 4096 accelerators, 300 GBps/GPU."""
    return _bom(
        "TPUv4",
        4096,
        300.0,
        [
            ("palomar_ocs", 48),
            ("dac_50gBps", 5120),
            ("optical_400g_fr4", 6144),
            ("fiber_50gBps", 6144),
        ],
    )


def nvl36_bom() -> ArchitectureBOM:
    """NVIDIA GB200 NVL-36: 36 GPUs, 900 GBps/GPU."""
    return _bom(
        "NVL-36",
        36,
        900.0,
        [("nvlink_switch", 9), ("dac_25gBps", 2592)],
    )


def nvl72_bom() -> ArchitectureBOM:
    """NVIDIA GB200 NVL-72: 72 GPUs, 900 GBps/GPU."""
    return _bom(
        "NVL-72",
        72,
        900.0,
        [("nvlink_switch", 18), ("dac_25gBps", 5184)],
    )


def nvl36x2_bom() -> ArchitectureBOM:
    """NVIDIA GB200 NVL-36x2: 72 GPUs, 900 GBps/GPU."""
    return _bom(
        "NVL-36x2",
        72,
        900.0,
        [("nvlink_switch", 36), ("dac_25gBps", 6480), ("acc_1600g", 162)],
    )


def nvl576_bom() -> ArchitectureBOM:
    """NVIDIA GB200 NVL-576: 576 GPUs, 900 GBps/GPU."""
    return _bom(
        "NVL-576",
        576,
        900.0,
        [
            ("nvlink_switch", 432),
            ("dac_25gBps", 41472),
            ("optical_osfp_1600g", 4608),
            ("fiber_200gBps", 4608),
        ],
    )


def alibaba_hpn_bom() -> ArchitectureBOM:
    """Alibaba HPN DCN reference: 16,320 GPUs, 50 GBps/GPU (Table 8 only)."""
    return _bom(
        "Alibaba-HPN",
        16320,
        50.0,
        [
            ("eps_51_2t", 360),
            ("dac_25gBps", 32640),
            ("optical_400g_fr4", 28800),
            ("fiber_50gBps", 14400),
        ],
    )


def infinitehbd_bom(k: int = 2) -> ArchitectureBOM:
    """InfiniteHBD per 4-GPU node, 800 GBps/GPU.

    K = 2: 2 bundles are OCSTrx (8 modules each = 16), the remaining intra
    node pairs use 1.6T DAC links (4).  K = 3: 3 bundles of OCSTrx (24) and
    2 DAC links.
    """
    if k == 2:
        parts = [("dac_1600g", 4), ("ocstrx_800g", 16), ("fiber_100gBps", 16)]
    elif k == 3:
        parts = [("dac_1600g", 2), ("ocstrx_800g", 24), ("fiber_100gBps", 24)]
    else:
        raise ValueError("the paper publishes BOMs for K=2 and K=3 only")
    return _bom(f"InfiniteHBD(K={k})", 4, 800.0, parts)


def all_reference_boms(include_hpn: bool = False) -> list[ArchitectureBOM]:
    """All Table 8 deployments, in the paper's row order."""
    boms = [
        tpuv4_bom(),
        nvl36_bom(),
        nvl72_bom(),
        nvl36x2_bom(),
        nvl576_bom(),
    ]
    if include_hpn:
        boms.append(alibaba_hpn_bom())
    boms.extend([infinitehbd_bom(2), infinitehbd_bom(3)])
    return boms


def reference_bom(name: str) -> ArchitectureBOM:
    """Look up a reference BOM by architecture name."""
    catalog: dict[str, ArchitectureBOM] = {
        b.name.lower(): b for b in all_reference_boms(include_hpn=True)
    }
    key = name.lower()
    if key not in catalog:
        raise KeyError(f"unknown architecture {name!r}; known: {sorted(catalog)}")
    return catalog[key]
