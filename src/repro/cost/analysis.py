"""Cost normalisation (Table 6) and fault-aware aggregate cost (Figure 17d).

Table 6 normalises each reference BOM to interconnect dollars / watts per GPU
and per GBps of per-GPU bandwidth.

Figure 17d's *aggregate cost* folds fault resilience into the comparison:

    aggregate = Cost_GPU * (N_wasted + N_faulty) + Cost_interconnect

evaluated on a ~3K-GPU cluster running TP-32, as the node fault ratio varies.
Architectures that waste more healthy GPUs under faults pay for idle
accelerators on top of their interconnect bill.  We report the aggregate per
GPU and also normalised to InfiniteHBD (K=2) at zero faults = 100 so the
curves are directly comparable to the paper's y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cost.architectures import ArchitectureBOM, all_reference_boms
from repro.faults.model import IIDFaultModel
from repro.hbd.base import HBDArchitecture
from repro.hbd.registry import default_architectures

#: Street price assumed for one H100-class accelerator (section 6.5 folds GPU
#: cost into the aggregate metric; the exact value only scales the curves).
DEFAULT_GPU_COST_USD = 25000.0

#: Per-GPU HBD bandwidth all architectures are normalised to when comparing
#: aggregate cost (the InfiniteHBD reference point of 800 GBps).  The Fig. 17d
#: comparison is at iso-bandwidth: architectures delivering less per-GPU
#: bandwidth are charged proportionally more interconnect to reach it.
REFERENCE_BANDWIDTH_GBPS = 800.0


@dataclass
class CostSummary:
    """One row of Table 6."""

    name: str
    cost_per_gpu: float
    power_per_gpu: float
    cost_per_gBps: float
    power_per_gBps: float


def interconnect_cost_table(include_hpn: bool = False) -> list[CostSummary]:
    """Table 6: normalised interconnect cost and power per architecture."""
    rows: list[CostSummary] = []
    for bom in all_reference_boms(include_hpn=include_hpn):
        rows.append(
            CostSummary(
                name=bom.name,
                cost_per_gpu=bom.cost_per_gpu,
                power_per_gpu=bom.power_per_gpu,
                cost_per_gBps=bom.cost_per_gpu_per_gBps,
                power_per_gBps=bom.power_per_gpu_per_gBps,
            )
        )
    return rows


def cost_reduction_vs(name_a: str = "InfiniteHBD(K=2)", name_b: str = "NVL-72") -> float:
    """How many times cheaper (per GPU per GBps) architecture A is than B."""
    table = {row.name: row for row in interconnect_cost_table()}
    if name_a not in table or name_b not in table:
        raise KeyError(f"unknown architecture; known: {sorted(table)}")
    a, b = table[name_a], table[name_b]
    if a.cost_per_gBps == 0:
        raise ZeroDivisionError("architecture A has zero per-GBps cost")
    return b.cost_per_gBps / a.cost_per_gBps


# --------------------------------------------------------------------------
# Aggregate (fault-aware) cost -- Figure 17d
# --------------------------------------------------------------------------
_BOM_FOR_ARCH: dict[str, str] = {
    "InfiniteHBD(K=2)": "InfiniteHBD(K=2)",
    "InfiniteHBD(K=3)": "InfiniteHBD(K=3)",
    "TPUv4": "TPUv4",
    "NVL-36": "NVL-36",
    "NVL-72": "NVL-72",
    "NVL-576": "NVL-576",
    "Big-Switch": "NVL-576",   # the ideal switch priced as the largest NVL
    "SiP-Ring": "InfiniteHBD(K=2)",  # static rings use comparable optics
}


def _bom_for(arch: HBDArchitecture) -> ArchitectureBOM:
    from repro.cost.architectures import reference_bom

    bom_name = _BOM_FOR_ARCH.get(arch.name)
    if bom_name is None:
        raise KeyError(f"no reference BOM mapped for architecture {arch.name!r}")
    return reference_bom(bom_name)


def aggregate_cost(
    architecture: HBDArchitecture,
    n_nodes: int,
    fault_ratio: float,
    tp_size: int = 32,
    gpu_cost_usd: float = DEFAULT_GPU_COST_USD,
    n_samples: int = 10,
    seed: int = 0,
    reference_bandwidth_gBps: float = REFERENCE_BANDWIDTH_GBPS,
) -> float:
    """Per-GPU aggregate cost of ``architecture`` at ``fault_ratio``.

    ``Cost_GPU * (wasted + faulty GPUs) / total + interconnect cost per GPU``,
    averaged over Monte-Carlo i.i.d. fault sets.  The interconnect term is
    normalised to ``reference_bandwidth_gBps`` of per-GPU HBD bandwidth so
    architectures are compared at equal bandwidth (pass ``None`` to use each
    architecture's native per-GPU cost instead).
    """
    model = IIDFaultModel(n_nodes=n_nodes, seed=seed, n_samples=n_samples)

    def unavailable_ratio(fault_set) -> float:
        return architecture.breakdown(n_nodes, fault_set, tp_size).unavailable_ratio

    mean_unavailable = model.expectation(fault_ratio, unavailable_ratio)
    bom = _bom_for(architecture)
    interconnect_per_gpu = (
        bom.cost_per_gpu
        if reference_bandwidth_gBps is None
        else bom.cost_per_gpu_per_gBps * reference_bandwidth_gBps
    )
    return gpu_cost_usd * mean_unavailable + interconnect_per_gpu


def aggregate_cost_sweep(
    architectures: Sequence[HBDArchitecture] | None = None,
    n_nodes: int = 768,
    fault_ratios: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20),
    tp_size: int = 32,
    gpu_cost_usd: float = DEFAULT_GPU_COST_USD,
    normalize: bool = True,
    n_samples: int = 10,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Aggregate cost curves versus node fault ratio (Figure 17d).

    When ``normalize`` is True the curves are rescaled so that InfiniteHBD
    (K=2) at the first fault ratio equals 100 (the paper's relative y-axis);
    otherwise raw per-GPU dollars are returned.
    """
    if architectures is None:
        architectures = [
            a
            for a in default_architectures(gpus_per_node=4)
            if a.name not in ("Big-Switch", "SiP-Ring")
        ]
    curves: dict[str, list[float]] = {}
    for arch in architectures:
        curves[arch.name] = [
            aggregate_cost(
                arch,
                n_nodes=n_nodes,
                fault_ratio=ratio,
                tp_size=tp_size,
                gpu_cost_usd=gpu_cost_usd,
                n_samples=n_samples,
                seed=seed,
            )
            for ratio in fault_ratios
        ]
    if normalize:
        reference_curve = curves.get("InfiniteHBD(K=2)")
        if reference_curve and reference_curve[0] > 0:
            scale = 100.0 / reference_curve[0]
            curves = {
                name: [value * scale for value in values]
                for name, values in curves.items()
            }
    return curves
