"""Node fabric manager: device-level control of one node's OCSTrx bundles.

The fabric manager is the per-node agent of the control plane.  It translates
ring-level intents ("be the head of a ring whose next node is 7", "bypass
your failed left neighbour by connecting to node 5 instead") into OCSTrx
bundle path activations, and reports the hardware reconfiguration latency of
every change so the cluster manager can account for switching downtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.khop_ring import KHopRingTopology
from repro.core.node import Node
from repro.hardware.ocstrx import PathState


class NodeRole(enum.Enum):
    """Role of a node within its current GPU ring."""

    UNASSIGNED = "unassigned"
    HEAD = "head"        # closes the ring on its left side via loopback
    MIDDLE = "middle"    # forwards in both directions
    TAIL = "tail"        # closes the ring on its right side via loopback
    SOLO = "solo"        # single-node ring (both bundles in loopback)


@dataclass
class FabricConfiguration:
    """The intent most recently applied to a node."""

    role: NodeRole
    left_peer: int | None
    right_peer: int | None


class NodeFabricManager:
    """Drives the OCSTrx bundles of a single node."""

    def __init__(self, node: Node, topology: KHopRingTopology) -> None:
        if node.n_bundles < 2:
            raise ValueError("the fabric manager needs at least 2 OCSTrx bundles")
        self.node = node
        self.topology = topology
        self._configuration = FabricConfiguration(NodeRole.UNASSIGNED, None, None)
        self.total_reconfigurations = 0
        self.total_switch_time_us = 0.0

    # ------------------------------------------------------------------ state
    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def configuration(self) -> FabricConfiguration:
        return self._configuration

    @property
    def role(self) -> NodeRole:
        return self._configuration.role

    # -------------------------------------------------------------- commands
    def configure(
        self,
        role: NodeRole,
        left_peer: int | None = None,
        right_peer: int | None = None,
    ) -> float:
        """Apply a ring role; returns the switching latency in microseconds.

        ``left_peer`` / ``right_peer`` are the neighbouring node ids along the
        ring for the sides that face outwards; a loopback side needs no peer.
        """
        if self.node.failed:
            raise RuntimeError(f"node {self.node_id} is failed")
        self._validate(role, left_peer, right_peer)

        left_bundle = self.node.bundle(0)
        right_bundle = self.node.bundle(min(1, self.node.n_bundles - 1))
        latencies: list[float] = []

        if role is NodeRole.UNASSIGNED:
            latencies.append(left_bundle.deactivate())
            latencies.append(right_bundle.deactivate())
        elif role is NodeRole.SOLO:
            latencies.append(left_bundle.activate(PathState.LOOPBACK))
            latencies.append(right_bundle.activate(PathState.LOOPBACK))
        elif role is NodeRole.HEAD:
            latencies.append(left_bundle.activate(PathState.LOOPBACK))
            latencies.append(self._point(right_bundle, right_peer))
        elif role is NodeRole.TAIL:
            latencies.append(self._point(left_bundle, left_peer))
            latencies.append(right_bundle.activate(PathState.LOOPBACK))
        elif role is NodeRole.MIDDLE:
            latencies.append(self._point(left_bundle, left_peer))
            latencies.append(self._point(right_bundle, right_peer))
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown role {role}")

        latency = max(latencies) if latencies else 0.0
        if latency > 0:
            self.total_reconfigurations += 1
            self.total_switch_time_us += latency
        self._configuration = FabricConfiguration(role, left_peer, right_peer)
        return latency

    def release(self) -> float:
        """Return the node to the unassigned (dark) state."""
        return self.configure(NodeRole.UNASSIGNED)

    def bypass_left(self, new_left_peer: int) -> float:
        """Re-point the left-facing bundle at a backup neighbour.

        Used when the current left neighbour failed: the node keeps its role
        but its left link now reaches the next healthy node within K hops.
        """
        if self.role not in (NodeRole.MIDDLE, NodeRole.TAIL):
            raise RuntimeError(
                f"node {self.node_id} has no outward-facing left link to bypass"
            )
        self._check_reachable(new_left_peer)
        latency = self._point(self.node.bundle(0), new_left_peer, force=True)
        self._configuration = FabricConfiguration(
            self.role, new_left_peer, self._configuration.right_peer
        )
        self._count(latency)
        return latency

    def bypass_right(self, new_right_peer: int) -> float:
        """Re-point the right-facing bundle at a backup neighbour."""
        if self.role not in (NodeRole.MIDDLE, NodeRole.HEAD):
            raise RuntimeError(
                f"node {self.node_id} has no outward-facing right link to bypass"
            )
        self._check_reachable(new_right_peer)
        bundle = self.node.bundle(min(1, self.node.n_bundles - 1))
        latency = self._point(bundle, new_right_peer, force=True)
        self._configuration = FabricConfiguration(
            self.role, self._configuration.left_peer, new_right_peer
        )
        self._count(latency)
        return latency

    # -------------------------------------------------------------- internals
    def _point(self, bundle, peer: int | None, force: bool = False) -> float:
        if peer is None:
            raise ValueError("an outward-facing side needs a peer node")
        self._check_reachable(peer)
        distance = self.topology.hop_distance(self.node_id, peer)
        path = PathState.EXTERNAL_1 if distance == 1 else PathState.EXTERNAL_2
        if bundle.peer(path) != peer:
            bundle.wire_external(path, peer)
        if force and bundle.state is path:
            # Re-activating the same optical path towards a *different* peer
            # still requires the far-end handshake; model it as one switch.
            bundle.deactivate()
        return bundle.activate(path)

    def _check_reachable(self, peer: int) -> None:
        if not self.topology.has_link(self.node_id, peer):
            raise ValueError(
                f"node {peer} is beyond K={self.topology.config.k} hops of "
                f"node {self.node_id}"
            )

    def _validate(
        self, role: NodeRole, left_peer: int | None, right_peer: int | None
    ) -> None:
        if role is NodeRole.MIDDLE and (left_peer is None or right_peer is None):
            raise ValueError("a middle node needs both peers")
        if role is NodeRole.HEAD and right_peer is None:
            raise ValueError("a head node needs a right peer")
        if role is NodeRole.TAIL and left_peer is None:
            raise ValueError("a tail node needs a left peer")

    def _count(self, latency: float) -> None:
        if latency > 0:
            self.total_reconfigurations += 1
            self.total_switch_time_us += latency

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        c = self._configuration
        return (
            f"NodeFabricManager(node={self.node_id}, role={c.role.value}, "
            f"left={c.left_peer}, right={c.right_peer})"
        )
