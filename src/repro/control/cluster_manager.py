"""Cluster manager: global control of rings, faults and reconfiguration.

The cluster manager owns every node's fabric manager and the K-Hop topology.
It provides the three control-plane operations the paper's prototype needs:

* **allocation** -- carve GPU rings of the requested TP size out of the
  healthy segments of the topology and program every member node's OCSTrx
  bundles (head / middle / tail roles);
* **fault handling** -- when a node fails, drive its ring neighbours to their
  backup paths so the ring heals around the failure (node-level fault
  isolation); if the gap exceeds the K-hop reach the ring is marked broken;
* **repair and rebalancing** -- repaired nodes return to the free pool and
  can be folded back in by re-allocating.

A trace replay entry point turns a :class:`~repro.faults.trace.FaultTrace`
into control-plane statistics (reconfigurations, switching time, broken
rings, ring availability) -- the control-plane companion of the section 6.2
capacity simulations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Sequence

from repro.control.fabric_manager import NodeFabricManager, NodeRole
from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.core.node import Node, make_nodes
from repro.faults.trace import FaultTrace


class RingState(enum.Enum):
    """Lifecycle state of an allocated GPU ring."""

    ACTIVE = "active"          # all member nodes healthy
    DEGRADED = "degraded"      # lost >= 1 node but healed over backup links
    BROKEN = "broken"          # an unbridgeable gap appeared
    RELEASED = "released"      # freed by the cluster manager


@dataclass
class RingAssignment:
    """One GPU ring allocated by the cluster manager."""

    ring_id: int
    tp_size: int
    node_ids: list[int]
    state: RingState = RingState.ACTIVE

    @property
    def gpu_count(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.node_ids


@dataclass
class ControlEvent:
    """An entry of the cluster manager's event log."""

    time_hours: float
    kind: str
    detail: str
    latency_us: float = 0.0


@dataclass
class ReplaySummary:
    """Aggregate statistics of a trace replay."""

    fault_events: int
    repair_events: int
    bypass_reconfigurations: int
    broken_rings: int
    total_switch_time_us: float
    mean_ring_availability: float


class ClusterManager:
    """Global controller for an InfiniteHBD deployment."""

    def __init__(
        self,
        n_nodes: int,
        k: int = 2,
        gpus_per_node: int = 4,
        ring: bool = True,
        modules_per_bundle: int = 8,
    ) -> None:
        self.topology = KHopRingTopology(
            KHopTopologyConfig(n_nodes=n_nodes, k=k, gpus_per_node=gpus_per_node, ring=ring)
        )
        self.nodes: list[Node] = make_nodes(
            n_nodes,
            n_gpus=gpus_per_node,
            n_bundles=max(2, k),
            modules_per_bundle=modules_per_bundle,
        )
        self.fabric_managers: dict[int, NodeFabricManager] = {
            node.node_id: NodeFabricManager(node, self.topology) for node in self.nodes
        }
        self.rings: dict[int, RingAssignment] = {}
        self.events: list[ControlEvent] = []
        self._next_ring_id = 0
        self._node_to_ring: dict[int, int] = {}

    # ------------------------------------------------------------------ state
    @property
    def n_nodes(self) -> int:
        return self.topology.config.n_nodes

    @property
    def gpus_per_node(self) -> int:
        return self.topology.config.gpus_per_node

    @property
    def faulty_nodes(self) -> set[int]:
        return {n.node_id for n in self.nodes if n.failed}

    def free_nodes(self) -> list[int]:
        """Healthy nodes not currently assigned to any ring."""
        return [
            n.node_id
            for n in self.nodes
            if not n.failed and n.node_id not in self._node_to_ring
        ]

    def active_rings(self) -> list[RingAssignment]:
        return [r for r in self.rings.values() if r.state in (RingState.ACTIVE, RingState.DEGRADED)]

    def ring_of(self, node_id: int) -> RingAssignment | None:
        ring_id = self._node_to_ring.get(node_id)
        return self.rings.get(ring_id) if ring_id is not None else None

    def total_switch_time_us(self) -> float:
        return sum(fm.total_switch_time_us for fm in self.fabric_managers.values())

    # -------------------------------------------------------------- allocation
    def nodes_per_ring(self, tp_size: int) -> int:
        return self.topology.nodes_per_tp_group(tp_size)

    def allocate_rings(
        self,
        tp_size: int,
        max_rings: int | None = None,
        time_hours: float = 0.0,
    ) -> list[RingAssignment]:
        """Allocate as many ``tp_size``-GPU rings as possible (or ``max_rings``).

        Rings are packed onto healthy segments of the topology, skipping
        nodes that already belong to a ring.  Every member node's fabric
        manager is programmed; the per-ring reconfiguration latency is the
        max over its members (they switch in parallel).
        """
        nodes_per_ring = self.nodes_per_ring(tp_size)
        unavailable = self.faulty_nodes | set(self._node_to_ring)
        allocated: list[RingAssignment] = []
        for segment in self.topology.healthy_segments(self.faulty_nodes):
            run: list[int] = []
            for node_id in segment.nodes:
                if node_id in unavailable:
                    # An already-assigned node interrupts the free run only if
                    # the next free node is out of K-hop reach; conservatively
                    # restart the run to keep allocations contiguous.
                    run = []
                    continue
                run.append(node_id)
                if len(run) == nodes_per_ring:
                    assignment = self._program_ring(run, tp_size, time_hours)
                    allocated.append(assignment)
                    run = []
                    if max_rings is not None and len(self.active_rings()) >= max_rings:
                        return allocated
        return allocated

    def release_ring(self, ring_id: int, time_hours: float = 0.0) -> None:
        """Free a ring: its healthy members go dark and return to the pool."""
        ring = self.rings[ring_id]
        for node_id in ring.node_ids:
            self._node_to_ring.pop(node_id, None)
            if not self.nodes[node_id].failed:
                self.fabric_managers[node_id].release()
        ring.state = RingState.RELEASED
        self.events.append(
            ControlEvent(time_hours, "release", f"ring {ring_id} released")
        )

    def release_all(self, time_hours: float = 0.0) -> None:
        for ring_id in list(self.rings):
            if self.rings[ring_id].state is not RingState.RELEASED:
                self.release_ring(ring_id, time_hours)

    # ------------------------------------------------------------ fault plane
    def handle_fault(self, node_id: int, time_hours: float = 0.0) -> float | None:
        """Process a node failure.

        Returns the bypass reconfiguration latency in microseconds when the
        node belonged to a ring that could be healed, ``None`` otherwise
        (free node, or the ring broke).
        """
        node = self.nodes[node_id]
        if node.failed:
            return None
        node.fail()
        self.events.append(ControlEvent(time_hours, "fault", f"node {node_id} failed"))

        ring = self.ring_of(node_id)
        if ring is None or ring.state is RingState.RELEASED:
            return None
        if ring.state is RingState.BROKEN:
            # A broken ring is already unusable; just account the lost node.
            self._node_to_ring.pop(node_id, None)
            if node_id in ring.node_ids:
                ring.node_ids.remove(node_id)
            return None
        return self._heal_ring(ring, node_id, time_hours)

    def handle_repair(self, node_id: int, time_hours: float = 0.0) -> None:
        """Process a node repair: the node returns to the free pool."""
        node = self.nodes[node_id]
        if not node.failed:
            return
        node.repair()
        self._node_to_ring.pop(node_id, None)
        self.events.append(ControlEvent(time_hours, "repair", f"node {node_id} repaired"))

    # ------------------------------------------------------------ trace replay
    def replay_trace(self, trace: FaultTrace, tp_size: int) -> ReplaySummary:
        """Replay a fault trace against an initial full allocation."""
        if trace.n_nodes < self.n_nodes:
            raise ValueError("trace covers fewer nodes than the cluster")
        self.allocate_rings(tp_size)
        total_rings = max(1, len(self.active_rings()))

        changes: list[tuple[float, str, int]] = []
        for event in trace.events:
            if event.node_id >= self.n_nodes:
                continue
            changes.append((event.start_hour, "fault", event.node_id))
            changes.append((event.end_hour, "repair", event.node_id))
        changes.sort(key=lambda c: c[0])

        faults = repairs = bypasses = 0
        availability_samples: list[float] = []
        for time_hours, kind, node_id in changes:
            if kind == "fault":
                faults += 1
                latency = self.handle_fault(node_id, time_hours)
                if latency is not None:
                    bypasses += 1
            else:
                repairs += 1
                self.handle_repair(node_id, time_hours)
            healthy_rings = sum(
                1 for r in self.rings.values()
                if r.state in (RingState.ACTIVE, RingState.DEGRADED)
            )
            availability_samples.append(healthy_rings / total_rings)

        broken = sum(1 for r in self.rings.values() if r.state is RingState.BROKEN)
        mean_availability = (
            sum(availability_samples) / len(availability_samples)
            if availability_samples
            else 1.0
        )
        return ReplaySummary(
            fault_events=faults,
            repair_events=repairs,
            bypass_reconfigurations=bypasses,
            broken_rings=broken,
            total_switch_time_us=self.total_switch_time_us(),
            mean_ring_availability=mean_availability,
        )

    # -------------------------------------------------------------- internals
    def _program_ring(
        self, node_ids: Sequence[int], tp_size: int, time_hours: float
    ) -> RingAssignment:
        latencies: list[float] = []
        for position, node_id in enumerate(node_ids):
            manager = self.fabric_managers[node_id]
            is_head = position == 0
            is_tail = position == len(node_ids) - 1
            if is_head and is_tail:
                latencies.append(manager.configure(NodeRole.SOLO))
            elif is_head:
                latencies.append(
                    manager.configure(NodeRole.HEAD, right_peer=node_ids[position + 1])
                )
            elif is_tail:
                latencies.append(
                    manager.configure(NodeRole.TAIL, left_peer=node_ids[position - 1])
                )
            else:
                latencies.append(
                    manager.configure(
                        NodeRole.MIDDLE,
                        left_peer=node_ids[position - 1],
                        right_peer=node_ids[position + 1],
                    )
                )
        ring = RingAssignment(
            ring_id=self._next_ring_id,
            tp_size=tp_size,
            node_ids=list(node_ids),
            state=RingState.ACTIVE,
        )
        self.rings[ring.ring_id] = ring
        self._next_ring_id += 1
        for node_id in node_ids:
            self._node_to_ring[node_id] = ring.ring_id
        self.events.append(
            ControlEvent(
                time_hours,
                "allocate",
                f"ring {ring.ring_id} over nodes {list(node_ids)}",
                latency_us=max(latencies) if latencies else 0.0,
            )
        )
        return ring

    def _heal_ring(
        self, ring: RingAssignment, failed_node: int, time_hours: float
    ) -> float | None:
        """Bypass ``failed_node`` inside ``ring`` if the K-hop reach allows it."""
        index = ring.node_ids.index(failed_node)
        left_index = index - 1
        right_index = index + 1
        self._node_to_ring.pop(failed_node, None)
        remaining = [n for n in ring.node_ids if n != failed_node]

        if len(remaining) == 0:
            ring.state = RingState.BROKEN
            ring.node_ids = []
            self.events.append(
                ControlEvent(time_hours, "break", f"ring {ring.ring_id} lost its last node")
            )
            return None

        latencies: list[float] = []
        if 0 <= left_index and right_index < len(ring.node_ids):
            left_node = ring.node_ids[left_index]
            right_node = ring.node_ids[right_index]
            if not self.topology.has_link(left_node, right_node):
                ring.state = RingState.BROKEN
                ring.node_ids = remaining
                self.events.append(
                    ControlEvent(
                        time_hours,
                        "break",
                        f"ring {ring.ring_id}: nodes {left_node} and {right_node} "
                        f"are beyond K hops after node {failed_node} failed",
                    )
                )
                return None
            latencies.append(self.fabric_managers[left_node].bypass_right(right_node))
            latencies.append(self.fabric_managers[right_node].bypass_left(left_node))
        else:
            # The failed node was the head or tail: its single neighbour
            # becomes the new endpoint (loopback on the outward side).
            neighbour_index = right_index if left_index < 0 else left_index
            neighbour = ring.node_ids[neighbour_index]
            manager = self.fabric_managers[neighbour]
            if len(remaining) == 1:
                latencies.append(manager.configure(NodeRole.SOLO))
            elif left_index < 0:
                latencies.append(
                    manager.configure(
                        NodeRole.HEAD,
                        right_peer=manager.configuration.right_peer,
                    )
                )
            else:
                latencies.append(
                    manager.configure(
                        NodeRole.TAIL,
                        left_peer=manager.configuration.left_peer,
                    )
                )

        ring.node_ids = remaining
        ring.state = RingState.DEGRADED
        latency = max(latencies) if latencies else 0.0
        self.events.append(
            ControlEvent(
                time_hours,
                "bypass",
                f"ring {ring.ring_id} healed around node {failed_node}",
                latency_us=latency,
            )
        )
        return latency
