"""InfiniteHBD control plane (section 5.2).

The paper's prototype includes a two-level control plane:

* the **node fabric manager** configures the OCSTrx modules of one node and
  performs topology switching for that node
  (:mod:`repro.control.fabric_manager`);
* the **cluster manager** coordinates global control: it allocates TP rings
  for jobs, reacts to node faults by driving the affected fabric managers to
  bypass the failed node over backup links, and re-forms rings when a bypass
  is impossible (:mod:`repro.control.cluster_manager`).

The control plane operates on the same :class:`~repro.core.node.Node` /
:class:`~repro.hardware.ocstrx.OCSTrxBundle` objects as the ring builder, so
reconfiguration latency and path states are tracked end to end.
"""

from repro.control.fabric_manager import NodeFabricManager, NodeRole
from repro.control.cluster_manager import (
    ClusterManager,
    ControlEvent,
    RingAssignment,
    RingState,
)

__all__ = [
    "NodeFabricManager",
    "NodeRole",
    "ClusterManager",
    "ControlEvent",
    "RingAssignment",
    "RingState",
]
