"""Pluggable node-placement policies for the cluster scheduler.

In placed mode every running job holds a concrete set of node ids, carved
out of the architecture's placement domains
(:meth:`repro.hbd.base.HBDArchitecture.placement_groups`: rings for
SiP-Ring, cubes for TPUv4, units for NVL, healthy segments for InfiniteHBD,
one flat domain for Big-Switch).  The architecture decides *where* a TP
group may live; the placement policy only decides *which* domain to fill
first when several could host the job:

* :class:`PackedPlacement` -- best-fit: fill the domains with the fewest
  free slots first, keeping large contiguous holes open for large jobs (and
  concentrating a job's blast radius in few domains);
* :class:`SpreadPlacement` -- worst-fit: spread TP groups across the
  emptiest domains, trading fragmentation for a lower chance that a single
  domain fault takes out many of one job's nodes.

Both are deterministic: ties always break on the domain index, and nodes
within a domain are handed out lowest-id-first, so a seeded replay is
byte-for-byte reproducible.  ``placement_by_name`` resolves the spec / CLI
names with difflib suggestions, matching the scheduling-policy ergonomics.
"""

from __future__ import annotations

import abc
import difflib


class PlacementPolicy(abc.ABC):
    """Domain-preference order for node-level job placement.

    Subclasses order ``(free_slots, domain_index)`` candidates in place; the
    engine fills domains in that order until the job's TP groups are all
    placed (or fails without side effects when they cannot be).

    >>> candidates = [(3, 0), (1, 1), (3, 2)]
    >>> PackedPlacement().order(candidates); candidates
    [(1, 1), (3, 0), (3, 2)]
    >>> candidates = [(3, 0), (1, 1), (3, 2)]
    >>> SpreadPlacement().order(candidates); candidates
    [(3, 0), (3, 2), (1, 1)]
    """

    #: Spec / CLI name of the placement policy.
    name: str = "abstract"

    #: Fast path: when set to ``"ascending"`` / ``"descending"``, the engine
    #: walks its per-slot-count domain bands directly in that order (index
    #: order within a band) instead of materialising and sorting the full
    #: candidate list -- equivalent to :meth:`order` for the built-ins.
    #: Custom policies leave it ``None`` and get the generic sorted path.
    bands: str | None = None

    @abc.abstractmethod
    def order(self, candidates: list[tuple[int, int]]) -> None:
        """Sort ``(free_slots, domain_index)`` pairs into fill order.

        ``free_slots`` is the number of TP groups the domain can still
        host.  Every ordering must break ties on the domain index (the
        architecture's deterministic domain order) so placement stays
        seed-reproducible.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name})"


class PackedPlacement(PlacementPolicy):
    """Best-fit: fill the fullest domains first (fewest free slots)."""

    name = "packed"
    bands = "ascending"

    def order(self, candidates: list[tuple[int, int]]) -> None:
        candidates.sort()


class SpreadPlacement(PlacementPolicy):
    """Worst-fit: spread TP groups over the emptiest domains first."""

    name = "spread"
    bands = "descending"

    def order(self, candidates: list[tuple[int, int]]) -> None:
        candidates.sort(key=lambda candidate: (-candidate[0], candidate[1]))


_PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    PackedPlacement.name: PackedPlacement,
    SpreadPlacement.name: SpreadPlacement,
}

#: Spec / CLI names of the built-in placement policies, in presentation order.
PLACEMENT_NAMES: tuple[str, ...] = tuple(_PLACEMENTS)


def placement_by_name(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by its spec name.

    >>> placement_by_name("packed")
    PackedPlacement(packed)
    >>> placement_by_name("SPREAD").name   # case-insensitive
    'spread'
    """
    key = name.strip().lower()
    cls = _PLACEMENTS.get(key)
    if cls is None:
        close = difflib.get_close_matches(key, _PLACEMENTS, n=2)
        hint = f"; did you mean {close}?" if close else ""
        raise KeyError(
            f"unknown placement policy {name!r}; known: {list(_PLACEMENTS)}{hint}"
        )
    return cls()


__all__ = [
    "PLACEMENT_NAMES",
    "PackedPlacement",
    "PlacementPolicy",
    "SpreadPlacement",
    "placement_by_name",
]
