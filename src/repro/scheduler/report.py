"""Cluster-level outcome of one scheduler run.

:class:`ClusterReport` aggregates the per-job :class:`~repro.scheduler.jobs.
JobReport` records into the workload-level metrics the multi-job evaluation
is about: makespan, the JCT distribution, queueing delay, cluster goodput
(productive GPU-hours over the GPU-hours the cluster offered while the
workload was in flight), and finish-time fairness (the per-job slowdown
``rho`` with its max / mean and Jain's index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.scheduler.jobs import JobReport


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate outcome of replaying one workload on one architecture.

    >>> from repro.faults.trace import FaultTrace
    >>> from repro.hbd import BigSwitchHBD
    >>> from repro.scheduler.engine import ClusterScheduler
    >>> from repro.scheduler.jobs import JobSpec
    >>> trace = FaultTrace(n_nodes=8, duration_days=1, events=[], gpus_per_node=4)
    >>> jobs = [JobSpec(name=f"j{i}", gpus=16, tp_size=4, work_hours=2.0,
    ...                 submit_hour=float(i)) for i in range(3)]
    >>> report = ClusterScheduler(
    ...     BigSwitchHBD(4), trace.interval_timeline(), jobs).run()
    >>> (report.n_jobs, report.finished_jobs, report.all_finished)
    (3, 3, True)
    >>> report.makespan_hours   # two jobs always run side by side
    4.0
    >>> report.mean_jct_hours
    2.0
    >>> report.cluster_goodput  # 3 jobs x 2h x 16 GPUs / (32 GPUs x 4h)
    0.75
    """

    jobs: tuple[JobReport, ...]
    n_nodes: int
    total_gpus: int
    policy: str
    preemptive: bool
    horizon_hours: float
    #: Placement-policy name in placed mode, None for expected-value replay.
    placement: str | None = None
    #: Whether EASY backfilling past a blocked head was enabled.
    backfill: bool = False
    #: Fault transitions that brought down at least one new node (placed mode).
    fault_events: int = 0
    #: Running jobs descheduled by a direct fault hit, summed over transitions.
    jobs_killed: int = 0
    #: Most jobs any single fault transition descheduled at once.
    max_blast_radius: int = 0

    # ------------------------------------------------------------ population
    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def finished_jobs(self) -> int:
        return sum(1 for job in self.jobs if job.finished)

    @property
    def all_finished(self) -> bool:
        return self.finished_jobs == self.n_jobs

    # -------------------------------------------------------------- makespan
    @property
    def makespan_hours(self) -> float:
        """First submission to the last completion (or the horizon).

        Only jobs that actually entered the system count: a job submitted
        after the horizon never existed as far as the replay is concerned,
        so it must not stretch the makespan (or dilute the goodput
        denominator).
        """
        entered = [
            job for job in self.jobs
            if job.finished or job.end_hour > job.submit_hour
        ]
        if not entered:
            return 0.0
        start = min(job.submit_hour for job in entered)
        end = max(job.end_hour for job in entered)
        return end - start

    # ------------------------------------------------------------------- JCT
    def jct_hours(self) -> list[float]:
        """Completion times of the finished jobs, in submission order."""
        return [job.jct_hours for job in self.jobs if job.jct_hours is not None]

    @property
    def mean_jct_hours(self) -> float:
        jcts = self.jct_hours()
        return float(np.mean(jcts)) if jcts else 0.0

    @property
    def p50_jct_hours(self) -> float:
        jcts = self.jct_hours()
        return float(np.percentile(jcts, 50)) if jcts else 0.0

    @property
    def p99_jct_hours(self) -> float:
        jcts = self.jct_hours()
        return float(np.percentile(jcts, 99)) if jcts else 0.0

    # -------------------------------------------------------------- queueing
    def queueing_delays_hours(self) -> list[float]:
        """Submit-to-first-start delays of the jobs that ever ran."""
        return [
            job.queueing_delay_hours
            for job in self.jobs
            if job.queueing_delay_hours is not None
        ]

    @property
    def mean_queueing_delay_hours(self) -> float:
        delays = self.queueing_delays_hours()
        return float(np.mean(delays)) if delays else 0.0

    @property
    def p99_queueing_delay_hours(self) -> float:
        delays = self.queueing_delays_hours()
        return float(np.percentile(delays, 99)) if delays else 0.0

    # --------------------------------------------------------------- goodput
    @property
    def productive_gpu_hours(self) -> float:
        return sum(job.productive_hours * job.gpus for job in self.jobs)

    @property
    def restart_gpu_hours(self) -> float:
        return sum(job.restart_hours * job.gpus for job in self.jobs)

    @property
    def cluster_goodput(self) -> float:
        """Productive GPU-hours over the cluster GPU-hours of the makespan."""
        span = self.makespan_hours
        if span <= 0 or self.total_gpus == 0:
            return 0.0
        return self.productive_gpu_hours / (self.total_gpus * span)

    @property
    def cluster_utilization(self) -> float:
        """Allocated (productive + restarting) share of the cluster GPU-hours."""
        span = self.makespan_hours
        if span <= 0 or self.total_gpus == 0:
            return 0.0
        busy = self.productive_gpu_hours + self.restart_gpu_hours
        return busy / (self.total_gpus * span)

    # -------------------------------------------------------------- fairness
    def finish_time_fairness(self) -> list[float]:
        """Per-job rho = JCT / ideal JCT, for the finished bounded jobs."""
        return [
            rho
            for rho in (job.finish_time_fairness for job in self.jobs)
            if rho is not None
        ]

    @property
    def mean_finish_time_fairness(self) -> float:
        rhos = self.finish_time_fairness()
        return float(np.mean(rhos)) if rhos else 0.0

    @property
    def max_finish_time_fairness(self) -> float:
        rhos = self.finish_time_fairness()
        return float(max(rhos)) if rhos else 0.0

    @property
    def jain_fairness_index(self) -> float:
        """Jain's index over the per-job rho values.

        ``(sum rho)^2 / (n * sum rho^2)`` -- 1.0 when every job suffers the
        same slowdown, towards ``1/n`` when one job absorbs all of it; 0.0
        when no job finished (no data).
        """
        rhos = self.finish_time_fairness()
        if not rhos:
            return 0.0
        total = sum(rhos)
        squares = sum(rho * rho for rho in rhos)
        return (total * total) / (len(rhos) * squares)

    # ---------------------------------------------------------- blast radius
    @property
    def mean_blast_radius(self) -> float:
        """Jobs descheduled per fault transition (0.0 when no transitions)."""
        if self.fault_events == 0:
            return 0.0
        return self.jobs_killed / self.fault_events

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "preemptive": self.preemptive,
            "placement": self.placement,
            "backfill": self.backfill,
            "n_nodes": self.n_nodes,
            "total_gpus": self.total_gpus,
            "horizon_hours": self.horizon_hours,
            "makespan_hours": self.makespan_hours,
            "n_jobs": self.n_jobs,
            "finished_jobs": self.finished_jobs,
            "mean_jct_hours": self.mean_jct_hours,
            "p50_jct_hours": self.p50_jct_hours,
            "p99_jct_hours": self.p99_jct_hours,
            "mean_queueing_delay_hours": self.mean_queueing_delay_hours,
            "p99_queueing_delay_hours": self.p99_queueing_delay_hours,
            "cluster_goodput": self.cluster_goodput,
            "cluster_utilization": self.cluster_utilization,
            "mean_finish_time_fairness": self.mean_finish_time_fairness,
            "max_finish_time_fairness": self.max_finish_time_fairness,
            "jain_fairness_index": self.jain_fairness_index,
            "fault_events": self.fault_events,
            "jobs_killed": self.jobs_killed,
            "max_blast_radius": self.max_blast_radius,
            "mean_blast_radius": self.mean_blast_radius,
            "jobs": [job.to_dict() for job in self.jobs],
        }


__all__ = ["ClusterReport"]
