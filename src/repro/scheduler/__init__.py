"""Multi-job cluster scheduling over the exact fault timeline.

This package turns the per-architecture metric replays into a cluster
workload simulator: a queue of jobs (Poisson arrivals, heavy-tailed sizes
and durations) competes for the piecewise-constant usable capacity that an
HBD architecture preserves under faults.

* :mod:`repro.scheduler.jobs` -- :class:`JobSpec` (frozen job description)
  and :class:`JobReport` (per-job outcome; productive + waiting + restart
  hours partition the job's wall-clock time).
* :mod:`repro.scheduler.policies` -- pluggable policies: FIFO,
  smallest-job-first, shortest-remaining-work, Tiresias-style Gittins
  attained-service queues, Horus-style k-job look-ahead scoring and an
  AdaptDL-style global re-allocation optimizer, each with or without
  preemption.
* :mod:`repro.scheduler.placement` -- node-placement policies (packed /
  spread) for placed mode, where jobs hold concrete node ids and fault
  hits are deterministic.
* :mod:`repro.scheduler.engine` -- :class:`ClusterScheduler`, the
  event-driven sweep merging fault-interval boundaries with job events,
  with optional node-level placement and EASY backfill.
* :mod:`repro.scheduler.workload` -- the synthetic workload generator.
* :mod:`repro.scheduler.report` -- :class:`ClusterReport` (makespan, JCT
  distribution, queueing delay, cluster goodput).

The single-job goodput replay (:class:`repro.simulation.goodput.
GoodputSimulator`) is a thin wrapper over this engine.
"""

from repro.scheduler.engine import ClusterScheduler, schedule_comparison
from repro.scheduler.jobs import JobReport, JobSpec
from repro.scheduler.placement import (
    PLACEMENT_NAMES,
    PackedPlacement,
    PlacementPolicy,
    SpreadPlacement,
    placement_by_name,
)
from repro.scheduler.policies import (
    FifoPolicy,
    GittinsPolicy,
    LookaheadPolicy,
    OptimizerPolicy,
    POLICY_NAMES,
    SchedulingPolicy,
    ShortestRemainingPolicy,
    SmallestFirstPolicy,
    policy_by_name,
)
from repro.scheduler.report import ClusterReport
from repro.scheduler.workload import WorkloadConfig, generate_workload

__all__ = [
    "ClusterReport",
    "ClusterScheduler",
    "FifoPolicy",
    "GittinsPolicy",
    "JobReport",
    "JobSpec",
    "LookaheadPolicy",
    "OptimizerPolicy",
    "PLACEMENT_NAMES",
    "POLICY_NAMES",
    "PackedPlacement",
    "PlacementPolicy",
    "SchedulingPolicy",
    "ShortestRemainingPolicy",
    "SmallestFirstPolicy",
    "SpreadPlacement",
    "WorkloadConfig",
    "generate_workload",
    "placement_by_name",
    "policy_by_name",
    "schedule_comparison",
]
