"""Event-driven multi-job cluster scheduler over the exact fault timeline.

The single-job goodput replay asks "how does *one* job fare on this
architecture"; the cluster scheduler asks the question the paper's capacity
metrics ultimately serve: how much of a *queue* of jobs does an architecture
push through when faults keep reshaping the usable capacity?

:class:`ClusterScheduler` merges two event streams into one sweep:

* the fault-interval boundaries of the exact
  :class:`~repro.faults.timeline.IntervalTimeline` (the piecewise-constant
  capacity process), and
* job events -- arrivals, completions, restart-debt pay-off instants --
  which it derives on the fly.

Between consecutive events nothing changes, so every job's time is accounted
exactly: each in-system job is in exactly one of three states (waiting for
capacity, productively running, or restarting), and the engine's core
invariant is that the three buckets partition the job's wall-clock time.

Capacity comes from ``architecture.usable_gpus(n_nodes, faults, tp_size)``,
memoized per distinct ``(fault set, TP size)`` -- fault sets recur (most
often the empty set), so long traces cost O(distinct sets) breakdowns, not
O(events).  A set of running jobs is feasible when, for every job, the total
allocated GPU count fits within the usable capacity at that job's own TP
granularity; this is exact for single-TP workloads (the common case and the
goodput-compatibility case) and a documented approximation for mixed-TP
queues.

Fault handling matches the single-job goodput accounting so that
:class:`~repro.simulation.goodput.GoodputSimulator` is a thin wrapper over
this engine:

* faults already active at t=0 are pre-existing capacity loss, never charged
  as arrivals;
* a fault arrival charges every job allocated in the interval that starts at
  the boundary its *expected* share of the damage (``new_faults x job_gpus /
  cluster_gpus`` hits, each costing half a checkpoint interval plus the
  restart overhead) as restart *debt*, paid as wall-clock restart time
  before the job makes further progress;
* a job descheduled because the usable capacity can no longer host it at
  all simply waits (no extra charge -- the expected-damage charge above
  already accounts for the fault);
* a job that still fits but lost its slot to higher-priority work --
  policy preemption, or a capacity squeeze that displaced the
  lowest-priority job -- checkpoints on the way out and pays only the
  restart overhead when it resumes.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.faults.timeline import IntervalTimeline
from repro.hbd.base import HBDArchitecture
from repro.scheduler.jobs import JobReport, JobSpec
from repro.scheduler.policies import FifoPolicy, SchedulingPolicy
from repro.scheduler.report import ClusterReport

#: Tolerance for "this phase is over" comparisons on accumulated floats.
_EPS = 1e-9


class _JobRuntime:
    """Mutable per-job state while the sweep runs."""

    __slots__ = (
        "spec",
        "sequence",
        "remaining_work",
        "restart_debt",
        "productive",
        "waiting",
        "restart_time",
        "restart_charged",
        "impacting_faults",
        "preemptions",
        "first_start",
        "completion",
        "end",
        "in_system",
        "allocated",
    )

    def __init__(self, spec: JobSpec, sequence: int) -> None:
        self.spec = spec
        self.sequence = sequence
        self.remaining_work = math.inf if spec.work_hours is None else spec.work_hours
        self.restart_debt = 0.0
        self.productive = 0.0
        self.waiting = 0.0
        self.restart_time = 0.0
        self.restart_charged = 0.0
        self.impacting_faults = 0.0
        self.preemptions = 0
        self.first_start: Optional[float] = None
        self.completion: Optional[float] = None
        self.end: Optional[float] = None
        self.in_system = False
        self.allocated = False

    @property
    def done(self) -> bool:
        return self.completion is not None

    def report(self) -> JobReport:
        spec = self.spec
        end = self.end if self.end is not None else spec.submit_hour
        return JobReport(
            name=spec.name,
            gpus=spec.gpus,
            tp_size=spec.tp_size,
            submit_hour=spec.submit_hour,
            work_hours=spec.work_hours,
            first_start_hour=self.first_start,
            completion_hour=self.completion,
            end_hour=end,
            productive_hours=self.productive,
            waiting_hours=self.waiting,
            restart_hours=self.restart_time,
            restart_charged_hours=self.restart_charged,
            impacting_faults=self.impacting_faults,
            preemptions=self.preemptions,
        )


class ClusterScheduler:
    """Replay a queue of jobs against one architecture over the fault timeline.

    Parameters
    ----------
    architecture:
        The HBD architecture supplying ``usable_gpus``.
    timeline:
        The exact fault timeline of the trace (``trace.interval_timeline()``).
        Beyond the traced window the cluster is assumed fault-free.
    jobs:
        The workload.  Submission order is irrelevant; ties are broken by
        position in this sequence.
    policy:
        A :class:`~repro.scheduler.policies.SchedulingPolicy` (default:
        non-preemptive FIFO).
    horizon_hours:
        Hard stop of the simulation.  ``None`` (default) runs until every
        job completes -- which requires every job to fit the fault-free
        cluster and to have finite work.

    A 32-GPU cluster, one 10-hour fault on node 0, two jobs back to back:

    >>> from repro.faults.trace import FaultEvent, FaultTrace
    >>> from repro.hbd import BigSwitchHBD
    >>> from repro.scheduler.jobs import JobSpec
    >>> trace = FaultTrace(n_nodes=8, duration_days=2,
    ...                    events=[FaultEvent(0, 10.0, 20.0)], gpus_per_node=4)
    >>> jobs = [JobSpec(name="big", gpus=32, tp_size=4, work_hours=4.0),
    ...         JobSpec(name="small", gpus=8, tp_size=4, work_hours=2.0,
    ...                 submit_hour=1.0)]
    >>> report = ClusterScheduler(
    ...     BigSwitchHBD(4), trace.interval_timeline(), jobs).run()
    >>> [(job.name, job.finished) for job in report.jobs]
    [('big', True), ('small', True)]
    >>> report.jobs[1].waiting_hours   # queued behind "big" from t=1 to t=4
    3.0
    >>> report.makespan_hours
    6.0
    """

    def __init__(
        self,
        architecture: HBDArchitecture,
        timeline: IntervalTimeline,
        jobs: Sequence[JobSpec],
        policy: Optional[SchedulingPolicy] = None,
        horizon_hours: Optional[float] = None,
    ) -> None:
        if timeline.gpus_per_node != architecture.gpus_per_node:
            raise ValueError(
                f"timeline GPUs/node ({timeline.gpus_per_node}) must match the "
                f"architecture ({architecture.gpus_per_node})"
            )
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique within a workload")
        self.architecture = architecture
        self.timeline = timeline
        self.policy = policy if policy is not None else FifoPolicy()
        self.horizon_hours = horizon_hours
        self.n_nodes = timeline.n_nodes
        self.total_gpus = architecture.total_gpus(timeline.n_nodes)
        self.jobs: Tuple[JobSpec, ...] = tuple(jobs)
        for job in self.jobs:
            if job.gpus > self.total_gpus:
                raise ValueError(
                    f"job {job.name!r} ({job.gpus} GPUs) larger than the "
                    f"cluster ({self.total_gpus} GPUs)"
                )
        self._usable: Dict[Tuple[FrozenSet[int], int], int] = {}
        # Per-TP incremental replay states (architectures with an O(delta)
        # update): capacity queries arrive in sweep order, so each memo miss
        # advances the state by the few node events since the last query
        # instead of recomputing over the whole node set.
        self._delta_states: Dict[int, "object"] = {}

    # ------------------------------------------------------------- capacity
    def _capacity(self, faults: FrozenSet[int], tp_size: int) -> int:
        key = (faults, tp_size)
        usable = self._usable.get(key)
        if usable is None:
            if self.architecture.supports_delta:
                state = self._delta_states.get(tp_size)
                if state is None:
                    state = self.architecture.delta_state(
                        self.n_nodes, faults, tp_size
                    )
                elif state.faults != faults:
                    _, state = self.architecture.breakdown_delta(
                        state,
                        added_faults=faults - state.faults,
                        removed_faults=state.faults - faults,
                    )
                self._delta_states[tp_size] = state
                usable = state.usable
            else:
                usable = self.architecture.usable_gpus(
                    self.n_nodes, faults, tp_size
                )
            self._usable[key] = usable
        return usable

    def _validate_runs_to_completion(self) -> None:
        empty: FrozenSet[int] = frozenset()
        for job in self.jobs:
            if job.work_hours is None:
                raise ValueError(
                    f"job {job.name!r} has unbounded work; set horizon_hours"
                )
            if job.gpus > self._capacity(empty, job.tp_size):
                raise ValueError(
                    f"job {job.name!r} ({job.gpus} GPUs at TP-{job.tp_size}) "
                    f"cannot run even on the fault-free cluster; set "
                    f"horizon_hours to simulate it waiting forever"
                )

    # ----------------------------------------------------------- allocation
    def _select(
        self, in_system: List[_JobRuntime], faults: FrozenSet[int]
    ) -> Set[int]:
        """Greedy policy-ordered allocation; returns the selected sequences."""
        policy = self.policy

        def key(rt: _JobRuntime):
            return policy.priority_key(rt.spec, rt.remaining_work, rt.sequence)

        selected: Set[int] = set()
        used = 0
        if policy.preemptive:
            admission = sorted(in_system, key=key)
        else:
            # Running jobs outrank every queued job: only a capacity drop
            # (or completion) releases their allocation.  A running job the
            # capacity can no longer host falls back into the admission
            # queue at its priority position, so under a strict-order policy
            # it still blocks every younger job (no backfill past the
            # descheduled queue head).
            displaced: List[_JobRuntime] = []
            for rt in sorted((rt for rt in in_system if rt.allocated), key=key):
                if used + rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                    selected.add(rt.sequence)
                    used += rt.spec.gpus
                else:
                    displaced.append(rt)
            admission = sorted(
                [rt for rt in in_system if not rt.allocated] + displaced, key=key
            )
        for rt in admission:
            if used + rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                selected.add(rt.sequence)
                used += rt.spec.gpus
            elif policy.strict_order:
                break
        return selected

    # ------------------------------------------------------------ the sweep
    def run(self) -> ClusterReport:
        horizon = self.horizon_hours
        if horizon is None:
            self._validate_runs_to_completion()
        elif horizon <= 0:
            raise ValueError("horizon_hours must be positive")

        runtimes = [_JobRuntime(spec, i) for i, spec in enumerate(self.jobs)]
        pending = sorted(runtimes, key=lambda rt: (rt.spec.submit_hour, rt.sequence))
        pending_index = 0
        in_system: List[_JobRuntime] = []
        unfinished = len(runtimes)

        intervals = self.timeline.intervals
        interval_index = 0
        empty: FrozenSet[int] = frozenset()
        faults: FrozenSet[int] = intervals[0].nodes if intervals else empty

        def settle_completions(now: float) -> None:
            """Mark allocated jobs whose work and restart debt are both done."""
            nonlocal unfinished, in_system
            for rt in in_system:
                if rt.allocated and rt.restart_debt <= _EPS and rt.remaining_work <= _EPS:
                    rt.restart_debt = 0.0
                    rt.remaining_work = 0.0
                    rt.completion = now
                    rt.end = now
                    rt.allocated = False
                    rt.in_system = False
                    unfinished -= 1
            in_system = [rt for rt in in_system if rt.in_system]

        t = 0.0
        while unfinished:
            if horizon is not None and t >= horizon:
                break

            # ---------------------------------------------- next event time
            t_next = math.inf
            if interval_index < len(intervals):
                t_next = intervals[interval_index].end_hour
            if pending_index < len(pending):
                t_next = min(t_next, pending[pending_index].spec.submit_hour)
            for rt in in_system:
                if not rt.allocated:
                    continue
                if rt.restart_debt > _EPS:
                    t_next = min(t_next, t + rt.restart_debt)
                elif rt.remaining_work < math.inf:
                    t_next = min(t_next, t + rt.remaining_work)
            if horizon is not None:
                t_next = min(t_next, horizon)
            if not math.isfinite(t_next):
                stuck = [rt.spec.name for rt in runtimes if not rt.done]
                raise RuntimeError(
                    f"scheduler stalled with unfinished jobs {stuck}; no "
                    f"event can ever unblock them"
                )

            # --------------------------------------------------- accrue time
            dt = t_next - t
            if dt > 0:
                for rt in in_system:
                    if not rt.allocated:
                        rt.waiting += dt
                    elif rt.restart_debt > _EPS:
                        rt.restart_debt = max(0.0, rt.restart_debt - dt)
                        rt.restart_time += dt
                    else:
                        rt.productive += dt
                        rt.remaining_work -= dt
            t = t_next
            if horizon is not None and t >= horizon:
                # Work finishing exactly at the horizon still counts as a
                # completion before the replay is cut off.
                settle_completions(t)
                break

            # ----------------------------------------- fault-set transition
            new_faults: FrozenSet[int] = empty
            while (
                interval_index < len(intervals)
                and intervals[interval_index].end_hour <= t
            ):
                previous = faults
                interval_index += 1
                faults = (
                    intervals[interval_index].nodes
                    if interval_index < len(intervals)
                    else empty
                )
                new_faults = faults - previous

            # ------------------------------------------------------ arrivals
            while (
                pending_index < len(pending)
                and pending[pending_index].spec.submit_hour <= t
            ):
                rt = pending[pending_index]
                rt.in_system = True
                in_system.append(rt)
                pending_index += 1

            # --------------------------------------------------- completions
            settle_completions(t)

            # -------------------------------------------------- reallocation
            selected = self._select(in_system, faults)
            for rt in in_system:
                now_allocated = rt.sequence in selected
                if rt.allocated and not now_allocated:
                    # Classify the eviction per job, independent of whether a
                    # fault boundary shares the timestamp: a job the current
                    # capacity could not host at all just waits (matching the
                    # single-job goodput accounting), while a job that still
                    # fits but lost its slot to higher-priority work was
                    # preempted -- it checkpoints on the way out and pays the
                    # restart overhead when it resumes.
                    if rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                        rt.preemptions += 1
                        rt.restart_debt += rt.spec.restart_overhead_hours
                        rt.restart_charged += rt.spec.restart_overhead_hours
                if now_allocated and rt.first_start is None:
                    rt.first_start = t
                rt.allocated = now_allocated

            # ------------------------------------------- fault restart debt
            if new_faults:
                arrivals = len(new_faults)
                for rt in in_system:
                    if not rt.allocated:
                        continue
                    spec = rt.spec
                    expected_hits = arrivals * spec.gpus / self.total_gpus
                    debt = expected_hits * (
                        spec.checkpoint_interval_hours / 2.0
                        + spec.restart_overhead_hours
                    )
                    rt.impacting_faults += expected_hits
                    rt.restart_debt += debt
                    rt.restart_charged += debt

        # ------------------------------------------------------- wind down
        end_hour = t if horizon is None else horizon
        for rt in runtimes:
            if rt.done:
                continue
            if rt.in_system:
                rt.end = end_hour
            else:
                # Never entered the system (submitted after the horizon).
                rt.end = rt.spec.submit_hour

        return ClusterReport(
            jobs=tuple(rt.report() for rt in runtimes),
            n_nodes=self.n_nodes,
            total_gpus=self.total_gpus,
            policy=self.policy.name,
            preemptive=self.policy.preemptive,
            horizon_hours=end_hour if horizon is None else horizon,
        )


def schedule_comparison(
    architectures: Sequence[HBDArchitecture],
    timeline: IntervalTimeline,
    jobs: Sequence[JobSpec],
    policy: Optional[SchedulingPolicy] = None,
    horizon_hours: Optional[float] = None,
) -> Dict[str, ClusterReport]:
    """Replay the same workload across several architectures.

    >>> from repro.faults.trace import FaultTrace
    >>> from repro.hbd import BigSwitchHBD, NVLHBD
    >>> from repro.scheduler.jobs import JobSpec
    >>> trace = FaultTrace(n_nodes=18, duration_days=1, events=[], gpus_per_node=4)
    >>> reports = schedule_comparison(
    ...     [BigSwitchHBD(4), NVLHBD(36, 4)], trace.interval_timeline(),
    ...     [JobSpec(name="j", gpus=64, tp_size=32, work_hours=3.0)])
    >>> sorted((name, report.finished_jobs) for name, report in reports.items())
    [('Big-Switch', 1), ('NVL-36', 1)]
    """
    return {
        arch.name: ClusterScheduler(
            arch, timeline, jobs, policy=policy, horizon_hours=horizon_hours
        ).run()
        for arch in architectures
    }


__all__ = ["ClusterScheduler", "schedule_comparison"]
