"""Event-driven multi-job cluster scheduler over the exact fault timeline.

The single-job goodput replay asks "how does *one* job fare on this
architecture"; the cluster scheduler asks the question the paper's capacity
metrics ultimately serve: how much of a *queue* of jobs does an architecture
push through when faults keep reshaping the usable capacity?

:class:`ClusterScheduler` merges two event streams into one sweep:

* the fault-interval boundaries of the exact
  :class:`~repro.faults.timeline.IntervalTimeline` (the piecewise-constant
  capacity process), and
* job events -- arrivals, completions, restart-debt pay-off instants --
  which it derives on the fly.

Between consecutive events nothing changes, so every job's time is accounted
exactly: each in-system job is in exactly one of three states (waiting for
capacity, productively running, or restarting), and the engine's core
invariant is that the three buckets partition the job's wall-clock time.

The engine runs in one of two capacity models:

**Expected-value mode** (``placement=None``, the default, and the model the
single-job :class:`~repro.simulation.goodput.GoodputSimulator` wraps):
capacity comes from ``architecture.usable_gpus(n_nodes, faults, tp_size)``,
memoized per distinct ``(fault set, TP size)``.  Jobs hold GPU *counts*, not
nodes, so a fault arrival charges every allocated job its *expected* share
of the damage (``new_faults x job_gpus / cluster_gpus`` hits, each costing
half a checkpoint interval plus the restart overhead) as restart *debt*,
paid as wall-clock restart time before the job makes further progress:

* faults already active at t=0 are pre-existing capacity loss, never charged
  as arrivals;
* a job descheduled because the usable capacity can no longer host it at
  all simply waits (no extra charge -- the expected-damage charge above
  already accounts for the fault);
* a job that still fits but lost its slot to higher-priority work --
  policy preemption, or a capacity squeeze that displaced the
  lowest-priority job -- checkpoints on the way out and pays only the
  restart overhead when it resumes.

**Placed mode** (``placement=`` a
:class:`~repro.scheduler.placement.PlacementPolicy` or its name): every
running job holds a concrete, deterministic set of node ids carved out of
the architecture's placement domains
(:meth:`~repro.hbd.base.HBDArchitecture.placement_groups` -- rings, cubes,
units, healthy segments, or one flat domain for Big-Switch).  A fault
interval then deschedules exactly the jobs whose held nodes went down:
each direct hit charges half a checkpoint interval plus the restart
overhead (``impacting_faults`` counts real hits, not expectations), the
job's nodes are released, and it re-enters the queue at its policy
priority.  Jobs whose nodes survived are untouched -- there is no
expected-value broadcast charge, and under non-preemptive policies no
capacity squeeze can move a running job (its concrete nodes are healthy).
Placement is node-granular (each TP group occupies whole
nodes inside one domain), so the placed capacity equals the expected-value
capacity whenever the TP size is a multiple of the node size (every
evaluated configuration) and is a conservative lower bound otherwise.  A
job that stays allocated but is moved to different nodes by a preemptive
policy pays the restart overhead for the migration; a job a preemptive
reshuffle leaves unplaceable after a capacity drop waits uncharged, like
the expected-value engine's squeezed jobs.

**Backfill** (``backfill=True``): under a strict-order policy (FIFO), a job
that does not fit normally blocks every job behind it.  With backfill
enabled the engine computes an EASY-style reservation for the blocked head
-- the earliest instant the head could start if the current fault interval
lasted (``shadow``) and the capacity left over at that instant (``extra``)
-- and lets later jobs jump the queue only when they fit now *and* either
finish before ``shadow`` or fit inside ``extra``, so the head's projected
start is never delayed.  Non-strict policies skip blocked jobs anyway, so
the flag is a no-op for them.

**Policy machinery**: jobs are ranked through
:meth:`~repro.scheduler.policies.SchedulingPolicy.runtime_key`, which sees
each job's attained service, waiting time and allocation state, so
history-aware policies (Gittins attained-service queues, the optimizer's
stability bonus) plug into the same greedy walk.  Policies flagged
``dynamic_priority`` additionally get wake-up events at their exact
demotion/promotion crossings, and policies with a ``lookahead_k`` window
replace the admission walk with a k-job look-ahead that scores every
fitting window candidate and admits the best one (dry-run placement plans
in placed mode).
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence
from typing import Any

from repro.faults.timeline import IntervalTimeline
from repro.hbd.base import DeltaReplayState, HBDArchitecture, PlacementGroup
from repro.scheduler.jobs import JobReport, JobSpec
from repro.scheduler.placement import PlacementPolicy, placement_by_name
from repro.scheduler.policies import FifoPolicy, SchedulingPolicy
from repro.scheduler.report import ClusterReport

#: Tolerance for "this phase is over" comparisons on accumulated floats.
_EPS = 1e-9


class _JobRuntime:
    """Mutable per-job state while the sweep runs."""

    __slots__ = (
        "spec",
        "sequence",
        "remaining_work",
        "restart_debt",
        "productive",
        "waiting",
        "restart_time",
        "restart_charged",
        "impacting_faults",
        "preemptions",
        "first_start",
        "completion",
        "end",
        "in_system",
        "allocated",
        "nodes",
    )

    def __init__(self, spec: JobSpec, sequence: int) -> None:
        self.spec = spec
        self.sequence = sequence
        self.remaining_work = math.inf if spec.work_hours is None else spec.work_hours
        self.restart_debt = 0.0
        self.productive = 0.0
        self.waiting = 0.0
        self.restart_time = 0.0
        self.restart_charged = 0.0
        self.impacting_faults = 0.0
        self.preemptions = 0
        self.first_start: float | None = None
        self.completion: float | None = None
        self.end: float | None = None
        self.in_system = False
        self.allocated = False
        self.nodes: frozenset[int] = frozenset()

    @property
    def done(self) -> bool:
        return self.completion is not None

    def report(self) -> JobReport:
        spec = self.spec
        end = self.end if self.end is not None else spec.submit_hour
        return JobReport(
            name=spec.name,
            gpus=spec.gpus,
            tp_size=spec.tp_size,
            submit_hour=spec.submit_hour,
            work_hours=spec.work_hours,
            first_start_hour=self.first_start,
            completion_hour=self.completion,
            end_hour=end,
            productive_hours=self.productive,
            waiting_hours=self.waiting,
            restart_hours=self.restart_time,
            restart_charged_hours=self.restart_charged,
            impacting_faults=self.impacting_faults,
            preemptions=self.preemptions,
        )


class _TpPlacementState:
    """Free-node bookkeeping for one TP size under one fault set.

    Rebuilt on every fault transition; domains whose ``PlacementGroup``
    object survived the transition (architectures keep untouched domains
    identity-stable, e.g. NVL units without faults) carry their free lists
    over, so a rebuild costs O(changed domains), not O(n_nodes).
    """

    __slots__ = (
        "faults", "groups", "free", "avail", "avail_total", "npg",
        "node_group", "buckets",
    )

    def __init__(
        self,
        faults: frozenset[int],
        groups: tuple[PlacementGroup, ...],
        held: set[int],
        prior: _TpPlacementState | None = None,
    ) -> None:
        self.faults = faults
        self.groups = groups
        self.npg: list[int] = [group.nodes_per_group for group in groups]
        prior_of: list[PlacementGroup] | None = None
        prior_index: dict[int, int] = {}
        if prior is not None and len(prior.groups) == len(groups):
            # Positions are identity-stable for architectures that patch
            # only the touched domains (NVL units); fall back to an id map
            # when the domain count shifted (segments splitting, etc.).
            prior_of = list(prior.groups)
        elif prior is not None:
            prior_index = {id(group): i for i, group in enumerate(prior.groups)}
        self.free: list[list[int]] = []
        self.avail: list[int] = []
        for index, group in enumerate(groups):
            j = (
                prior_index.get(id(group))
                if prior_of is None
                else (index if prior_of[index] is group else None)
            )
            if j is not None and prior is not None:
                # Same domain object => same healthy membership, and stale
                # states were kept in step with the held set by
                # ``_placed_sync``, so the old free list is still exact.
                self.free.append(prior.free[j])
                self.avail.append(prior.avail[j])
            else:
                free = [node for node in group.nodes if node not in held]
                self.free.append(free)
                self.avail.append(len(free) // self.npg[index])
        self.avail_total = sum(self.avail)
        # Slot-count bands: slots -> ascending domain indices, the iteration
        # structure behind banded placement policies.
        self.buckets: dict[int, list[int]] = {}
        for index, slots in enumerate(self.avail):
            self.buckets.setdefault(slots, []).append(index)
        if prior_of is not None:
            # Positional identity: indices are unchanged, so only the
            # domains that were replaced need their entries refreshed (the
            # prior state is discarded, so adopting its dict is safe).
            self.node_group: dict[int, int] = prior.node_group
            for index, group in enumerate(groups):
                if prior_of[index] is not group:
                    for node in group.nodes:
                        self.node_group[node] = index
        else:
            self.node_group = {
                node: index
                for index, group in enumerate(groups)
                for node in group.nodes
            }

    def set_avail(self, index: int, slots: int) -> None:
        """Move a domain to its new slot band and update the totals."""
        old = self.avail[index]
        if slots == old:
            return
        bucket = self.buckets[old]
        del bucket[bisect.bisect_left(bucket, index)]
        bisect.insort(self.buckets.setdefault(slots, []), index)
        self.avail_total += slots - old
        self.avail[index] = slots

    def refresh(self, index: int, held: set[int]) -> None:
        """Recompute one domain's free list from the global held set."""
        self.free[index] = [
            node for node in self.groups[index].nodes if node not in held
        ]
        self.set_avail(index, len(self.free[index]) // self.npg[index])


class ClusterScheduler:
    """Replay a queue of jobs against one architecture over the fault timeline.

    Parameters
    ----------
    architecture:
        The HBD architecture supplying ``usable_gpus`` (and, in placed mode,
        ``placement_groups``).
    timeline:
        The exact fault timeline of the trace (``trace.interval_timeline()``).
        Beyond the traced window the cluster is assumed fault-free.
    jobs:
        The workload.  Submission order is irrelevant; ties are broken by
        position in this sequence.
    policy:
        A :class:`~repro.scheduler.policies.SchedulingPolicy` (default:
        non-preemptive FIFO).
    horizon_hours:
        Hard stop of the simulation.  ``None`` (default) runs until every
        job completes -- which requires every job to fit the fault-free
        cluster and to have finite work.
    placement:
        ``None`` (default) keeps the expected-value capacity model.  A
        :class:`~repro.scheduler.placement.PlacementPolicy` (or its spec
        name, e.g. ``"packed"``) switches to node-level placement with
        deterministic fault hits.
    backfill:
        Allow EASY backfilling past a blocked head under strict-order
        (FIFO) policies.

    A 32-GPU cluster, one 10-hour fault on node 0, two jobs back to back:

    >>> from repro.faults.trace import FaultEvent, FaultTrace
    >>> from repro.hbd import BigSwitchHBD
    >>> from repro.scheduler.jobs import JobSpec
    >>> trace = FaultTrace(n_nodes=8, duration_days=2,
    ...                    events=[FaultEvent(0, 10.0, 20.0)], gpus_per_node=4)
    >>> jobs = [JobSpec(name="big", gpus=32, tp_size=4, work_hours=4.0),
    ...         JobSpec(name="small", gpus=8, tp_size=4, work_hours=2.0,
    ...                 submit_hour=1.0)]
    >>> report = ClusterScheduler(
    ...     BigSwitchHBD(4), trace.interval_timeline(), jobs).run()
    >>> [(job.name, job.finished) for job in report.jobs]
    [('big', True), ('small', True)]
    >>> report.jobs[1].waiting_hours   # queued behind "big" from t=1 to t=4
    3.0
    >>> report.makespan_hours
    6.0

    In placed mode jobs hold concrete nodes, so the fault starting at t=10
    on node 0 is a deterministic hit on exactly the job holding it:

    >>> long_job = JobSpec(name="long", gpus=32, tp_size=4, work_hours=12.0)
    >>> placed = ClusterScheduler(
    ...     BigSwitchHBD(4), trace.interval_timeline(), [long_job],
    ...     placement="packed").run()
    >>> placed.jobs[0].impacting_faults   # a real hit count, not an expectation
    1.0
    >>> placed.jobs[0].waiting_hours      # descheduled while node 0 is down
    10.0
    """

    def __init__(
        self,
        architecture: HBDArchitecture,
        timeline: IntervalTimeline,
        jobs: Sequence[JobSpec],
        policy: SchedulingPolicy | None = None,
        horizon_hours: float | None = None,
        placement: PlacementPolicy | str | None = None,
        backfill: bool = False,
    ) -> None:
        if timeline.gpus_per_node != architecture.gpus_per_node:
            raise ValueError(
                f"timeline GPUs/node ({timeline.gpus_per_node}) must match the "
                f"architecture ({architecture.gpus_per_node})"
            )
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique within a workload")
        self.architecture = architecture
        self.timeline = timeline
        self.policy = policy if policy is not None else FifoPolicy()
        self.horizon_hours = horizon_hours
        if isinstance(placement, str):
            placement = placement_by_name(placement)
        self.placement = placement
        self.backfill = bool(backfill)
        self.n_nodes = timeline.n_nodes
        self.total_gpus = architecture.total_gpus(timeline.n_nodes)
        self.jobs: tuple[JobSpec, ...] = tuple(jobs)
        for job in self.jobs:
            if job.gpus > self.total_gpus:
                raise ValueError(
                    f"job {job.name!r} ({job.gpus} GPUs) larger than the "
                    f"cluster ({self.total_gpus} GPUs)"
                )
        self._usable: dict[tuple[frozenset[int], int], int] = {}
        # Per-TP incremental replay states (architectures with an O(delta)
        # update): capacity queries arrive in sweep order, so each memo miss
        # advances the state by the few node events since the last query
        # instead of recomputing over the whole node set.
        self._delta_states: dict[int, DeltaReplayState] = {}
        # Placed-mode bookkeeping: memoized placement domains per (fault
        # set, TP), the nodes currently held by allocated jobs, and per-TP
        # free-node states (rebuilt whenever the fault set moves).
        self._groups: dict[tuple[frozenset[int], int], tuple[PlacementGroup, ...]] = {}
        self._placed_cap: dict[tuple[frozenset[int], int], int] = {}
        self._held: set[int] = set()
        self._tp_states: dict[int, _TpPlacementState] = {}

    # ------------------------------------------------------------- capacity
    def _capacity(self, faults: frozenset[int], tp_size: int) -> int:
        key = (faults, tp_size)
        usable = self._usable.get(key)
        if usable is None:
            if self.architecture.supports_delta:
                state = self._delta_states.get(tp_size)
                if state is None:
                    state = self.architecture.delta_state(
                        self.n_nodes, faults, tp_size
                    )
                elif state.faults != faults:
                    _, state = self.architecture.breakdown_delta(
                        state,
                        added_faults=faults - state.faults,
                        removed_faults=state.faults - faults,
                    )
                self._delta_states[tp_size] = state
                usable = state.usable
            else:
                usable = self.architecture.usable_gpus(
                    self.n_nodes, faults, tp_size
                )
            self._usable[key] = usable
        return usable

    def _validate_runs_to_completion(self) -> None:
        empty: frozenset[int] = frozenset()
        for job in self.jobs:
            if job.work_hours is None:
                raise ValueError(
                    f"job {job.name!r} has unbounded work; set horizon_hours"
                )
            capacity = (
                self._placed_capacity(empty, job.tp_size)
                if self.placement is not None
                else self._capacity(empty, job.tp_size)
            )
            if job.gpus > capacity:
                raise ValueError(
                    f"job {job.name!r} ({job.gpus} GPUs at TP-{job.tp_size}) "
                    f"cannot run even on the fault-free cluster; set "
                    f"horizon_hours to simulate it waiting forever"
                )

    # -------------------------------------------------- placed-mode plumbing
    def _placement_groups(
        self, faults: frozenset[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        key = (faults, tp_size)
        groups = self._groups.get(key)
        if groups is None:
            groups = self.architecture.placement_groups(
                self.n_nodes, faults, tp_size
            )
            self._groups[key] = groups
        return groups

    def _placed_capacity(self, faults: frozenset[int], tp_size: int) -> int:
        key = (faults, tp_size)
        capacity = self._placed_cap.get(key)
        if capacity is None:
            capacity = sum(
                g.capacity_gpus for g in self._placement_groups(faults, tp_size)
            )
            self._placed_cap[key] = capacity
        return capacity

    def _tp_state(self, tp_size: int, faults: frozenset[int]) -> _TpPlacementState:
        state = self._tp_states.get(tp_size)
        if state is None or state.faults != faults:
            state = _TpPlacementState(
                faults,
                self._placement_groups(faults, tp_size),
                self._held,
                prior=state,
            )
            self._tp_states[tp_size] = state
        return state

    def _placed_sync(self, nodes: frozenset[int], skip: int | None = None) -> None:
        """Refresh the free lists of every domain touching ``nodes``.

        Free lists are a pure function of (domain nodes, held set), so a
        refresh after any hold/release keeps every TP size consistent
        (``skip`` names a TP size already updated in place).  Stale states
        (built for an older fault set) are refreshed too -- harmlessly,
        since they are rebuilt wholesale on their next use.
        """
        for tp_size, state in self._tp_states.items():
            if tp_size == skip:
                continue
            touched = {
                state.node_group[node]
                for node in nodes
                if node in state.node_group
            }
            for index in sorted(touched):
                state.refresh(index, self._held)

    def _release_nodes(self, nodes: frozenset[int]) -> None:
        if nodes:
            self._held -= nodes
            self._placed_sync(nodes)

    def _place_plan(
        self, state: _TpPlacementState, needed: int
    ) -> list[tuple[int, int]] | None:
        """Pick ``(domain index, TP groups)`` per the placement policy, or fail.

        Pure planning: no nodes are taken, so look-ahead selection can dry-run
        candidate placements and commit only the winner.  Domains are filled
        in the placement policy's preference order.
        """
        if state.avail_total < needed:
            return None
        placement = self.placement
        assert placement is not None  # placed mode only
        bands = placement.bands
        plan: list[tuple[int, int]] = []
        if bands is not None:
            # Banded fast path: walk the slot-count bands directly (index
            # order within a band) instead of sorting every domain.
            band_keys = sorted(state.buckets, reverse=bands == "descending")
            for slots in band_keys:
                if not slots:
                    continue
                for index in state.buckets[slots]:
                    take = min(slots, needed)
                    plan.append((index, take))
                    needed -= take
                    if not needed:
                        break
                if not needed:
                    break
        else:
            candidates = [
                (slots, index) for index, slots in enumerate(state.avail) if slots
            ]
            placement.order(candidates)
            for slots, index in candidates:
                take = min(slots, needed)
                plan.append((index, take))
                needed -= take
                if not needed:
                    break
        return plan

    def _commit_plan(
        self, state: _TpPlacementState, plan: list[tuple[int, int]], tp_size: int
    ) -> frozenset[int]:
        """Take the planned nodes.  The nodes handed out are always the first
        free nodes of each chosen domain (deployment order), so the outcome
        is a deterministic function of the schedule history.
        """
        taken: list[int] = []
        for index, take in plan:
            count = take * state.npg[index]
            taken.extend(state.free[index][:count])
            del state.free[index][:count]
            state.set_avail(index, state.avail[index] - take)
        nodes = frozenset(taken)
        self._held |= nodes
        self._placed_sync(nodes, skip=tp_size)
        return nodes

    def _try_place(
        self, rt: _JobRuntime, faults: frozenset[int]
    ) -> frozenset[int] | None:
        """Carve the job's TP groups out of free domain nodes, or fail clean."""
        spec = rt.spec
        state = self._tp_state(spec.tp_size, faults)
        plan = self._place_plan(state, spec.gpus // spec.tp_size)
        if plan is None:
            return None
        return self._commit_plan(state, plan, spec.tp_size)

    # ----------------------------------------------------------- allocation
    def _backfill_window(
        self,
        head: _JobRuntime,
        allocated: list[_JobRuntime],
        faults: frozenset[int],
        t: float,
    ) -> tuple[float, float]:
        """EASY reservation for a blocked head: (shadow start, extra GPUs).

        Projects the currently allocated jobs' completions under the current
        fault interval's capacity (at the head's TP granularity) and finds
        the earliest instant the head could start; ``extra`` is the capacity
        still free at that instant after the head's reservation.  When the
        head has no projected start (an unbounded job hogs the cluster),
        both are infinite -- backfilling cannot delay a start that never
        comes.

        The reservation is count-granular: exact for the expected-value
        engine and for placed single-TP workloads (slot accounting is
        exact there), conservative under placed-mode fragmentation -- when
        the count says the head fits *now* but placement failed (mixed-TP
        node fragmentation), no reservation can be trusted and backfill is
        blocked outright rather than risk delaying the head.
        """
        capacity = self._capacity(faults, head.spec.tp_size)
        free = capacity - sum(rt.spec.gpus for rt in allocated)
        if free >= head.spec.gpus:
            return t, 0.0
        completions = sorted(
            (t + rt.restart_debt + rt.remaining_work, rt.spec.gpus)
            for rt in allocated
            if rt.remaining_work < math.inf
        )
        for end, gpus in completions:
            free += gpus
            if free >= head.spec.gpus:
                return end, free - head.spec.gpus
        return math.inf, math.inf

    def _may_backfill(
        self, rt: _JobRuntime, t: float, shadow: float, extra: float
    ) -> tuple[bool, bool]:
        """(admit past the blocked head?, does it consume ``extra``?)."""
        projected = t + rt.restart_debt + rt.remaining_work
        if projected <= shadow + _EPS:
            return True, False
        if rt.spec.gpus <= extra:
            return True, True
        return False, False

    def _runtime_key(self, rt: _JobRuntime) -> tuple[Any, ...]:
        """Policy sort key with the job's runtime history folded in."""
        return self.policy.runtime_key(
            rt.spec,
            rt.remaining_work,
            rt.sequence,
            attained_hours=rt.productive,
            waiting_hours=rt.waiting,
            allocated=rt.allocated,
        )

    def _lookahead_fill(
        self,
        admission: list[_JobRuntime],
        selected: set[int],
        used: int,
        faults: frozenset[int],
    ) -> None:
        """k-job look-ahead admission (expected-value capacity model).

        Repeatedly score the first ``k`` queued jobs that fit the remaining
        capacity (``lookahead_score`` on the fraction of free capacity the
        job would fill) and admit the best-scoring one; stop when nothing in
        the window fits.  Ties break by submit time then sequence, so the
        outcome is deterministic.
        """
        policy = self.policy
        k = policy.lookahead_k
        assert k is not None
        queue = list(admission)
        while queue:
            best = -1
            best_rank: tuple[float, float, int] | None = None
            for index, rt in enumerate(queue[:k]):
                free = self._capacity(faults, rt.spec.tp_size) - used
                if rt.spec.gpus > free:
                    continue
                fill = rt.spec.gpus / free
                score = policy.lookahead_score(rt.spec, rt.remaining_work, fill)
                rank = (-score, rt.spec.submit_hour, rt.sequence)
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best = index
            if best < 0:
                break
            winner = queue.pop(best)
            selected.add(winner.sequence)
            used += winner.spec.gpus

    def _lookahead_place(
        self,
        admission: list[_JobRuntime],
        placements: dict[int, frozenset[int]],
        faults: frozenset[int],
    ) -> None:
        """k-job look-ahead admission over concrete placement domains.

        Each window candidate dry-runs a placement plan (``_place_plan`` is
        pure); the fill score is the job's TP-group demand over the open
        slots of the domains its plan touches, so tightly fitting candidates
        win.  Only the winner's plan is committed, then the window re-scores
        against the updated free lists.
        """
        policy = self.policy
        k = policy.lookahead_k
        assert k is not None
        queue = list(admission)
        while queue:
            best = -1
            best_rank: tuple[float, float, int] | None = None
            best_plan: list[tuple[int, int]] | None = None
            best_state: _TpPlacementState | None = None
            for index, rt in enumerate(queue[:k]):
                spec = rt.spec
                state = self._tp_state(spec.tp_size, faults)
                needed = spec.gpus // spec.tp_size
                plan = self._place_plan(state, needed)
                if plan is None:
                    continue
                slots_open = sum(state.avail[i] for i, _ in plan)
                fill = needed / slots_open
                score = policy.lookahead_score(spec, rt.remaining_work, fill)
                rank = (-score, spec.submit_hour, rt.sequence)
                if best_rank is None or rank < best_rank:
                    best_rank = rank
                    best = index
                    best_plan = plan
                    best_state = state
            if best < 0:
                break
            winner = queue.pop(best)
            assert best_plan is not None and best_state is not None
            placements[winner.sequence] = self._commit_plan(
                best_state, best_plan, winner.spec.tp_size
            )

    def _select(
        self, in_system: list[_JobRuntime], faults: frozenset[int], t: float
    ) -> set[int]:
        """Greedy policy-ordered allocation; returns the selected sequences."""
        policy = self.policy
        key = self._runtime_key
        selected: set[int] = set()
        chosen: list[_JobRuntime] = []
        used = 0
        if policy.preemptive:
            admission = sorted(in_system, key=key)
        else:
            # Running jobs outrank every queued job: only a capacity drop
            # (or completion) releases their allocation.  A running job the
            # capacity can no longer host falls back into the admission
            # queue at its priority position, so under a strict-order policy
            # it still blocks every younger job (no backfill past the
            # descheduled queue head).
            displaced: list[_JobRuntime] = []
            for rt in sorted((rt for rt in in_system if rt.allocated), key=key):
                if used + rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                    selected.add(rt.sequence)
                    chosen.append(rt)
                    used += rt.spec.gpus
                else:
                    displaced.append(rt)
            admission = sorted(
                [rt for rt in in_system if not rt.allocated] + displaced, key=key
            )
        if policy.lookahead_k is not None:
            self._lookahead_fill(admission, selected, used, faults)
            return selected
        shadow: float | None = None
        extra = 0.0
        for rt in admission:
            if shadow is not None:
                admit, consumes = self._may_backfill(rt, t, shadow, extra)
                if not admit:
                    continue
                if used + rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                    selected.add(rt.sequence)
                    chosen.append(rt)
                    used += rt.spec.gpus
                    if consumes:
                        extra -= rt.spec.gpus
                continue
            if used + rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size):
                selected.add(rt.sequence)
                chosen.append(rt)
                used += rt.spec.gpus
            elif policy.strict_order:
                if not self.backfill:
                    break
                shadow, extra = self._backfill_window(rt, chosen, faults, t)
        return selected

    def _select_placed(
        self, in_system: list[_JobRuntime], faults: frozenset[int], t: float
    ) -> dict[int, frozenset[int]]:
        """Placed-mode allocation: concrete nodes per selected job."""
        policy = self.policy
        key = self._runtime_key
        placements: dict[int, frozenset[int]] = {}
        chosen: list[_JobRuntime] = []
        if policy.preemptive:
            # Re-place everyone in priority order; a job keeps its exact
            # nodes when no higher-priority job claimed them (stability --
            # an unmoved job is never charged).
            self._held.clear()
            self._tp_states.clear()
            admission = sorted(in_system, key=key)
        else:
            # Running jobs are immovable in placed mode: their concrete
            # nodes are healthy (fault hits released theirs already), so
            # only completions free nodes.
            for rt in in_system:
                if rt.allocated:
                    placements[rt.sequence] = rt.nodes
                    chosen.append(rt)
            admission = sorted(
                [rt for rt in in_system if not rt.allocated], key=key
            )
        if policy.lookahead_k is not None:
            self._lookahead_place(admission, placements, faults)
            return placements

        def attempt(rt: _JobRuntime) -> frozenset[int] | None:
            # A still-allocated job keeps its exact nodes whenever no
            # higher-priority job claimed them (stability: an unmoved job
            # is never charged); otherwise it is placed like any other.
            if (
                policy.preemptive
                and rt.allocated
                and rt.nodes
                and not (rt.nodes & self._held)
            ):
                self._held |= rt.nodes
                self._placed_sync(rt.nodes)
                return rt.nodes
            return self._try_place(rt, faults)

        shadow: float | None = None
        extra = 0.0
        for rt in admission:
            if shadow is not None:
                admit, consumes = self._may_backfill(rt, t, shadow, extra)
                if not admit:
                    continue
                nodes = attempt(rt)
                if nodes is not None:
                    placements[rt.sequence] = nodes
                    chosen.append(rt)
                    if consumes:
                        extra -= rt.spec.gpus
                continue
            nodes = attempt(rt)
            if nodes is not None:
                placements[rt.sequence] = nodes
                chosen.append(rt)
            elif policy.strict_order:
                if not self.backfill:
                    break
                shadow, extra = self._backfill_window(rt, chosen, faults, t)
        return placements

    # ------------------------------------------------------------ the sweep
    def run(self) -> ClusterReport:
        horizon = self.horizon_hours
        if horizon is None:
            self._validate_runs_to_completion()
        elif horizon <= 0:
            raise ValueError("horizon_hours must be positive")
        placed = self.placement is not None
        self.policy.reset()
        self._held.clear()
        self._tp_states.clear()

        # Blast-radius accounting (placed mode): per fault transition that
        # introduces new down nodes, how many running jobs it descheduled.
        fault_events = 0
        jobs_killed = 0
        max_blast_radius = 0

        runtimes = [_JobRuntime(spec, i) for i, spec in enumerate(self.jobs)]
        pending = sorted(runtimes, key=lambda rt: (rt.spec.submit_hour, rt.sequence))
        pending_index = 0
        in_system: list[_JobRuntime] = []
        unfinished = len(runtimes)

        intervals = self.timeline.intervals
        # Interval end times come off the shared columnar view as plain
        # Python floats (bit-identical to the interval fields): the hot
        # event-time comparisons below skip the per-access attribute chain.
        interval_ends = self.timeline.columnar.ends_list
        interval_index = 0
        empty: frozenset[int] = frozenset()
        faults: frozenset[int] = intervals[0].nodes if intervals else empty

        def settle_completions(now: float) -> None:
            """Mark allocated jobs whose work and restart debt are both done."""
            nonlocal unfinished, in_system
            released: set[int] = set()
            for rt in in_system:
                if rt.allocated and rt.restart_debt <= _EPS and rt.remaining_work <= _EPS:
                    rt.restart_debt = 0.0
                    rt.remaining_work = 0.0
                    rt.completion = now
                    rt.end = now
                    rt.allocated = False
                    rt.in_system = False
                    released |= rt.nodes
                    rt.nodes = frozenset()
                    unfinished -= 1
            in_system = [rt for rt in in_system if rt.in_system]
            if placed:
                self._release_nodes(frozenset(released))

        t = 0.0
        while unfinished:
            if horizon is not None and t >= horizon:
                break

            # ---------------------------------------------- next event time
            t_next = math.inf
            if interval_index < len(intervals):
                t_next = interval_ends[interval_index]
            if pending_index < len(pending):
                t_next = min(t_next, pending[pending_index].spec.submit_hour)
            dynamic = self.policy.dynamic_priority
            for rt in in_system:
                if dynamic and rt.restart_debt <= _EPS:
                    # Dynamic-priority policies (Gittins) drift between
                    # queues as attained service / waiting time accumulate;
                    # wake exactly at the next crossing so the boundary
                    # re-sort never misses a demotion or promotion.  Jobs
                    # paying restart debt change neither clock, and the
                    # debt pay-off is an event of its own.
                    change = self.policy.next_priority_change_hours(
                        rt.spec,
                        rt.remaining_work,
                        rt.sequence,
                        attained_hours=rt.productive,
                        waiting_hours=rt.waiting,
                        allocated=rt.allocated,
                    )
                    if change is not None and change > _EPS:
                        t_next = min(t_next, t + change)
                if not rt.allocated:
                    continue
                if rt.restart_debt > _EPS:
                    t_next = min(t_next, t + rt.restart_debt)
                elif rt.remaining_work < math.inf:
                    t_next = min(t_next, t + rt.remaining_work)
            if horizon is not None:
                t_next = min(t_next, horizon)
            if not math.isfinite(t_next):
                stuck = [rt.spec.name for rt in runtimes if not rt.done]
                raise RuntimeError(
                    f"scheduler stalled with unfinished jobs {stuck}; no "
                    f"event can ever unblock them"
                )

            # --------------------------------------------------- accrue time
            dt = t_next - t
            if dt > 0:
                for rt in in_system:
                    if not rt.allocated:
                        rt.waiting += dt
                    elif rt.restart_debt > _EPS:
                        rt.restart_debt = max(0.0, rt.restart_debt - dt)
                        rt.restart_time += dt
                    else:
                        rt.productive += dt
                        rt.remaining_work -= dt
            t = t_next
            if horizon is not None and t >= horizon:
                # Work finishing exactly at the horizon still counts as a
                # completion before the replay is cut off.
                settle_completions(t)
                break

            # ----------------------------------------- fault-set transition
            new_faults: frozenset[int] = empty
            while (
                interval_index < len(intervals)
                and interval_ends[interval_index] <= t
            ):
                previous = faults
                interval_index += 1
                faults = (
                    intervals[interval_index].nodes
                    if interval_index < len(intervals)
                    else empty
                )
                new_faults = faults - previous

            # ------------------------------------------------------ arrivals
            while (
                pending_index < len(pending)
                and pending[pending_index].spec.submit_hour <= t
            ):
                rt = pending[pending_index]
                rt.in_system = True
                in_system.append(rt)
                pending_index += 1

            # --------------------------------------------------- completions
            settle_completions(t)

            # ------------------------------------- deterministic fault hits
            if placed and new_faults:
                # Exactly the jobs whose held nodes went down restart: each
                # direct hit costs half a checkpoint interval plus the
                # restart overhead, and the job's nodes are released.
                fault_events += 1
                killed = 0
                released: set[int] = set()
                for rt in in_system:
                    if not rt.allocated:
                        continue
                    hits = len(rt.nodes & new_faults)
                    if hits:
                        spec = rt.spec
                        debt = hits * (
                            spec.checkpoint_interval_hours / 2.0
                            + spec.restart_overhead_hours
                        )
                        rt.impacting_faults += hits
                        rt.restart_debt += debt
                        rt.restart_charged += debt
                        rt.allocated = False
                        released |= rt.nodes
                        rt.nodes = frozenset()
                        killed += 1
                jobs_killed += killed
                max_blast_radius = max(max_blast_radius, killed)
                self._release_nodes(frozenset(released))

            # -------------------------------------------------- reallocation
            if placed:
                placements = self._select_placed(in_system, faults, t)
                for rt in in_system:
                    now_allocated = rt.sequence in placements
                    new_nodes = placements.get(rt.sequence, frozenset())
                    # Policy pressure moves placed jobs (fault hits
                    # released their victims above): eviction and
                    # migration both checkpoint and pay the restart
                    # overhead on resume.  A preemptive reshuffle that
                    # leaves a job no room *anywhere* after a capacity
                    # drop is a squeeze, not a preemption -- it waits
                    # uncharged, matching the expected-value engine.
                    if (
                        rt.allocated
                        and (not now_allocated or new_nodes != rt.nodes)
                        and (
                            now_allocated
                            or rt.spec.gpus
                            <= self._placed_capacity(faults, rt.spec.tp_size)
                        )
                    ):
                        rt.preemptions += 1
                        rt.restart_debt += rt.spec.restart_overhead_hours
                        rt.restart_charged += rt.spec.restart_overhead_hours
                    if now_allocated and rt.first_start is None:
                        rt.first_start = t
                    rt.allocated = now_allocated
                    rt.nodes = new_nodes
            else:
                selected = self._select(in_system, faults, t)
                for rt in in_system:
                    now_allocated = rt.sequence in selected
                    # Classify the eviction per job, independent of
                    # whether a fault boundary shares the timestamp: a
                    # job the current capacity could not host at all
                    # just waits (matching the single-job goodput
                    # accounting), while a job that still fits but lost
                    # its slot to higher-priority work was preempted --
                    # it checkpoints on the way out and pays the
                    # restart overhead when it resumes.
                    if (
                        rt.allocated
                        and not now_allocated
                        and rt.spec.gpus <= self._capacity(faults, rt.spec.tp_size)
                    ):
                        rt.preemptions += 1
                        rt.restart_debt += rt.spec.restart_overhead_hours
                        rt.restart_charged += rt.spec.restart_overhead_hours
                    if now_allocated and rt.first_start is None:
                        rt.first_start = t
                    rt.allocated = now_allocated

                # --------------------------------------- fault restart debt
                if new_faults:
                    arrivals = len(new_faults)
                    for rt in in_system:
                        if not rt.allocated:
                            continue
                        spec = rt.spec
                        expected_hits = arrivals * spec.gpus / self.total_gpus
                        debt = expected_hits * (
                            spec.checkpoint_interval_hours / 2.0
                            + spec.restart_overhead_hours
                        )
                        rt.impacting_faults += expected_hits
                        rt.restart_debt += debt
                        rt.restart_charged += debt

        # ------------------------------------------------------- wind down
        end_hour = t if horizon is None else horizon
        for rt in runtimes:
            if rt.done:
                continue
            if rt.in_system:
                rt.end = end_hour
            else:
                # Never entered the system (submitted after the horizon).
                rt.end = rt.spec.submit_hour

        return ClusterReport(
            jobs=tuple(rt.report() for rt in runtimes),
            n_nodes=self.n_nodes,
            total_gpus=self.total_gpus,
            policy=self.policy.name,
            preemptive=self.policy.preemptive,
            horizon_hours=end_hour if horizon is None else horizon,
            placement=self.placement.name if self.placement is not None else None,
            backfill=self.backfill,
            fault_events=fault_events,
            jobs_killed=jobs_killed,
            max_blast_radius=max_blast_radius,
        )


def schedule_comparison(
    architectures: Sequence[HBDArchitecture],
    timeline: IntervalTimeline,
    jobs: Sequence[JobSpec],
    policy: SchedulingPolicy | None = None,
    horizon_hours: float | None = None,
    placement: PlacementPolicy | str | None = None,
    backfill: bool = False,
) -> dict[str, ClusterReport]:
    """Replay the same workload across several architectures.

    >>> from repro.faults.trace import FaultTrace
    >>> from repro.hbd import BigSwitchHBD, NVLHBD
    >>> from repro.scheduler.jobs import JobSpec
    >>> trace = FaultTrace(n_nodes=18, duration_days=1, events=[], gpus_per_node=4)
    >>> reports = schedule_comparison(
    ...     [BigSwitchHBD(4), NVLHBD(36, 4)], trace.interval_timeline(),
    ...     [JobSpec(name="j", gpus=64, tp_size=32, work_hours=3.0)])
    >>> sorted((name, report.finished_jobs) for name, report in reports.items())
    [('Big-Switch', 1), ('NVL-36', 1)]
    """
    return {
        arch.name: ClusterScheduler(
            arch,
            timeline,
            jobs,
            policy=policy,
            horizon_hours=horizon_hours,
            placement=placement,
            backfill=backfill,
        ).run()
        for arch in architectures
    }


__all__ = ["ClusterScheduler", "schedule_comparison"]
