"""Synthetic workload generation for the cluster scheduler.

Production GPU clusters see Poisson-ish job arrivals with heavy-tailed job
sizes and durations: most jobs are small and short, a few are enormous and
run for days (the Philly / Helios / PAI trace shape).  This module generates
such queues deterministically from a seed:

* **arrivals** -- exponential inter-arrival times (a Poisson process) with a
  configurable mean;
* **sizes** -- log-normal in units of TP groups, clipped to the cluster, so
  every job demand is a valid multiple of the TP size;
* **durations** -- log-normal hours of productive work.

The generator emits frozen :class:`~repro.scheduler.jobs.JobSpec` records,
so a generated workload serializes into spec files like everything else.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.scheduler.jobs import JobSpec, check_known_fields


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic job queue.

    ``median_tp_groups`` / ``sigma_tp_groups`` shape the log-normal job-size
    distribution (in TP-group units); ``median_work_hours`` /
    ``sigma_work_hours`` shape the log-normal duration distribution.  The
    defaults give a heavy-tailed mix of mostly-small, mostly-short jobs with
    a fat tail of near-cluster-scale multi-day jobs.

    >>> config = WorkloadConfig(n_jobs=50, seed=7, tp_size=32, max_gpus=1024)
    >>> WorkloadConfig.from_dict(config.to_dict()) == config
    True
    >>> WorkloadConfig(n_jobs=1, tp_size=64, max_gpus=32)
    Traceback (most recent call last):
        ...
    ValueError: max_gpus must be at least one TP group
    """

    n_jobs: int = 100
    seed: int = 0
    tp_size: int = 32
    max_gpus: int = 2048
    mean_interarrival_hours: float = 1.0
    median_tp_groups: float = 4.0
    sigma_tp_groups: float = 1.2
    median_work_hours: float = 8.0
    sigma_work_hours: float = 1.0
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be positive")
        if self.tp_size < 1:
            raise ValueError("tp_size must be positive")
        if self.max_gpus < self.tp_size:
            raise ValueError("max_gpus must be at least one TP group")
        if self.mean_interarrival_hours < 0:
            raise ValueError("mean_interarrival_hours must be non-negative")
        if self.median_tp_groups <= 0 or self.median_work_hours <= 0:
            raise ValueError("median job size and work must be positive")
        if self.sigma_tp_groups < 0 or self.sigma_work_hours < 0:
            raise ValueError("sigmas must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> WorkloadConfig:
        check_known_fields(cls, data)
        return cls(**data)


def generate_workload(config: WorkloadConfig) -> tuple[JobSpec, ...]:
    """Deterministically sample a job queue from a :class:`WorkloadConfig`.

    >>> jobs = generate_workload(WorkloadConfig(n_jobs=3, seed=1, tp_size=8,
    ...                                         max_gpus=64))
    >>> [job.name for job in jobs]
    ['job-0', 'job-1', 'job-2']
    >>> jobs[0].submit_hour   # the first job always arrives at t=0
    0.0
    >>> all(job.gpus % 8 == 0 and 8 <= job.gpus <= 64 for job in jobs)
    True
    >>> generate_workload(WorkloadConfig(n_jobs=3, seed=1, tp_size=8,
    ...                                  max_gpus=64)) == jobs
    True
    """
    rng = np.random.default_rng(config.seed)
    n = config.n_jobs
    max_groups = config.max_gpus // config.tp_size

    gaps = (
        rng.exponential(config.mean_interarrival_hours, size=n)
        if config.mean_interarrival_hours > 0
        else np.zeros(n)
    )
    submits = np.cumsum(gaps) - gaps[0]  # first job arrives at t=0

    groups = np.rint(
        np.exp(rng.normal(np.log(config.median_tp_groups), config.sigma_tp_groups, size=n))
    ).astype(int)
    groups = np.clip(groups, 1, max_groups)

    work = np.exp(rng.normal(np.log(config.median_work_hours), config.sigma_work_hours, size=n))

    width = len(str(n - 1))
    return tuple(
        JobSpec(
            name=f"job-{i:0{width}d}",
            gpus=int(groups[i]) * config.tp_size,
            tp_size=config.tp_size,
            work_hours=float(work[i]),
            submit_hour=float(submits[i]),
            checkpoint_interval_hours=config.checkpoint_interval_hours,
            restart_overhead_hours=config.restart_overhead_hours,
        )
        for i in range(n)
    )


__all__ = ["WorkloadConfig", "generate_workload"]
