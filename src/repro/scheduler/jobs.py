"""Job descriptions and per-job accounting for the cluster scheduler.

A :class:`JobSpec` is the frozen, JSON-round-trippable description of one
training job in a workload: how many GPUs it needs (a multiple of its TP
size), how much productive work it has to accumulate, when it is submitted,
and its checkpoint / restart parameters.  ``work_hours=None`` denotes a job
that runs for the whole simulation horizon -- the single-job goodput replay
(:class:`repro.simulation.goodput.GoodputSimulator`) is exactly that special
case.

:class:`JobReport` is the per-job outcome of one scheduler run.  Its three
time buckets partition the job's wall-clock time in the system::

    productive_hours + waiting_hours + restart_hours
        == (completion_hour or horizon) - submit_hour

which is the conservation invariant the scheduler tests enforce across
random workloads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any


def check_known_fields(cls: type[Any], data: Mapping[str, Any]) -> None:
    """Reject mappings with keys that are not fields of ``cls``.

    Shared by every ``from_dict`` in the spec layer (including
    :mod:`repro.api.spec`) so typos in spec files fail loudly with the same
    message everywhere.

    >>> check_known_fields(JobSpec, {"name": "j", "gpus": 64})   # fine
    >>> try:
    ...     check_known_fields(JobSpec, {"name": "j", "gpuz": 64})
    ... except ValueError as error:
    ...     "unknown field(s) ['gpuz']" in str(error)
    True
    """
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{cls.__name__}: unknown field(s) {unknown}; known: {sorted(known)}"
        )


@dataclass(frozen=True)
class JobSpec:
    """One training job in a scheduled workload.

    ``work_hours`` is the productive time the job must accumulate to
    complete; ``None`` means the job never completes on its own (it runs
    until the simulation horizon -- the single-job goodput replay).

    >>> job = JobSpec(name="llama-pretrain", gpus=2560, tp_size=32,
    ...               work_hours=72.0, submit_hour=6.0)
    >>> JobSpec.from_dict(job.to_dict()) == job
    True
    >>> JobSpec(name="odd", gpus=48, tp_size=32)
    Traceback (most recent call last):
        ...
    ValueError: job 'odd': gpus (48) must be a multiple of tp_size (32)
    """

    name: str
    gpus: int
    tp_size: int
    work_hours: float | None = None
    submit_hour: float = 0.0
    checkpoint_interval_hours: float = 1.0
    restart_overhead_hours: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.gpus < 1 or self.tp_size < 1:
            raise ValueError("gpus and tp_size must be positive")
        if self.gpus % self.tp_size:
            raise ValueError(
                f"job {self.name!r}: gpus ({self.gpus}) must be a multiple of "
                f"tp_size ({self.tp_size})"
            )
        if self.work_hours is not None and self.work_hours <= 0:
            raise ValueError(f"job {self.name!r}: work_hours must be positive")
        if self.submit_hour < 0:
            raise ValueError(f"job {self.name!r}: submit_hour must be non-negative")
        if self.checkpoint_interval_hours <= 0:
            raise ValueError(
                f"job {self.name!r}: checkpoint_interval_hours must be positive"
            )
        if self.restart_overhead_hours < 0:
            raise ValueError(
                f"job {self.name!r}: restart_overhead_hours must be non-negative"
            )

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> JobSpec:
        check_known_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class JobReport:
    """Outcome of one job in a scheduler run.

    ``restart_hours`` is wall-clock time spent re-doing lost work / paying
    restart overhead (the job holds its allocation but makes no progress);
    ``restart_charged_hours`` is the total restart debt ever charged, which
    can exceed ``restart_hours`` when the simulation horizon cuts a restart
    short.  ``impacting_faults`` is the *expected* number of faults landing
    in the job's allocation (each arrival contributes the job's share of the
    cluster), matching the single-job goodput accounting.

    The three time buckets partition the job's wall-clock time:

    >>> from repro.faults.trace import FaultTrace
    >>> from repro.hbd import BigSwitchHBD
    >>> from repro.scheduler.engine import ClusterScheduler
    >>> trace = FaultTrace(n_nodes=8, duration_days=1, events=[], gpus_per_node=4)
    >>> job = JobSpec(name="j", gpus=16, tp_size=4, work_hours=2.5, submit_hour=1.0)
    >>> outcome = ClusterScheduler(
    ...     BigSwitchHBD(4), trace.interval_timeline(), [job]).run().jobs[0]
    >>> (outcome.jct_hours, outcome.queueing_delay_hours, outcome.goodput)
    (2.5, 0.0, 1.0)
    >>> buckets = (outcome.productive_hours + outcome.waiting_hours
    ...            + outcome.restart_hours)
    >>> buckets == outcome.wall_clock_hours
    True
    """

    name: str
    gpus: int
    tp_size: int
    submit_hour: float
    work_hours: float | None
    first_start_hour: float | None
    completion_hour: float | None
    end_hour: float
    productive_hours: float
    waiting_hours: float
    restart_hours: float
    restart_charged_hours: float
    impacting_faults: float
    preemptions: int

    @property
    def finished(self) -> bool:
        return self.completion_hour is not None

    @property
    def wall_clock_hours(self) -> float:
        """Time the job spent in the system (to completion or the horizon)."""
        return self.end_hour - self.submit_hour

    @property
    def jct_hours(self) -> float | None:
        """Job completion time (None when the job did not finish)."""
        if self.completion_hour is None:
            return None
        return self.completion_hour - self.submit_hour

    @property
    def queueing_delay_hours(self) -> float | None:
        """Submit-to-first-allocation delay (None when never scheduled)."""
        if self.first_start_hour is None:
            return None
        return self.first_start_hour - self.submit_hour

    @property
    def goodput(self) -> float:
        """Fraction of in-system wall-clock time spent making progress."""
        wall = self.wall_clock_hours
        if wall <= 0:
            return 0.0
        return self.productive_hours / wall

    @property
    def finish_time_fairness(self) -> float | None:
        """Tiresias/Themis-style rho = JCT / ideal JCT on dedicated capacity.

        The ideal JCT is the job's productive work on a dedicated, fault-free
        allocation (``work_hours``), so ``rho >= 1`` and ``rho == 1`` means
        the job never waited, restarted or was preempted.  ``None`` for jobs
        that did not finish (or have unbounded work).
        """
        if self.jct_hours is None or not self.work_hours:
            return None
        return self.jct_hours / self.work_hours

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["finished"] = self.finished
        data["jct_hours"] = self.jct_hours
        data["queueing_delay_hours"] = self.queueing_delay_hours
        data["finish_time_fairness"] = self.finish_time_fairness
        return data


__all__ = ["JobReport", "JobSpec", "check_known_fields"]
