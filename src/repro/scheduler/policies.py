"""Pluggable scheduling policies for the cluster scheduler.

A policy decides, at every event boundary, which of the jobs in the system
hold an allocation.  It does so through the knobs the engine consumes:

* :meth:`SchedulingPolicy.runtime_key` -- a sort key over jobs (smaller
  runs first).  Static policies derive it purely from the job spec via
  :meth:`SchedulingPolicy.priority_key`; history-aware policies (Gittins,
  the optimizer) also read the job's attained service, waiting time and
  allocation state.
* ``preemptive`` -- whether a higher-priority job may take the place of a
  running lower-priority one.  Non-preemptive policies only deschedule a
  running job when a fault pushes the usable capacity below the running
  set's demand.
* ``strict_order`` -- whether a job that does not fit blocks every job behind
  it (classic head-of-line FIFO) or the scheduler may skip over it and
  backfill smaller jobs.
* ``dynamic_priority`` -- the key drifts as attained service / waiting time
  accumulate, so the engine schedules wake-ups at the exact crossings
  (:meth:`SchedulingPolicy.next_priority_change_hours`).
* ``lookahead_k`` -- selection runs a k-job look-ahead over the queue head,
  scoring each fitting candidate with
  :meth:`SchedulingPolicy.lookahead_score` instead of a plain priority walk.

Six policies cover the comparison space: arrival-order FIFO,
smallest-job-first (by GPU demand), shortest-remaining-work first,
Tiresias-style discretized attained-service (Gittins-index) queues
(``gittins``), Horus-style k-job look-ahead placement scoring
(``lookahead``), and an AdaptDL-style global re-allocation optimizer
(``optimizer``).  ``policy_by_name`` resolves the spec/CLI names, with
difflib suggestions on typos to match the architecture registry's
ergonomics.
"""

from __future__ import annotations

import abc
import difflib
import math
from typing import Any

from repro.scheduler.jobs import JobSpec


class SchedulingPolicy(abc.ABC):
    """Priority order plus preemption behaviour for the engine.

    Subclasses only supply a sort key; the engine does the rest:

    >>> job = JobSpec(name="j", gpus=64, tp_size=32, submit_hour=3.0)
    >>> FifoPolicy().priority_key(job, remaining_work_hours=5.0, sequence=7)
    (3.0, 7)
    >>> SmallestFirstPolicy().priority_key(job, 5.0, 7)
    (64, 3.0, 7)
    """

    #: Spec / CLI name of the policy.
    name: str = "abstract"
    #: Whether higher-priority jobs may displace allocated lower-priority ones.
    preemptive: bool = False
    #: Whether a non-fitting job blocks all lower-priority jobs (no backfill).
    strict_order: bool = False
    #: Preemption mode ``policy_by_name(..., preemptive=None)`` applies.
    default_preemptive: bool = False
    #: Whether keys drift with attained service / waiting time, requiring
    #: engine wake-ups at :meth:`next_priority_change_hours` crossings.
    dynamic_priority: bool = False
    #: Look-ahead window size; ``None`` keeps the plain priority walk.
    lookahead_k: int | None = None

    @abc.abstractmethod
    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        """Sort key; the engine runs jobs in ascending key order.

        ``remaining_work_hours`` is the job's outstanding productive work
        (``inf`` for horizon-bound jobs); ``sequence`` is the submission
        sequence number, the deterministic tie-breaker every key must end
        with.
        """

    def runtime_key(
        self,
        job: JobSpec,
        remaining_work_hours: float,
        sequence: int,
        *,
        attained_hours: float = 0.0,
        waiting_hours: float = 0.0,
        allocated: bool = False,
    ) -> tuple[Any, ...]:
        """Sort key with the job's runtime history folded in.

        The engine always ranks jobs through this hook.  The default ignores
        the runtime fields and delegates to :meth:`priority_key`; history-aware
        policies (Gittins attained-service queues, the optimizer's stability
        bonus) override it.  ``attained_hours`` is cumulative productive time,
        ``waiting_hours`` cumulative queued time, ``allocated`` whether the
        job currently holds an allocation.
        """
        return self.priority_key(job, remaining_work_hours, sequence)

    def next_priority_change_hours(
        self,
        job: JobSpec,
        remaining_work_hours: float,
        sequence: int,
        *,
        attained_hours: float,
        waiting_hours: float,
        allocated: bool,
    ) -> float | None:
        """Hours until this job's priority class changes on its own.

        Only consulted when ``dynamic_priority`` is set.  For an allocated
        job the clock is productive time (attained service grows); for a
        waiting job it is wall-clock waiting time.  ``None`` means no
        autonomous change is coming.
        """
        return None

    def lookahead_score(
        self, job: JobSpec, remaining_work_hours: float, fill: float
    ) -> float:
        """Goodput-weighted placement score (look-ahead policies only).

        ``fill`` is the fraction of the candidate placement's open capacity
        the job would occupy (``(0, 1]``); higher scores are admitted first.
        """
        raise NotImplementedError(f"{self.name!r} is not a look-ahead policy")

    def reset(self) -> None:
        """Clear any per-run policy state (called by the engine at run start)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "preemptive" if self.preemptive else "non-preemptive"
        return f"{type(self).__name__}({self.name}, {mode})"


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out with head-of-line blocking (no backfill).

    >>> FifoPolicy().strict_order
    True
    >>> FifoPolicy(preemptive=True)
    FifoPolicy(fifo, preemptive)
    """

    name = "fifo"
    strict_order = True

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (job.submit_hour, sequence)


class SmallestFirstPolicy(SchedulingPolicy):
    """Smallest GPU demand first; backfills around jobs that do not fit.

    >>> small = JobSpec(name="s", gpus=32, tp_size=32)
    >>> large = JobSpec(name="l", gpus=512, tp_size=32)
    >>> policy = SmallestFirstPolicy()
    >>> policy.priority_key(small, 1.0, 1) < policy.priority_key(large, 1.0, 0)
    True
    """

    name = "smallest-first"

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (job.gpus, job.submit_hour, sequence)


class ShortestRemainingPolicy(SchedulingPolicy):
    """Shortest remaining productive work first (SRTF when preemptive).

    >>> job = JobSpec(name="j", gpus=32, tp_size=32)
    >>> ShortestRemainingPolicy().priority_key(job, remaining_work_hours=0.5,
    ...                                        sequence=4)
    (0.5, 0.0, 4)
    """

    name = "shortest-remaining"

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (remaining_work_hours, job.submit_hour, sequence)


class GittinsPolicy(SchedulingPolicy):
    """Tiresias-style discretized two-dimensional attained-service queues.

    The Gittins-index argument for unknown job durations says: serve the job
    whose *attained service* (GPU-hours of productive work, the 2D product
    of GPU count and time) is smallest, since it has the best odds of
    finishing soon.  Tiresias discretizes this into K priority queues with
    exponentially spaced demotion thresholds so jobs are not re-ranked on
    every quantum: a job starts in the highest queue and drops one level
    each time the GPU-hours attained since its last promotion cross
    ``threshold_gpu_hours * 2**level``.

    Starvation is bounded by the Tiresias PROMOTE rule: a demoted job whose
    waiting time since its last promotion reaches ``starve_limit`` times its
    total executed time returns to the top queue, *with its demotion clock
    reset* -- a promoted job runs a full top-queue quantum before it can be
    demoted (and must be demoted again before it can re-promote), so
    promotion cannot oscillate.  Within a queue ties break by submit time,
    so an old starved job outranks fresh arrivals.

    Preemptive by default -- demotions and promotions move work between
    queues mid-flight, charged through the engine's restart accounting.
    The promotion baselines are per-run state; the engine calls
    :meth:`reset` at the start of every run.

    >>> policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3)
    >>> job = JobSpec(name="j", gpus=128, tp_size=32, submit_hour=1.0)
    >>> policy.runtime_key(job, 10.0, 5, attained_hours=0.0)
    (0, 1.0, 5)
    >>> policy.runtime_key(job, 10.0, 5, attained_hours=1.0,
    ...                    allocated=True)      # 128 GPU-h >= 2nd threshold
    (2, 1.0, 5)
    >>> policy.runtime_key(job, 10.0, 5, attained_hours=1.0,
    ...                    waiting_hours=4.0)   # starved: promoted to the top
    (0, 1.0, 5)
    >>> policy.runtime_key(job, 10.0, 5, attained_hours=1.2,
    ...                    waiting_hours=9.0)   # fresh quantum, no oscillation
    (0, 1.0, 5)
    """

    name = "gittins"
    default_preemptive = True
    dynamic_priority = True

    def __init__(
        self,
        preemptive: bool = True,
        threshold_gpu_hours: float = 2048.0,
        levels: int = 3,
        starve_limit: float = 4.0,
    ) -> None:
        if threshold_gpu_hours <= 0:
            raise ValueError("threshold_gpu_hours must be positive")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if starve_limit <= 0:
            raise ValueError("starve_limit must be positive")
        self.preemptive = preemptive
        self.threshold_gpu_hours = threshold_gpu_hours
        self.levels = levels
        self.starve_limit = starve_limit
        # Per-run promotion baselines: sequence -> (attained_hours,
        # waiting_hours) at the job's last promotion.
        self._promo_base: dict[int, tuple[float, float]] = {}

    def reset(self) -> None:
        self._promo_base.clear()

    def level_of(self, attained_gpu_hours: float) -> int:
        """Discretized queue level (0 = highest priority)."""
        level = 0
        threshold = self.threshold_gpu_hours
        while level < self.levels - 1 and attained_gpu_hours >= threshold:
            level += 1
            threshold *= 2.0
        return level

    def _effective(
        self, job: JobSpec, sequence: int, attained_hours: float, waiting_hours: float
    ) -> float:
        """GPU-hours attained since the last promotion, applying PROMOTE.

        A job is promoted (baseline reset to *now*) once it has been demoted
        since its last promotion (a full top-queue quantum attained) and its
        waiting time since that promotion reaches ``starve_limit`` times its
        total executed time.
        """
        base_attained, base_waiting = self._promo_base.get(sequence, (0.0, 0.0))
        effective = (attained_hours - base_attained) * job.gpus
        if (
            effective >= self.threshold_gpu_hours
            and waiting_hours - base_waiting >= self.starve_limit * attained_hours
        ):
            self._promo_base[sequence] = (attained_hours, waiting_hours)
            return 0.0
        return effective

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return self.runtime_key(job, remaining_work_hours, sequence)

    def runtime_key(
        self,
        job: JobSpec,
        remaining_work_hours: float,
        sequence: int,
        *,
        attained_hours: float = 0.0,
        waiting_hours: float = 0.0,
        allocated: bool = False,
    ) -> tuple[Any, ...]:
        effective = self._effective(job, sequence, attained_hours, waiting_hours)
        return (self.level_of(effective), job.submit_hour, sequence)

    def next_priority_change_hours(
        self,
        job: JobSpec,
        remaining_work_hours: float,
        sequence: int,
        *,
        attained_hours: float,
        waiting_hours: float,
        allocated: bool,
    ) -> float | None:
        base_attained, base_waiting = self._promo_base.get(sequence, (0.0, 0.0))
        effective = (attained_hours - base_attained) * job.gpus
        if allocated:
            # Attained service grows, waiting is frozen: the next crossing
            # is the demotion threshold of the current level (at which
            # instant a starved job promotes instead of demoting -- either
            # way the key changes there).
            level = self.level_of(effective)
            if level >= self.levels - 1:
                return None
            threshold = self.threshold_gpu_hours * (2.0**level)
            return (threshold - effective) / job.gpus
        # Waiting grows, attained service is frozen: the only autonomous
        # crossing is the PROMOTE rule, armed once the job has been demoted
        # since its last promotion.
        if effective < self.threshold_gpu_hours:
            return None
        return self.starve_limit * attained_hours - (waiting_hours - base_waiting)


class LookaheadPolicy(SchedulingPolicy):
    """Horus-style k-job look-ahead placement scoring.

    Instead of admitting strictly in queue order, the engine repeatedly
    scores the first ``k`` queued jobs that fit the current capacity and
    admits the best-scoring one.  The score prefers candidates that fill
    their placement tightly (less fragmentation left behind) and turn over
    quickly (goodput weight ``1 / (1 + remaining_work)``), so short
    well-fitting jobs flow around a head that would strand capacity --
    without ever reaching past the k-job fairness window.

    Non-preemptive by default: look-ahead shapes admission, not eviction.

    >>> policy = LookaheadPolicy(k=3)
    >>> tight = JobSpec(name="t", gpus=96, tp_size=32)
    >>> loose = JobSpec(name="l", gpus=32, tp_size=32)
    >>> policy.lookahead_score(tight, 1.0, fill=0.75)
    0.375
    >>> policy.lookahead_score(loose, 1.0, fill=0.25)
    0.125
    """

    name = "lookahead"

    def __init__(self, preemptive: bool = False, k: int = 5) -> None:
        if k < 1:
            raise ValueError("look-ahead window k must be >= 1")
        self.preemptive = preemptive
        self.k = k
        self.lookahead_k = k

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        # The look-ahead window slides over the queue in arrival order.
        return (job.submit_hour, sequence)

    def lookahead_score(
        self, job: JobSpec, remaining_work_hours: float, fill: float
    ) -> float:
        if not math.isfinite(remaining_work_hours):
            return 0.0
        return fill / (1.0 + max(remaining_work_hours, 0.0))


class OptimizerPolicy(SchedulingPolicy):
    """AdaptDL-style global re-allocation solved as a greedy LP each boundary.

    At every interval boundary the engine re-solves the job -> capacity
    assignment as the fractional knapsack LP

    ``maximize   sum_j x_j * gpus_j * (phi(r_j) + beta * alloc_j)``
    ``subject to sum_j x_j * gpus_j <= usable capacity,  x_j in [0, 1]``

    where ``phi(r) = h / (h + r)`` is the goodput utility density of a job
    with ``r`` remaining hours over the planning horizon ``h``
    (``horizon_hours``), and ``beta`` (``stability_bonus``) is the
    AdaptDL-style migration penalty credited to already-allocated jobs so
    marginal gains do not churn the cluster.  Greedy admission in
    descending density order is the exact LP optimum; the engine's walk
    rounds the one fractional job down.  Deterministic throughout: equal
    densities break by submit time then sequence, and in placed mode the
    banded placement machinery re-assigns domains with node-stability, so
    only genuinely moved jobs are charged migrations (as preemptions).

    >>> policy = OptimizerPolicy(horizon_hours=8.0, stability_bonus=0.5)
    >>> policy.utility_density(8.0, allocated=False)
    0.5
    >>> policy.utility_density(24.0, allocated=True)  # 0.25 + 0.5 bonus
    0.75
    """

    name = "optimizer"
    default_preemptive = True

    def __init__(
        self,
        preemptive: bool = True,
        horizon_hours: float = 8.0,
        stability_bonus: float = 0.5,
    ) -> None:
        if horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if stability_bonus < 0:
            raise ValueError("stability_bonus must be non-negative")
        self.preemptive = preemptive
        self.horizon_hours = horizon_hours
        self.stability_bonus = stability_bonus

    def utility_density(self, remaining_work_hours: float, allocated: bool) -> float:
        """Per-GPU utility rate ``phi(r) + beta * [allocated]``."""
        h = self.horizon_hours
        density = h / (h + max(remaining_work_hours, 0.0))
        return density + (self.stability_bonus if allocated else 0.0)

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return self.runtime_key(job, remaining_work_hours, sequence)

    def runtime_key(
        self,
        job: JobSpec,
        remaining_work_hours: float,
        sequence: int,
        *,
        attained_hours: float = 0.0,
        waiting_hours: float = 0.0,
        allocated: bool = False,
    ) -> tuple[Any, ...]:
        density = self.utility_density(remaining_work_hours, allocated)
        return (-density, job.submit_hour, sequence)


_POLICIES: dict[str, type[SchedulingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    SmallestFirstPolicy.name: SmallestFirstPolicy,
    ShortestRemainingPolicy.name: ShortestRemainingPolicy,
    GittinsPolicy.name: GittinsPolicy,
    LookaheadPolicy.name: LookaheadPolicy,
    OptimizerPolicy.name: OptimizerPolicy,
}

#: Spec / CLI names of the built-in policies, in presentation order.
POLICY_NAMES: tuple[str, ...] = tuple(_POLICIES)


def policy_by_name(
    name: str, preemptive: bool | None = None, **knobs: Any
) -> SchedulingPolicy:
    """Instantiate a policy by its spec name (``fifo``, ``gittins``, ...).

    ``preemptive=None`` (the default) keeps each policy's own preemption
    mode -- off for the classic queue orders, on for ``gittins`` and
    ``optimizer``, whose whole point is moving work mid-flight.  Extra
    keyword knobs go to the policy constructor.

    >>> policy_by_name("smallest-first", preemptive=True)
    SmallestFirstPolicy(smallest-first, preemptive)
    >>> policy_by_name("FIFO").name   # case-insensitive
    'fifo'
    >>> policy_by_name("gittins")     # preemptive by default
    GittinsPolicy(gittins, preemptive)
    >>> policy_by_name("lookahead", k=3).lookahead_k
    3
    """
    key = name.strip().lower()
    cls = _POLICIES.get(key)
    if cls is None:
        close = difflib.get_close_matches(key, _POLICIES, n=2)
        hint = f"; did you mean {close}?" if close else ""
        raise KeyError(
            f"unknown scheduling policy {name!r}; known: {list(_POLICIES)}{hint}"
        )
    if preemptive is None:
        preemptive = cls.default_preemptive
    return cls(preemptive=preemptive, **knobs)


__all__ = [
    "FifoPolicy",
    "GittinsPolicy",
    "LookaheadPolicy",
    "OptimizerPolicy",
    "POLICY_NAMES",
    "SchedulingPolicy",
    "ShortestRemainingPolicy",
    "SmallestFirstPolicy",
    "policy_by_name",
]
