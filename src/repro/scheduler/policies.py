"""Pluggable scheduling policies for the cluster scheduler.

A policy decides, at every event boundary, which of the jobs in the system
hold an allocation.  It does so through two knobs the engine consumes:

* :meth:`SchedulingPolicy.priority_key` -- a sort key over jobs (smaller
  runs first);
* ``preemptive`` -- whether a newly arrived higher-priority job may take the
  place of a running lower-priority one.  Non-preemptive policies only
  deschedule a running job when a fault pushes the usable capacity below the
  running set's demand.
* ``strict_order`` -- whether a job that does not fit blocks every job behind
  it (classic head-of-line FIFO) or the scheduler may skip over it and
  backfill smaller jobs.

Three policies cover the Tiresias-style comparison space: arrival-order
FIFO, smallest-job-first (by GPU demand) and shortest-remaining-work first.
``policy_by_name`` resolves the spec/CLI names, with difflib suggestions on
typos to match the architecture registry's ergonomics.
"""

from __future__ import annotations

import abc
import difflib
from typing import Any

from repro.scheduler.jobs import JobSpec


class SchedulingPolicy(abc.ABC):
    """Priority order plus preemption behaviour for the engine.

    Subclasses only supply a sort key; the engine does the rest:

    >>> job = JobSpec(name="j", gpus=64, tp_size=32, submit_hour=3.0)
    >>> FifoPolicy().priority_key(job, remaining_work_hours=5.0, sequence=7)
    (3.0, 7)
    >>> SmallestFirstPolicy().priority_key(job, 5.0, 7)
    (64, 3.0, 7)
    """

    #: Spec / CLI name of the policy.
    name: str = "abstract"
    #: Whether higher-priority jobs may displace allocated lower-priority ones.
    preemptive: bool = False
    #: Whether a non-fitting job blocks all lower-priority jobs (no backfill).
    strict_order: bool = False

    @abc.abstractmethod
    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        """Sort key; the engine runs jobs in ascending key order.

        ``remaining_work_hours`` is the job's outstanding productive work
        (``inf`` for horizon-bound jobs); ``sequence`` is the submission
        sequence number, the deterministic tie-breaker every key must end
        with.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "preemptive" if self.preemptive else "non-preemptive"
        return f"{type(self).__name__}({self.name}, {mode})"


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out with head-of-line blocking (no backfill).

    >>> FifoPolicy().strict_order
    True
    >>> FifoPolicy(preemptive=True)
    FifoPolicy(fifo, preemptive)
    """

    name = "fifo"
    strict_order = True

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (job.submit_hour, sequence)


class SmallestFirstPolicy(SchedulingPolicy):
    """Smallest GPU demand first; backfills around jobs that do not fit.

    >>> small = JobSpec(name="s", gpus=32, tp_size=32)
    >>> large = JobSpec(name="l", gpus=512, tp_size=32)
    >>> policy = SmallestFirstPolicy()
    >>> policy.priority_key(small, 1.0, 1) < policy.priority_key(large, 1.0, 0)
    True
    """

    name = "smallest-first"

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (job.gpus, job.submit_hour, sequence)


class ShortestRemainingPolicy(SchedulingPolicy):
    """Shortest remaining productive work first (SRTF when preemptive).

    >>> job = JobSpec(name="j", gpus=32, tp_size=32)
    >>> ShortestRemainingPolicy().priority_key(job, remaining_work_hours=0.5,
    ...                                        sequence=4)
    (0.5, 0.0, 4)
    """

    name = "shortest-remaining"

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive

    def priority_key(
        self, job: JobSpec, remaining_work_hours: float, sequence: int
    ) -> tuple[Any, ...]:
        return (remaining_work_hours, job.submit_hour, sequence)


_POLICIES: dict[str, type[SchedulingPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    SmallestFirstPolicy.name: SmallestFirstPolicy,
    ShortestRemainingPolicy.name: ShortestRemainingPolicy,
}

#: Spec / CLI names of the built-in policies, in presentation order.
POLICY_NAMES: tuple[str, ...] = tuple(_POLICIES)


def policy_by_name(name: str, preemptive: bool = False) -> SchedulingPolicy:
    """Instantiate a policy by its spec name (``fifo``, ``smallest-first``, ...).

    >>> policy_by_name("smallest-first", preemptive=True)
    SmallestFirstPolicy(smallest-first, preemptive)
    >>> policy_by_name("FIFO").name   # case-insensitive
    'fifo'
    """
    key = name.strip().lower()
    cls = _POLICIES.get(key)
    if cls is None:
        close = difflib.get_close_matches(key, _POLICIES, n=2)
        hint = f"; did you mean {close}?" if close else ""
        raise KeyError(
            f"unknown scheduling policy {name!r}; known: {list(_POLICIES)}{hint}"
        )
    return cls(preemptive=preemptive)


__all__ = [
    "FifoPolicy",
    "POLICY_NAMES",
    "SchedulingPolicy",
    "ShortestRemainingPolicy",
    "SmallestFirstPolicy",
    "policy_by_name",
]
