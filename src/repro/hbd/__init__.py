"""High-Bandwidth Domain (HBD) architecture models.

Every architecture evaluated in section 6 of the paper is modelled here with
a common interface (:class:`repro.hbd.base.HBDArchitecture`) exposing the
GPU-accounting queries the large-scale simulations need: how many GPUs can
run TP groups of a given size under a given node-fault set, and how many
healthy GPUs are wasted by fragmentation / fault propagation.

Architectures:

* :class:`~repro.hbd.bigswitch.BigSwitchHBD`   -- the ideal upper bound.
* :class:`~repro.hbd.nvl.NVLHBD`               -- switch-centric NVL-36/72/576.
* :class:`~repro.hbd.tpuv4.TPUv4HBD`           -- switch-GPU hybrid (4^3 cubes + OCS).
* :class:`~repro.hbd.sipring.SiPRingHBD`       -- GPU-centric fixed rings.
* :class:`~repro.hbd.infinitehbd.InfiniteHBDArchitecture` -- the paper's design.
"""

from repro.hbd.base import (
    CountDecomposition,
    DeltaReplayState,
    FaultCountKernel,
    HBDArchitecture,
    HealthyGroupDecomposition,
    WasteBreakdown,
)
from repro.hbd.bigswitch import BigSwitchHBD
from repro.hbd.nvl import NVLHBD
from repro.hbd.tpuv4 import TPUv4HBD
from repro.hbd.sipring import SiPRingHBD
from repro.hbd.infinitehbd import InfiniteHBDArchitecture
from repro.hbd.registry import (
    DEFAULT_LINEUP,
    architecture_by_name,
    default_architectures,
    list_architectures,
)

__all__ = [
    "CountDecomposition",
    "DeltaReplayState",
    "FaultCountKernel",
    "HBDArchitecture",
    "HealthyGroupDecomposition",
    "WasteBreakdown",
    "BigSwitchHBD",
    "NVLHBD",
    "TPUv4HBD",
    "SiPRingHBD",
    "InfiniteHBDArchitecture",
    "DEFAULT_LINEUP",
    "default_architectures",
    "architecture_by_name",
    "list_architectures",
]
