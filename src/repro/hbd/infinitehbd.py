"""InfiniteHBD architecture model (the paper's contribution).

This adapter exposes the reconfigurable K-Hop Ring topology
(:mod:`repro.core.khop_ring`) through the common
:class:`~repro.hbd.base.HBDArchitecture` interface used by the large-scale
cluster simulations.  The relevant behaviour:

* a run of fewer than ``K`` consecutive faulty nodes is bypassed via backup
  links, so healthy segments merge across it;
* each healthy segment is packed with TP groups of ``ceil(tp/R)`` nodes;
* the remainder of each segment is the only fragmentation loss.

The adapter also implements the O(delta) incremental replay
(:meth:`~repro.hbd.base.HBDArchitecture.breakdown_delta`): a node flip only
affects the healthy segment(s) it touches, bounded by the nearest
*breakpoints* (fault runs of ``>= K`` consecutive nodes, the Appendix C
notion).  Each flip therefore scans the sorted fault set outward from the
flipped node until it hits a breakpoint on each side, re-sweeps only the
faults in between, and leaves the rest of the ring untouched -- the cost is
local to the affected segment, independent of the cluster size.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.hbd.base import DeltaReplayState, HBDArchitecture, PlacementGroup


class _KHopDelta:
    """Sorted fault list backing the local incremental update."""

    __slots__ = ("faults",)

    def __init__(self, faults: list[int]) -> None:
        self.faults = faults


def _span_capacity(
    faults: list[int], lo: int, hi: int, k: int, npg: int, tp_size: int
) -> int:
    """Capacity of the healthy segments inside the span ``[lo, hi]``.

    ``faults`` are the sorted (unwrapped) faulty positions within the span,
    whose two bounds abut breakpoints (or the physical line ends), so fault
    runs of ``>= k`` inside it cut segments and shorter runs are bridged.
    Runs touching the span bounds merge into the bounding breakpoint / end,
    which the sweep handles naturally (they only ever cut an empty prefix
    or suffix).
    """
    if hi < lo:
        return 0
    total = 0
    healthy = 0
    run = 0
    pos = lo
    for fault in faults:
        gap = fault - pos
        if gap > 0:
            if run >= k:
                total += (healthy // npg) * tp_size
                healthy = 0
            healthy += gap
            run = 1
        else:
            run += 1
        pos = fault + 1
    tail = hi - pos + 1
    if tail > 0:
        if run >= k:
            total += (healthy // npg) * tp_size
            healthy = 0
        healthy += tail
    total += (healthy // npg) * tp_size
    return total


class InfiniteHBDArchitecture(HBDArchitecture):
    """InfiniteHBD with ``K`` OCSTrx bundles per node (K-Hop Ring)."""

    supports_delta = True

    def __init__(
        self, k: int = 2, gpus_per_node: int = 4, ring: bool = True
    ) -> None:
        super().__init__(gpus_per_node)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.ring = ring
        self.name = f"InfiniteHBD(K={k})"
        self._topology_cache: dict[int, KHopRingTopology] = {}

    def topology(self, n_nodes: int) -> KHopRingTopology:
        """K-Hop topology instance for an ``n_nodes`` cluster (cached)."""
        topo = self._topology_cache.get(n_nodes)
        if topo is None:
            topo = KHopRingTopology(
                KHopTopologyConfig(
                    n_nodes=n_nodes,
                    k=self.k,
                    gpus_per_node=self.gpus_per_node,
                    ring=self.ring,
                )
            )
            self._topology_cache[n_nodes] = topo
        return topo

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        return self.topology(n_nodes).usable_gpus(faulty, tp_size)

    def breakpoints(self, n_nodes: int, faulty_nodes: Iterable[int]) -> int:
        """Unbridgeable fault gaps (Appendix C breakpoints) for a fault set."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        return self.topology(n_nodes).breakpoints(faulty)

    # ------------------------------------------------------------- placement
    def placement_groups(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        """One domain per healthy segment (bridgeable fault runs included)."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        topo = self.topology(n_nodes)
        npg = topo.nodes_per_tp_group(tp_size)
        return tuple(
            PlacementGroup(nodes=seg.nodes, nodes_per_group=npg, tp_size=tp_size)
            for seg in topo.healthy_segments(faulty)
        )

    # ------------------------------------------------------------ delta replay
    def _delta_init(
        self, n_nodes: int, faulty: frozenset[int], tp_size: int
    ) -> tuple[int, _KHopDelta]:
        usable = self.topology(n_nodes).usable_gpus(faulty, tp_size)
        return usable, _KHopDelta(sorted(faulty))

    def _delta_flip(self, state: DeltaReplayState, node: int, failed: bool) -> int:
        aux: _KHopDelta = state.aux
        if failed:
            delta = self._fail_delta(aux.faults, node, state)
            bisect.insort(aux.faults, node)
            return delta
        # Recovering ``node`` is exactly the inverse of failing it against
        # the fault set without it.
        del aux.faults[bisect.bisect_left(aux.faults, node)]
        return -self._fail_delta(aux.faults, node, state)

    def _fail_delta(
        self, faults: list[int], node: int, state: DeltaReplayState
    ) -> int:
        """Capacity change of failing the (currently healthy) ``node``."""
        n, tp_size = state.n_nodes, state.tp_size
        k = self.k
        npg = self.nodes_per_tp_group(tp_size)

        right_anchor, right_faults = self._scan(faults, node, n, forward=True)
        left_anchor, left_faults = self._scan(faults, node, n, forward=False)

        if self.ring and (right_anchor is None or left_anchor is None):
            # No breakpoint anywhere: the ring is one segment, and stays one
            # segment after the flip (a single breakpoint cuts a ring into
            # one open segment, not two).
            healthy = n - len(faults)
            return ((healthy - 1) // npg - healthy // npg) * tp_size

        lo = (left_anchor + 1) if left_anchor is not None else 0
        hi = (right_anchor - 1) if right_anchor is not None else n - 1
        between = left_faults[::-1] + right_faults
        before = _span_capacity(between, lo, hi, k, npg, tp_size)
        index = bisect.bisect_left(between, node)
        after = _span_capacity(
            between[:index] + [node] + between[index:], lo, hi, k, npg, tp_size
        )
        return after - before

    def _scan(
        self, faults: list[int], node: int, n: int, forward: bool
    ) -> tuple[int | None, list[int]]:
        """Walk the sorted fault list away from ``node`` to the nearest
        breakpoint (fault run of ``>= k`` consecutive nodes).

        Returns the breakpoint's near edge in unwrapped coordinates (start
        of the run when walking forward, end when walking backward; ``None``
        when the scan exhausts the faults first) plus the non-breakpoint
        faults passed on the way, ordered by distance from ``node``.
        Positions wrap by ``+- n`` on a ring, so callers can sweep the span
        between the two anchors linearly.
        """
        m = len(faults)
        passed: list[int] = []
        if m == 0:
            return None, passed
        step = 1 if forward else -1
        index = bisect.bisect_right(faults, node) if forward else (
            bisect.bisect_left(faults, node) - 1
        )
        run: list[int] = []
        prev: int | None = None
        for _ in range(m):
            if 0 <= index < m:
                pos = faults[index]
            elif self.ring:
                pos = faults[index % m] + (n if forward else -n)
            else:
                break
            if prev is not None and pos == prev + step:
                run.append(pos)
            else:
                passed.extend(run)
                run = [pos]
            prev = pos
            if len(run) >= self.k:
                return run[0], passed
            index += step
        passed.extend(run)
        return None, passed
