"""InfiniteHBD architecture model (the paper's contribution).

This thin adapter exposes the reconfigurable K-Hop Ring topology
(:mod:`repro.core.khop_ring`) through the common
:class:`~repro.hbd.base.HBDArchitecture` interface used by the large-scale
cluster simulations.  The relevant behaviour:

* a run of fewer than ``K`` consecutive faulty nodes is bypassed via backup
  links, so healthy segments merge across it;
* each healthy segment is packed with TP groups of ``ceil(tp/R)`` nodes;
* the remainder of each segment is the only fragmentation loss.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.khop_ring import KHopRingTopology, KHopTopologyConfig
from repro.hbd.base import HBDArchitecture


class InfiniteHBDArchitecture(HBDArchitecture):
    """InfiniteHBD with ``K`` OCSTrx bundles per node (K-Hop Ring)."""

    def __init__(
        self, k: int = 2, gpus_per_node: int = 4, ring: bool = True
    ) -> None:
        super().__init__(gpus_per_node)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.ring = ring
        self.name = f"InfiniteHBD(K={k})"
        self._topology_cache: Dict[int, KHopRingTopology] = {}

    def topology(self, n_nodes: int) -> KHopRingTopology:
        """K-Hop topology instance for an ``n_nodes`` cluster (cached)."""
        topo = self._topology_cache.get(n_nodes)
        if topo is None:
            topo = KHopRingTopology(
                KHopTopologyConfig(
                    n_nodes=n_nodes,
                    k=self.k,
                    gpus_per_node=self.gpus_per_node,
                    ring=self.ring,
                )
            )
            self._topology_cache[n_nodes] = topo
        return topo

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        return self.topology(n_nodes).usable_gpus(faulty, tp_size)

    def breakpoints(self, n_nodes: int, faulty_nodes: Iterable[int]) -> int:
        """Unbridgeable fault gaps (Appendix C breakpoints) for a fault set."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        return self.topology(n_nodes).breakpoints(faulty)
