"""GPU-centric SiP-Ring HBD (section 2.2, Figure 1b).

SiP-Ring connects nodes into *static*, fixed-size optical rings whose size
equals the TP group size.  The ring cannot be reconfigured: a single node
failure breaks the ring into a line, which can no longer host the TP group,
so every healthy GPU in that ring is wasted (the HBD-level fault explosion
radius of GPU-centric designs).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.hbd.base import HBDArchitecture


class SiPRingHBD(HBDArchitecture):
    """Fixed-size static rings; a faulty node kills its whole ring."""

    name = "SiP-Ring"

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        nodes_per_ring = max(1, -(-tp_size // self.gpus_per_node))
        ring_gpu_capacity = nodes_per_ring * self.gpus_per_node
        # A ring only supports the TP size it was built for; if the node
        # granularity cannot host it exactly, the remainder inside the ring
        # is also fragmented away.
        per_ring_usable = self._fit(ring_gpu_capacity, tp_size)

        n_rings = n_nodes // nodes_per_ring
        faulty_rings: Dict[int, bool] = {}
        for node in faulty:
            ring = node // nodes_per_ring
            if ring < n_rings:
                faulty_rings[ring] = True

        usable = 0
        for ring in range(n_rings):
            if not faulty_rings.get(ring, False):
                usable += per_ring_usable
        return usable
