"""GPU-centric SiP-Ring HBD (section 2.2, Figure 1b).

SiP-Ring connects nodes into *static*, fixed-size optical rings whose size
equals the TP group size.  The ring cannot be reconfigured: a single node
failure breaks the ring into a line, which can no longer host the TP group,
so every healthy GPU in that ring is wasted (the HBD-level fault explosion
radius of GPU-centric designs).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hbd.base import (
    CountDecomposition,
    DeltaReplayState,
    HBDArchitecture,
    PlacementGroup,
)


class _SiPRingDelta:
    """Per-ring fault counters for the O(delta) incremental update."""

    __slots__ = ("nodes_per_ring", "n_rings", "per_ring_usable", "ring_faults")

    def __init__(
        self,
        nodes_per_ring: int,
        n_rings: int,
        per_ring_usable: int,
        ring_faults: dict[int, int],
    ) -> None:
        self.nodes_per_ring = nodes_per_ring
        self.n_rings = n_rings
        self.per_ring_usable = per_ring_usable
        self.ring_faults = ring_faults


class SiPRingHBD(HBDArchitecture):
    """Fixed-size static rings; a faulty node kills its whole ring."""

    name = "SiP-Ring"
    supports_delta = True

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        nodes_per_ring = max(1, -(-tp_size // self.gpus_per_node))
        ring_gpu_capacity = nodes_per_ring * self.gpus_per_node
        # A ring only supports the TP size it was built for; if the node
        # granularity cannot host it exactly, the remainder inside the ring
        # is also fragmented away.
        per_ring_usable = self._fit(ring_gpu_capacity, tp_size)

        n_rings = n_nodes // nodes_per_ring
        faulty_rings: dict[int, bool] = {}
        for node in faulty:
            ring = node // nodes_per_ring
            if ring < n_rings:
                faulty_rings[ring] = True

        usable = 0
        for ring in range(n_rings):
            if not faulty_rings.get(ring, False):
                usable += per_ring_usable
        return usable

    def fault_count_decomposition(
        self, n_nodes: int, tp_size: int
    ) -> CountDecomposition:
        """One domain per ring; any fault zeroes the ring's contribution."""
        nodes_per_ring = self.nodes_per_tp_group(tp_size)
        per_ring_usable = self._fit(nodes_per_ring * self.gpus_per_node, tp_size)
        n_rings = n_nodes // nodes_per_ring
        domain_of_node = tuple(
            node // nodes_per_ring if node // nodes_per_ring < n_rings else -1
            for node in range(n_nodes)
        )
        ring_table = (per_ring_usable,) + (0,) * nodes_per_ring
        return CountDecomposition(
            domain_of_node=domain_of_node,
            tables=(ring_table,) if n_rings else (),
            table_of_domain=(0,) * n_rings,
        )

    # ------------------------------------------------------------- placement
    def placement_groups(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        """One domain per fault-free ring; a faulty ring hosts nothing."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        nodes_per_ring = self.nodes_per_tp_group(tp_size)
        n_rings = n_nodes // nodes_per_ring
        faulty_rings = {
            node // nodes_per_ring
            for node in faulty
            if node // nodes_per_ring < n_rings
        }
        groups = []
        for ring in range(n_rings):
            if ring in faulty_rings:
                continue
            start = ring * nodes_per_ring
            groups.append(
                PlacementGroup(
                    nodes=tuple(range(start, start + nodes_per_ring)),
                    nodes_per_group=nodes_per_ring,
                    tp_size=tp_size,
                )
            )
        return tuple(groups)

    # ------------------------------------------------------------ delta replay
    def _delta_init(
        self, n_nodes: int, faulty: frozenset[int], tp_size: int
    ) -> tuple[int, _SiPRingDelta]:
        nodes_per_ring = max(1, -(-tp_size // self.gpus_per_node))
        per_ring_usable = self._fit(nodes_per_ring * self.gpus_per_node, tp_size)
        n_rings = n_nodes // nodes_per_ring
        ring_faults: dict[int, int] = {}
        for node in faulty:
            ring = node // nodes_per_ring
            if ring < n_rings:
                ring_faults[ring] = ring_faults.get(ring, 0) + 1
        usable = (n_rings - len(ring_faults)) * per_ring_usable
        aux = _SiPRingDelta(nodes_per_ring, n_rings, per_ring_usable, ring_faults)
        return usable, aux

    def _delta_flip(self, state: DeltaReplayState, node: int, failed: bool) -> int:
        aux: _SiPRingDelta = state.aux
        ring = node // aux.nodes_per_ring
        if ring >= aux.n_rings:
            return 0  # node beyond the last complete ring never counts
        if failed:
            count = aux.ring_faults.get(ring, 0)
            aux.ring_faults[ring] = count + 1
            return -aux.per_ring_usable if count == 0 else 0
        count = aux.ring_faults[ring] - 1
        if count:
            aux.ring_faults[ring] = count
            return 0
        del aux.ring_faults[ring]
        return aux.per_ring_usable
