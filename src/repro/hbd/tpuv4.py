"""Switch-GPU hybrid HBD modelled after Google TPUv4 (section 2.2, 6.1).

TPUv4 arranges accelerators into 4x4x4 cubes (64 per cube) and connects the
cubes through centralised OCS-based switches.  Resource management is
cube-granular:

* TP groups of up to 64 GPUs are carved out of individual cubes -- a cube
  with ``f`` faulty nodes can only serve ``floor((64 - f*R) / tp) * tp``
  GPUs, so a single fault wastes up to a cube's worth of capacity when the
  TP size is large (the paper's "cube-level fault explosion radius").
* TP groups larger than a cube combine *complete, fully healthy* cubes via
  the OCS layer; a cube with any fault cannot participate.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.hbd.base import HBDArchitecture


class TPUv4HBD(HBDArchitecture):
    """TPUv4-style hybrid HBD with cube-granular resource management."""

    name = "TPUv4"

    def __init__(self, gpus_per_node: int = 4, cube_size: int = 64) -> None:
        super().__init__(gpus_per_node)
        if cube_size < gpus_per_node or cube_size % gpus_per_node:
            raise ValueError("cube_size must be a positive multiple of gpus_per_node")
        self.cube_size = cube_size

    @property
    def nodes_per_cube(self) -> int:
        return self.cube_size // self.gpus_per_node

    def n_cubes(self, n_nodes: int) -> int:
        return n_nodes // self.nodes_per_cube

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        faults_per_cube = self._faults_per_cube(n_nodes, faulty)
        n_cubes = self.n_cubes(n_nodes)

        if tp_size <= self.cube_size:
            usable = 0
            for cube in range(n_cubes):
                healthy = (
                    self.cube_size
                    - faults_per_cube.get(cube, 0) * self.gpus_per_node
                )
                usable += self._fit(healthy, tp_size)
            usable += self._leftover_usable(n_nodes, faulty, tp_size)
            return usable

        # TP group spans multiple cubes: only fully healthy cubes can join.
        cubes_per_group = -(-tp_size // self.cube_size)
        healthy_cubes = sum(
            1 for cube in range(n_cubes) if faults_per_cube.get(cube, 0) == 0
        )
        groups = healthy_cubes // cubes_per_group
        return groups * tp_size

    # --------------------------------------------------------------- helpers
    def _faults_per_cube(self, n_nodes: int, faulty) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for node in faulty:
            cube = node // self.nodes_per_cube
            if cube < self.n_cubes(n_nodes):
                counts[cube] = counts.get(cube, 0) + 1
        return counts

    def _leftover_usable(self, n_nodes: int, faulty, tp_size: int) -> int:
        """Nodes beyond the last complete cube form a partial cube."""
        leftover_nodes = n_nodes % self.nodes_per_cube
        if not leftover_nodes:
            return 0
        start = self.n_cubes(n_nodes) * self.nodes_per_cube
        healthy = sum(
            self.gpus_per_node for node in range(start, n_nodes) if node not in faulty
        )
        return self._fit(healthy, tp_size)
