"""Switch-GPU hybrid HBD modelled after Google TPUv4 (section 2.2, 6.1).

TPUv4 arranges accelerators into 4x4x4 cubes (64 per cube) and connects the
cubes through centralised OCS-based switches.  Resource management is
cube-granular:

* TP groups of up to 64 GPUs are carved out of individual cubes -- a cube
  with ``f`` faulty nodes can only serve ``floor((64 - f*R) / tp) * tp``
  GPUs, so a single fault wastes up to a cube's worth of capacity when the
  TP size is large (the paper's "cube-level fault explosion radius").
* TP groups larger than a cube combine *complete, fully healthy* cubes via
  the OCS layer; a cube with any fault cannot participate.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hbd.base import (
    CountDecomposition,
    DeltaReplayState,
    FaultCountKernel,
    HBDArchitecture,
    HealthyGroupDecomposition,
    PlacementGroup,
)


class _TPUv4Delta:
    """Per-cube fault counters for the O(delta) incremental update.

    ``multi_cube`` selects the regime: below the cube size usable capacity is
    a per-cube (plus partial-cube) sum; above it only the count of fully
    healthy cubes matters.
    """

    __slots__ = (
        "multi_cube",
        "nodes_per_cube",
        "n_cubes",
        "cube_faults",
        "leftover_healthy_gpus",
        "healthy_cubes",
        "cubes_per_group",
    )

    def __init__(
        self,
        multi_cube: bool,
        nodes_per_cube: int,
        n_cubes: int,
        cube_faults: dict[int, int],
        leftover_healthy_gpus: int,
        healthy_cubes: int,
        cubes_per_group: int,
    ) -> None:
        self.multi_cube = multi_cube
        self.nodes_per_cube = nodes_per_cube
        self.n_cubes = n_cubes
        self.cube_faults = cube_faults
        self.leftover_healthy_gpus = leftover_healthy_gpus
        self.healthy_cubes = healthy_cubes
        self.cubes_per_group = cubes_per_group


class TPUv4HBD(HBDArchitecture):
    """TPUv4-style hybrid HBD with cube-granular resource management."""

    name = "TPUv4"
    supports_delta = True

    def __init__(self, gpus_per_node: int = 4, cube_size: int = 64) -> None:
        super().__init__(gpus_per_node)
        if cube_size < gpus_per_node or cube_size % gpus_per_node:
            raise ValueError("cube_size must be a positive multiple of gpus_per_node")
        self.cube_size = cube_size

    @property
    def nodes_per_cube(self) -> int:
        return self.cube_size // self.gpus_per_node

    def n_cubes(self, n_nodes: int) -> int:
        return n_nodes // self.nodes_per_cube

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        faults_per_cube = self._faults_per_cube(n_nodes, faulty)
        n_cubes = self.n_cubes(n_nodes)

        if tp_size <= self.cube_size:
            usable = 0
            for cube in range(n_cubes):
                healthy = (
                    self.cube_size
                    - faults_per_cube.get(cube, 0) * self.gpus_per_node
                )
                usable += self._fit(healthy, tp_size)
            usable += self._leftover_usable(n_nodes, faulty, tp_size)
            return usable

        # TP group spans multiple cubes: only fully healthy cubes can join.
        cubes_per_group = -(-tp_size // self.cube_size)
        healthy_cubes = sum(
            1 for cube in range(n_cubes) if faults_per_cube.get(cube, 0) == 0
        )
        groups = healthy_cubes // cubes_per_group
        return groups * tp_size

    def fault_count_decomposition(
        self, n_nodes: int, tp_size: int
    ) -> FaultCountKernel:
        """Per-cube count tables below the cube size; healthy-cube groups above."""
        npc = self.nodes_per_cube
        n_cubes = self.n_cubes(n_nodes)
        if tp_size <= self.cube_size:
            cube_table = tuple(
                self._fit(self.cube_size - count * self.gpus_per_node, tp_size)
                for count in range(npc + 1)
            )
            domain_of_node = tuple(
                min(node // npc, n_cubes) for node in range(n_nodes)
            )
            leftover = n_nodes % npc
            if leftover:
                leftover_table = tuple(
                    self._fit((leftover - count) * self.gpus_per_node, tp_size)
                    for count in range(leftover + 1)
                )
                return CountDecomposition(
                    domain_of_node=domain_of_node,
                    tables=(cube_table, leftover_table),
                    table_of_domain=(0,) * n_cubes + (1,),
                )
            return CountDecomposition(
                domain_of_node=domain_of_node,
                tables=(cube_table,),
                table_of_domain=(0,) * n_cubes,
            )
        # Multi-cube TP groups: only the count of fully healthy cubes matters,
        # and partial-cube nodes never participate.
        return HealthyGroupDecomposition(
            domain_of_node=tuple(
                node // npc if node // npc < n_cubes else -1
                for node in range(n_nodes)
            ),
            n_domains=n_cubes,
            group_size=-(-tp_size // self.cube_size),
            tp_size=tp_size,
        )

    # ------------------------------------------------------------- placement
    def placement_groups(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        """Per-cube domains below the cube size; dedicated healthy-cube
        combinations (the whole combination per TP group) above it."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        n_cubes = self.n_cubes(n_nodes)
        npc = self.nodes_per_cube

        def cube_nodes(cube: int) -> tuple[int, ...]:
            start = cube * npc
            return tuple(
                node for node in range(start, start + npc) if node not in faulty
            )

        if tp_size <= self.cube_size:
            npg = self.nodes_per_tp_group(tp_size)
            groups = []
            for cube in range(n_cubes):
                healthy = cube_nodes(cube)
                if healthy:
                    groups.append(
                        PlacementGroup(
                            nodes=healthy, nodes_per_group=npg, tp_size=tp_size
                        )
                    )
            leftover = tuple(
                node for node in range(n_cubes * npc, n_nodes) if node not in faulty
            )
            if leftover:
                groups.append(
                    PlacementGroup(
                        nodes=leftover, nodes_per_group=npg, tp_size=tp_size
                    )
                )
            return tuple(groups)

        # TP group spans multiple cubes: chunk the fully healthy cubes (in
        # index order) into dedicated combinations of cubes_per_group; each
        # combination hosts exactly one TP group and is consumed whole.
        faults_per_cube = self._faults_per_cube(n_nodes, faulty)
        cubes_per_group = -(-tp_size // self.cube_size)
        healthy_cubes = [
            cube for cube in range(n_cubes) if faults_per_cube.get(cube, 0) == 0
        ]
        groups = []
        for i in range(0, len(healthy_cubes) - cubes_per_group + 1, cubes_per_group):
            chunk = healthy_cubes[i : i + cubes_per_group]
            nodes = tuple(
                node for cube in chunk for node in range(cube * npc, (cube + 1) * npc)
            )
            groups.append(
                PlacementGroup(
                    nodes=nodes, nodes_per_group=len(nodes), tp_size=tp_size
                )
            )
        return tuple(groups)

    # ------------------------------------------------------------ delta replay
    def _delta_init(
        self, n_nodes: int, faulty: frozenset[int], tp_size: int
    ) -> tuple[int, _TPUv4Delta]:
        n_cubes = self.n_cubes(n_nodes)
        cube_faults = self._faults_per_cube(n_nodes, faulty)
        if tp_size <= self.cube_size:
            leftover_start = n_cubes * self.nodes_per_cube
            leftover_healthy = sum(
                self.gpus_per_node
                for node in range(leftover_start, n_nodes)
                if node not in faulty
            )
            usable = sum(
                self._fit(
                    self.cube_size - cube_faults.get(c, 0) * self.gpus_per_node,
                    tp_size,
                )
                for c in range(n_cubes)
            ) + self._fit(leftover_healthy, tp_size)
            aux = _TPUv4Delta(
                False, self.nodes_per_cube, n_cubes, cube_faults,
                leftover_healthy, 0, 0,
            )
            return usable, aux
        cubes_per_group = -(-tp_size // self.cube_size)
        healthy_cubes = n_cubes - len(cube_faults)
        usable = (healthy_cubes // cubes_per_group) * tp_size
        aux = _TPUv4Delta(
            True, self.nodes_per_cube, n_cubes, cube_faults,
            0, healthy_cubes, cubes_per_group,
        )
        return usable, aux

    def _delta_flip(self, state: DeltaReplayState, node: int, failed: bool) -> int:
        aux: _TPUv4Delta = state.aux
        tp_size = state.tp_size
        cube = node // aux.nodes_per_cube
        if aux.multi_cube:
            if cube >= aux.n_cubes:
                return 0  # partial-cube nodes never join multi-cube groups
            old = (aux.healthy_cubes // aux.cubes_per_group) * tp_size
            count = aux.cube_faults.get(cube, 0)
            if failed:
                aux.cube_faults[cube] = count + 1
                if count == 0:
                    aux.healthy_cubes -= 1
            else:
                count -= 1
                if count:
                    aux.cube_faults[cube] = count
                else:
                    del aux.cube_faults[cube]
                    aux.healthy_cubes += 1
            return (aux.healthy_cubes // aux.cubes_per_group) * tp_size - old
        if cube < aux.n_cubes:
            count = aux.cube_faults.get(cube, 0)
            old = self._fit(self.cube_size - count * self.gpus_per_node, tp_size)
            count += 1 if failed else -1
            if count:
                aux.cube_faults[cube] = count
            else:
                del aux.cube_faults[cube]
            return self._fit(self.cube_size - count * self.gpus_per_node, tp_size) - old
        old = self._fit(aux.leftover_healthy_gpus, tp_size)
        aux.leftover_healthy_gpus += -self.gpus_per_node if failed else self.gpus_per_node
        return self._fit(aux.leftover_healthy_gpus, tp_size) - old

    # --------------------------------------------------------------- helpers
    def _faults_per_cube(self, n_nodes: int, faulty) -> dict[int, int]:
        counts: dict[int, int] = {}
        for node in faulty:
            cube = node // self.nodes_per_cube
            if cube < self.n_cubes(n_nodes):
                counts[cube] = counts.get(cube, 0) + 1
        return counts

    def _leftover_usable(self, n_nodes: int, faulty, tp_size: int) -> int:
        """Nodes beyond the last complete cube form a partial cube."""
        leftover_nodes = n_nodes % self.nodes_per_cube
        if not leftover_nodes:
            return 0
        start = self.n_cubes(n_nodes) * self.nodes_per_cube
        healthy = sum(
            self.gpus_per_node for node in range(start, n_nodes) if node not in faulty
        )
        return self._fit(healthy, tp_size)
