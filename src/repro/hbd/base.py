"""Common interface for HBD architecture models.

The large-scale evaluation of the paper (section 6.2) compares architectures
through three node-fault driven metrics:

* **GPU waste ratio** -- healthy GPUs that cannot join any TP group (because
  of fragmentation, disconnection or fault-radius propagation), divided by
  the total GPU count.
* **Maximum job scale** -- the largest multiple of the TP size that the
  cluster can serve under a fault set.
* **Fault-waiting** -- whether a job of a given scale can run at all.

All of these reduce to a single architecture-specific primitive:
``usable_gpus(n_nodes, faulty_nodes, tp_size)``.  Subclasses implement it;
this base class derives the rest.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any


@dataclass(frozen=True)
class WasteBreakdown:
    """Detailed GPU accounting for one fault scenario."""

    total_gpus: int
    faulty_gpus: int
    usable_gpus: int

    @property
    def healthy_gpus(self) -> int:
        return self.total_gpus - self.faulty_gpus

    @property
    def wasted_gpus(self) -> int:
        """Healthy GPUs that cannot be used."""
        return self.healthy_gpus - self.usable_gpus

    @property
    def waste_ratio(self) -> float:
        """Wasted healthy GPUs over the total GPU count (paper definition)."""
        if self.total_gpus == 0:
            return 0.0
        return self.wasted_gpus / self.total_gpus

    @property
    def unavailable_ratio(self) -> float:
        """Wasted plus faulty GPUs over the total (used for aggregate cost)."""
        if self.total_gpus == 0:
            return 0.0
        return (self.wasted_gpus + self.faulty_gpus) / self.total_gpus


@dataclass(frozen=True)
class PlacementGroup:
    """A placement domain: healthy nodes a TP group must not straddle.

    ``nodes`` are the healthy node ids of the domain in deployment order;
    ``nodes_per_group`` is the number of whole nodes one TP group of the
    queried ``tp_size`` consumes inside this domain (``ceil(tp / R)`` for
    sharable domains; the full domain for dedicated combinations such as
    multi-cube TPUv4 groups).  Placement is node-granular: a node belongs to
    at most one job, so a domain holds ``capacity_groups`` TP groups and any
    ``nodes_per_group`` free nodes of the domain can host one of them.

    When ``tp_size`` is a multiple of ``gpus_per_node`` (every evaluated
    configuration), ``sum(g.capacity_gpus for g in groups)`` equals
    ``usable_gpus`` exactly; otherwise node granularity makes the placed
    capacity a documented conservative lower bound.
    """

    nodes: tuple[int, ...]
    nodes_per_group: int
    tp_size: int

    @property
    def capacity_groups(self) -> int:
        """TP groups this domain can host when all its nodes are free."""
        return len(self.nodes) // self.nodes_per_group

    @property
    def capacity_gpus(self) -> int:
        return self.capacity_groups * self.tp_size


@dataclass(frozen=True)
class CountDecomposition:
    """``usable_gpus`` as a sum of per-domain fault-count lookups.

    For architectures whose capacity decomposes over independent node
    domains (switch, units, rings, cubes), ``usable_gpus`` depends on the
    fault set only through the *number* of faults inside each domain:

    ``usable = sum(tables[table_of_domain[d]][faults_in_domain_d])``

    ``domain_of_node[node]`` maps each node to its domain (``-1`` = the node
    never contributes, e.g. nodes beyond the last complete ring); domains
    with identical lookup tables share one entry in ``tables`` via
    ``table_of_domain``.  The batched Monte-Carlo engine (:mod:`repro.mc`)
    turns this into vectorized table gathers over whole seed blocks;
    :meth:`usable_gpus` is the scalar reference evaluator the equivalence
    tests check against the architecture's own ``usable_gpus``.
    """

    domain_of_node: tuple[int, ...]
    tables: tuple[tuple[int, ...], ...]
    table_of_domain: tuple[int, ...]

    def usable_gpus(self, faulty_nodes: Iterable[int]) -> int:
        """Scalar reference evaluation (faulty ids must be in range)."""
        counts = [0] * len(self.table_of_domain)
        for node in faulty_nodes:
            domain = self.domain_of_node[node]
            if domain >= 0:
                counts[domain] += 1
        return sum(
            self.tables[self.table_of_domain[domain]][count]
            for domain, count in enumerate(counts)
        )


@dataclass(frozen=True)
class HealthyGroupDecomposition:
    """``usable_gpus`` as whole-domain groups of fault-free domains.

    For dedicated multi-domain TP groups (TPUv4 with ``tp > cube_size``):
    a domain contributes only when completely fault-free, and every
    ``group_size`` healthy domains host one TP group:

    ``usable = (healthy_domains // group_size) * tp_size``

    ``domain_of_node`` follows the :class:`CountDecomposition` convention
    (``-1`` = excluded); ``n_domains`` counts the domains (all of which are
    healthy when no fault touches them).
    """

    domain_of_node: tuple[int, ...]
    n_domains: int
    group_size: int
    tp_size: int

    def usable_gpus(self, faulty_nodes: Iterable[int]) -> int:
        """Scalar reference evaluation (faulty ids must be in range)."""
        hit: set[int] = set()
        for node in faulty_nodes:
            domain = self.domain_of_node[node]
            if domain >= 0:
                hit.add(domain)
        healthy = self.n_domains - len(hit)
        return (healthy // self.group_size) * self.tp_size


#: A fault-count kernel: either decomposition form, or ``None`` when the
#: architecture's capacity is not a function of per-domain fault counts.
FaultCountKernel = CountDecomposition | HealthyGroupDecomposition


@dataclass
class DeltaReplayState:
    """Carry-over state of an incremental (delta) breakdown replay.

    Produced by :meth:`HBDArchitecture.delta_state` and advanced by
    :meth:`HBDArchitecture.breakdown_delta`.  ``faults`` and ``usable``
    describe the fault set the state currently represents; ``aux`` is the
    architecture-specific incremental payload and is **opaque** to callers
    (``None`` means the architecture has no O(delta) path and every advance
    recomputes from scratch).

    The payload may be mutated in place when the state is advanced, so a
    state passed to :meth:`~HBDArchitecture.breakdown_delta` is *consumed*:
    keep using the returned state, not the argument.
    """

    n_nodes: int
    tp_size: int
    faults: frozenset[int]
    usable: int
    aux: Any | None


class HBDArchitecture(abc.ABC):
    """Abstract HBD architecture.

    Parameters
    ----------
    gpus_per_node:
        ``R`` -- GPUs per node.  All evaluated clusters are homogeneous.
    """

    #: Human-readable architecture name (used as legend label in benches).
    name: str = "abstract"

    #: Whether the subclass implements an O(delta) incremental update
    #: (:meth:`breakdown_delta` stays *total* either way -- architectures
    #: without one fall back to a full recompute per advance).
    supports_delta: bool = False

    def __init__(self, gpus_per_node: int = 4) -> None:
        if gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        self.gpus_per_node = gpus_per_node

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        """GPUs that can participate in TP groups of ``tp_size``.

        ``faulty_nodes`` is a set of node indices in ``[0, n_nodes)``; a
        faulty node loses all of its GPUs.  The return value is always a
        multiple of ``tp_size``.
        """

    # ------------------------------------------------------------ derived API
    def total_gpus(self, n_nodes: int) -> int:
        return n_nodes * self.gpus_per_node

    def breakdown(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> WasteBreakdown:
        """Full GPU accounting for one fault scenario."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        usable = self.usable_gpus(n_nodes, faulty, tp_size)
        total = self.total_gpus(n_nodes)
        faulty_gpus = len(faulty) * self.gpus_per_node
        if usable > total - faulty_gpus:
            raise RuntimeError(
                f"{self.name}: usable ({usable}) exceeds healthy GPUs "
                f"({total - faulty_gpus})"
            )
        return WasteBreakdown(
            total_gpus=total, faulty_gpus=faulty_gpus, usable_gpus=usable
        )

    # ------------------------------------------------------------ delta replay
    def delta_state(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> DeltaReplayState:
        """Initial state for an incremental replay starting at ``faulty_nodes``.

        The initial construction costs one full ``usable_gpus`` evaluation;
        every subsequent :meth:`breakdown_delta` advance is O(delta) for
        architectures with ``supports_delta`` and a full recompute otherwise.
        """
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        usable, aux = self._delta_init(n_nodes, faulty, tp_size)
        return DeltaReplayState(
            n_nodes=n_nodes, tp_size=tp_size, faults=faulty, usable=usable, aux=aux
        )

    def breakdown_delta(
        self,
        state: DeltaReplayState,
        added_faults: Iterable[int] = (),
        removed_faults: Iterable[int] = (),
    ) -> tuple[WasteBreakdown, DeltaReplayState]:
        """Breakdown after flipping the given nodes, plus the advanced state.

        ``added_faults`` are nodes that become faulty, ``removed_faults``
        nodes that recover; out-of-range node ids are ignored (matching
        :meth:`breakdown`), but adding an already-faulty node or removing a
        healthy one is a :class:`ValueError` -- silently tolerating either
        would let an incremental replay drift from the ground truth.  The
        input ``state`` is consumed (its payload may be mutated in place);
        passing no deltas is a free way to read the breakdown of a freshly
        built state.
        """
        n_nodes, tp_size = state.n_nodes, state.tp_size
        added = frozenset(f for f in added_faults if 0 <= f < n_nodes)
        removed = frozenset(f for f in removed_faults if 0 <= f < n_nodes)
        if added & removed:
            raise ValueError(f"nodes {sorted(added & removed)} both added and removed")
        if added & state.faults:
            raise ValueError(f"nodes {sorted(added & state.faults)} already faulty")
        if not removed <= state.faults:
            raise ValueError(f"nodes {sorted(removed - state.faults)} not faulty")
        faults = (state.faults | added) - removed
        if state.aux is None:
            usable = self.usable_gpus(n_nodes, faults, tp_size)
        else:
            usable = state.usable
            for node in sorted(removed):
                usable += self._delta_flip(state, node, failed=False)
            for node in sorted(added):
                usable += self._delta_flip(state, node, failed=True)
        new_state = DeltaReplayState(
            n_nodes=n_nodes, tp_size=tp_size, faults=faults, usable=usable,
            aux=state.aux,
        )
        total = self.total_gpus(n_nodes)
        faulty_gpus = len(faults) * self.gpus_per_node
        if usable < 0 or usable > total - faulty_gpus:
            raise RuntimeError(
                f"{self.name}: delta usable ({usable}) outside "
                f"[0, {total - faulty_gpus}] healthy GPUs"
            )
        breakdown = WasteBreakdown(
            total_gpus=total, faulty_gpus=faulty_gpus, usable_gpus=usable
        )
        return breakdown, new_state

    def _delta_init(
        self, n_nodes: int, faulty: frozenset[int], tp_size: int
    ) -> tuple[int, Any | None]:
        """Usable count plus the incremental payload for ``faulty``.

        The base implementation has no payload (``None``), which makes
        :meth:`breakdown_delta` recompute from scratch on every advance --
        correct for any architecture, just not O(delta).
        """
        return self.usable_gpus(n_nodes, faulty, tp_size), None

    def _delta_flip(
        self, state: DeltaReplayState, node: int, failed: bool
    ) -> int:
        """Change in usable GPUs when ``node`` flips; mutates ``state.aux``.

        Only called when :meth:`_delta_init` returned a payload, so
        architectures that keep the base ``None`` payload never reach it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} returned a delta payload but does not "
            "implement _delta_flip"
        )

    # ------------------------------------------------------ count decomposition
    def fault_count_decomposition(
        self, n_nodes: int, tp_size: int
    ) -> FaultCountKernel | None:
        """Per-domain fault-count kernel of ``usable_gpus``, when one exists.

        When the return value is not ``None``, its reference evaluation
        equals ``usable_gpus(n_nodes, faulty, tp_size)`` for **every** fault
        set (property-tested), which lets the batched Monte-Carlo engine
        evaluate whole seed blocks with table gathers instead of per-interval
        Python calls.  The base implementation returns ``None`` -- correct
        for architectures whose capacity depends on *which* nodes failed,
        not just how many per domain (InfiniteHBD's K-hop segments) -- and
        callers then fall back to the exact scalar replay.
        """
        return None

    # ------------------------------------------------------------- placement
    def nodes_per_tp_group(self, tp_size: int) -> int:
        """Whole nodes one TP group of ``tp_size`` GPUs occupies (>= 1)."""
        if tp_size < 1:
            raise ValueError("tp_size must be >= 1")
        return max(1, -(-tp_size // self.gpus_per_node))

    def placement_groups(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        """Disjoint placement domains under a fault set.

        A TP group must be placed entirely inside one domain; the node-level
        placement scheduler carves jobs out of these.  The base
        implementation is the Big-Switch semantics -- one flat domain over
        every healthy node; architectures with internal structure (rings,
        cubes, units, segments) override it so placement respects the same
        boundaries ``usable_gpus`` charges fragmentation against.
        """
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        healthy = tuple(n for n in range(n_nodes) if n not in faulty)
        if not healthy:
            return ()
        return (
            PlacementGroup(
                nodes=healthy,
                nodes_per_group=self.nodes_per_tp_group(tp_size),
                tp_size=tp_size,
            ),
        )

    def waste_ratio(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> float:
        """Healthy-but-unusable GPUs over total GPUs."""
        return self.breakdown(n_nodes, faulty_nodes, tp_size).waste_ratio

    def max_job_scale(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        """Largest job (in GPUs, multiple of ``tp_size``) that fits."""
        return self.usable_gpus(n_nodes, faulty_nodes, tp_size)

    def supports_job(
        self,
        n_nodes: int,
        faulty_nodes: Iterable[int],
        tp_size: int,
        job_gpus: int,
    ) -> bool:
        """Whether a job of ``job_gpus`` GPUs can run under the fault set."""
        return self.usable_gpus(n_nodes, faulty_nodes, tp_size) >= job_gpus

    # --------------------------------------------------------------- helpers
    def _clean_faults(
        self, n_nodes: int, faulty_nodes: Iterable[int]
    ) -> frozenset[int]:
        return frozenset(f for f in faulty_nodes if 0 <= f < n_nodes)

    @staticmethod
    def _fit(gpus: int, tp_size: int) -> int:
        """Largest multiple of ``tp_size`` not exceeding ``gpus``."""
        if tp_size < 1:
            raise ValueError("tp_size must be >= 1")
        return (gpus // tp_size) * tp_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(R={self.gpus_per_node})"
