"""Common interface for HBD architecture models.

The large-scale evaluation of the paper (section 6.2) compares architectures
through three node-fault driven metrics:

* **GPU waste ratio** -- healthy GPUs that cannot join any TP group (because
  of fragmentation, disconnection or fault-radius propagation), divided by
  the total GPU count.
* **Maximum job scale** -- the largest multiple of the TP size that the
  cluster can serve under a fault set.
* **Fault-waiting** -- whether a job of a given scale can run at all.

All of these reduce to a single architecture-specific primitive:
``usable_gpus(n_nodes, faulty_nodes, tp_size)``.  Subclasses implement it;
this base class derives the rest.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set


@dataclass(frozen=True)
class WasteBreakdown:
    """Detailed GPU accounting for one fault scenario."""

    total_gpus: int
    faulty_gpus: int
    usable_gpus: int

    @property
    def healthy_gpus(self) -> int:
        return self.total_gpus - self.faulty_gpus

    @property
    def wasted_gpus(self) -> int:
        """Healthy GPUs that cannot be used."""
        return self.healthy_gpus - self.usable_gpus

    @property
    def waste_ratio(self) -> float:
        """Wasted healthy GPUs over the total GPU count (paper definition)."""
        if self.total_gpus == 0:
            return 0.0
        return self.wasted_gpus / self.total_gpus

    @property
    def unavailable_ratio(self) -> float:
        """Wasted plus faulty GPUs over the total (used for aggregate cost)."""
        if self.total_gpus == 0:
            return 0.0
        return (self.wasted_gpus + self.faulty_gpus) / self.total_gpus


class HBDArchitecture(abc.ABC):
    """Abstract HBD architecture.

    Parameters
    ----------
    gpus_per_node:
        ``R`` -- GPUs per node.  All evaluated clusters are homogeneous.
    """

    #: Human-readable architecture name (used as legend label in benches).
    name: str = "abstract"

    def __init__(self, gpus_per_node: int = 4) -> None:
        if gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        self.gpus_per_node = gpus_per_node

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        """GPUs that can participate in TP groups of ``tp_size``.

        ``faulty_nodes`` is a set of node indices in ``[0, n_nodes)``; a
        faulty node loses all of its GPUs.  The return value is always a
        multiple of ``tp_size``.
        """

    # ------------------------------------------------------------ derived API
    def total_gpus(self, n_nodes: int) -> int:
        return n_nodes * self.gpus_per_node

    def breakdown(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> WasteBreakdown:
        """Full GPU accounting for one fault scenario."""
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        usable = self.usable_gpus(n_nodes, faulty, tp_size)
        total = self.total_gpus(n_nodes)
        faulty_gpus = len(faulty) * self.gpus_per_node
        if usable > total - faulty_gpus:
            raise RuntimeError(
                f"{self.name}: usable ({usable}) exceeds healthy GPUs "
                f"({total - faulty_gpus})"
            )
        return WasteBreakdown(
            total_gpus=total, faulty_gpus=faulty_gpus, usable_gpus=usable
        )

    def waste_ratio(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> float:
        """Healthy-but-unusable GPUs over total GPUs."""
        return self.breakdown(n_nodes, faulty_nodes, tp_size).waste_ratio

    def max_job_scale(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        """Largest job (in GPUs, multiple of ``tp_size``) that fits."""
        return self.usable_gpus(n_nodes, faulty_nodes, tp_size)

    def supports_job(
        self,
        n_nodes: int,
        faulty_nodes: Iterable[int],
        tp_size: int,
        job_gpus: int,
    ) -> bool:
        """Whether a job of ``job_gpus`` GPUs can run under the fault set."""
        return self.usable_gpus(n_nodes, faulty_nodes, tp_size) >= job_gpus

    # --------------------------------------------------------------- helpers
    def _clean_faults(
        self, n_nodes: int, faulty_nodes: Iterable[int]
    ) -> FrozenSet[int]:
        return frozenset(f for f in faulty_nodes if 0 <= f < n_nodes)

    @staticmethod
    def _fit(gpus: int, tp_size: int) -> int:
        """Largest multiple of ``tp_size`` not exceeding ``gpus``."""
        if tp_size < 1:
            raise ValueError("tp_size must be >= 1")
        return (gpus // tp_size) * tp_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(R={self.gpus_per_node})"
