"""Registry of the HBD architectures compared throughout section 6."""

from __future__ import annotations

from typing import Dict, List

from repro.hbd.base import HBDArchitecture
from repro.hbd.bigswitch import BigSwitchHBD
from repro.hbd.infinitehbd import InfiniteHBDArchitecture
from repro.hbd.nvl import NVLHBD
from repro.hbd.sipring import SiPRingHBD
from repro.hbd.tpuv4 import TPUv4HBD


def default_architectures(gpus_per_node: int = 4) -> List[HBDArchitecture]:
    """The architecture line-up of Figures 13-16 and 20-23.

    Returned in the paper's legend order: InfiniteHBD (K=2), InfiniteHBD
    (K=3), Big-Switch, TPUv4, NVL-36, NVL-72, NVL-576, SiP-Ring.
    """
    return [
        InfiniteHBDArchitecture(k=2, gpus_per_node=gpus_per_node),
        InfiniteHBDArchitecture(k=3, gpus_per_node=gpus_per_node),
        BigSwitchHBD(gpus_per_node=gpus_per_node),
        TPUv4HBD(gpus_per_node=gpus_per_node),
        NVLHBD(36, gpus_per_node=gpus_per_node),
        NVLHBD(72, gpus_per_node=gpus_per_node),
        NVLHBD(576, gpus_per_node=gpus_per_node),
        SiPRingHBD(gpus_per_node=gpus_per_node),
    ]


def architecture_by_name(name: str, gpus_per_node: int = 4) -> HBDArchitecture:
    """Look up an architecture by its legend name (case-insensitive)."""
    catalog: Dict[str, HBDArchitecture] = {
        arch.name.lower(): arch for arch in default_architectures(gpus_per_node)
    }
    key = name.lower()
    if key not in catalog:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(catalog)}"
        )
    return catalog[key]
