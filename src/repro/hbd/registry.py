"""Built-in HBD architecture registrations and the classic lookup shims.

The architectures compared throughout section 6 register themselves into the
global :data:`repro.api.registry.REGISTRY` here -- both as parameterizable
families (``infinitehbd``, ``nvl``) and under the exact legend names of the
paper's figures (``InfiniteHBD(K=2)``, ``NVL-72``, ...).  New variants do
*not* need to edit this module: registering a factory anywhere (an example
script, a notebook, a plugin package) makes the architecture runnable by
name through the CLI, spec files and the experiment runner.

:func:`default_architectures` and :func:`architecture_by_name` keep their
historical signatures as thin shims over the registry.
"""

from __future__ import annotations


from repro.api.registry import REGISTRY, ArchitectureRegistry
from repro.hbd.base import HBDArchitecture
from repro.hbd.bigswitch import BigSwitchHBD
from repro.hbd.infinitehbd import InfiniteHBDArchitecture
from repro.hbd.nvl import NVLHBD
from repro.hbd.sipring import SiPRingHBD
from repro.hbd.tpuv4 import TPUv4HBD

#: The architecture line-up of Figures 13-16 and 20-23, in legend order.
DEFAULT_LINEUP: tuple[str, ...] = (
    "InfiniteHBD(K=2)",
    "InfiniteHBD(K=3)",
    "Big-Switch",
    "TPUv4",
    "NVL-36",
    "NVL-72",
    "NVL-576",
    "SiP-Ring",
)


# ------------------------------------------------------- family registrations
@REGISTRY.register(
    "infinitehbd",
    aliases=("infinite-hbd", "khop-ring"),
    defaults={"k": 2},
    description="InfiniteHBD K-Hop Ring (parameterized by k)",
)
def _make_infinitehbd(gpus_per_node: int = 4, k: int = 2, ring: bool = True) -> HBDArchitecture:
    return InfiniteHBDArchitecture(k=k, gpus_per_node=gpus_per_node, ring=ring)


@REGISTRY.register(
    "nvl",
    defaults={"hbd_size": 72},
    description="Switch-centric NVL unit (parameterized by hbd_size)",
)
def _make_nvl(gpus_per_node: int = 4, hbd_size: int = 72) -> HBDArchitecture:
    return NVLHBD(hbd_size, gpus_per_node=gpus_per_node)


@REGISTRY.register(
    "Big-Switch",
    aliases=("bigswitch",),
    description="Ideal single-switch upper bound",
)
def _make_bigswitch(gpus_per_node: int = 4) -> HBDArchitecture:
    return BigSwitchHBD(gpus_per_node=gpus_per_node)


@REGISTRY.register(
    "TPUv4",
    aliases=("tpu-v4",),
    description="Switch-GPU hybrid: 4^3 cubes behind an OCS",
)
def _make_tpuv4(gpus_per_node: int = 4) -> HBDArchitecture:
    return TPUv4HBD(gpus_per_node=gpus_per_node)


@REGISTRY.register(
    "SiP-Ring",
    aliases=("sipring",),
    description="GPU-centric fixed silicon-photonic rings",
)
def _make_sipring(gpus_per_node: int = 4) -> HBDArchitecture:
    return SiPRingHBD(gpus_per_node=gpus_per_node)


# ----------------------------------------------------- legend-name presets
for _k in (2, 3):
    REGISTRY.register_factory(
        f"InfiniteHBD(K={_k})",
        _make_infinitehbd,
        defaults={"k": _k},
        description=f"InfiniteHBD with K={_k} OCSTrx bundles per node",
    )
for _size in (36, 72, 576):
    REGISTRY.register_factory(
        f"NVL-{_size}",
        _make_nvl,
        aliases=(f"nvl{_size}",),
        defaults={"hbd_size": _size},
        description=f"NVL-style HBD of {_size}-GPU switch units",
    )


# ------------------------------------------------------------- classic shims
def default_architectures(gpus_per_node: int = 4) -> list[HBDArchitecture]:
    """The architecture line-up of Figures 13-16 and 20-23.

    Returned in the paper's legend order: InfiniteHBD (K=2), InfiniteHBD
    (K=3), Big-Switch, TPUv4, NVL-36, NVL-72, NVL-576, SiP-Ring.
    """
    return [
        REGISTRY.create(name, gpus_per_node=gpus_per_node) for name in DEFAULT_LINEUP
    ]


def architecture_by_name(name: str, gpus_per_node: int = 4) -> HBDArchitecture:
    """Look up an architecture by its legend name (case-insensitive).

    Unknown names raise :class:`KeyError` with close-match suggestions,
    e.g. ``unknown architecture 'nvl72'; did you mean 'nvl-72'?``.
    """
    return REGISTRY.create(name, gpus_per_node=gpus_per_node)


def list_architectures(registry: ArchitectureRegistry = REGISTRY) -> list[str]:
    """Every registered architecture name (built-ins plus plugins)."""
    return registry.names()
