"""Big-Switch: the idealised HBD upper bound (section 6.1).

A single, infinitely large, zero-latency switch connects every GPU in the
cluster.  Any set of healthy GPUs can form a TP group, so the only waste is
the final remainder ``healthy_gpus mod tp_size`` over the *whole* cluster --
the theoretical floor every other architecture is compared against.  The
paper notes that InfiniteHBD with K=3 tracks this bound almost exactly.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hbd.base import CountDecomposition, HBDArchitecture


class BigSwitchHBD(HBDArchitecture):
    """Ideal HBD: one non-blocking switch across the whole datacenter."""

    name = "Big-Switch"

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        healthy_gpus = (n_nodes - len(faulty)) * self.gpus_per_node
        return self._fit(healthy_gpus, tp_size)

    def fault_count_decomposition(
        self, n_nodes: int, tp_size: int
    ) -> CountDecomposition:
        """One flat domain: usable depends only on the total fault count."""
        table = tuple(
            self._fit((n_nodes - count) * self.gpus_per_node, tp_size)
            for count in range(n_nodes + 1)
        )
        return CountDecomposition(
            domain_of_node=(0,) * n_nodes,
            tables=(table,),
            table_of_domain=(0,),
        )
