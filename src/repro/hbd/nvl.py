"""Switch-centric NVL-style HBD (NVL-36 / NVL-72 / NVL-576).

The cluster is partitioned into fixed HBD units of ``hbd_size`` GPUs, each
internally connected by NVLink switches (any-to-any inside the unit, nothing
across units).  TP groups must therefore fit entirely inside one unit, and
each unit suffers fragmentation independently -- the paper's waste formula
``((HBD_size - N_fault) mod TP_size) / HBD_size`` applied per unit.

A TP size larger than the unit simply cannot run (zero usable GPUs), which is
how the evaluation treats e.g. TP-64 on NVL-36.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hbd.base import (
    CountDecomposition,
    DeltaReplayState,
    HBDArchitecture,
    PlacementGroup,
)


class _NVLDelta:
    """Per-unit fault counters for the O(delta) incremental update.

    ``infeasible`` marks TP sizes larger than the unit: usable is pinned at
    zero and node flips are no-ops.
    """

    __slots__ = (
        "infeasible",
        "nodes_per_unit",
        "n_units",
        "unit_faults",
        "leftover_healthy_gpus",
    )

    def __init__(
        self,
        infeasible: bool,
        nodes_per_unit: int,
        n_units: int,
        unit_faults: dict[int, int],
        leftover_healthy_gpus: int,
    ) -> None:
        self.infeasible = infeasible
        self.nodes_per_unit = nodes_per_unit
        self.n_units = n_units
        self.unit_faults = unit_faults
        self.leftover_healthy_gpus = leftover_healthy_gpus


class NVLHBD(HBDArchitecture):
    """NVL-style HBD composed of fixed-size switch-connected units."""

    supports_delta = True

    def __init__(self, hbd_size: int, gpus_per_node: int = 4) -> None:
        super().__init__(gpus_per_node)
        if hbd_size < gpus_per_node:
            raise ValueError("hbd_size must be at least one node worth of GPUs")
        if hbd_size % gpus_per_node:
            raise ValueError("hbd_size must be a multiple of gpus_per_node")
        self.hbd_size = hbd_size
        self.name = f"NVL-{hbd_size}"
        self._skeleton_cache: dict[tuple[int, int], tuple[PlacementGroup, ...]] = {}

    @property
    def nodes_per_unit(self) -> int:
        return self.hbd_size // self.gpus_per_node

    def n_units(self, n_nodes: int) -> int:
        """Number of complete HBD units in an ``n_nodes`` cluster."""
        return n_nodes // self.nodes_per_unit

    def usable_gpus(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> int:
        if tp_size > self.hbd_size:
            return 0
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        faults_per_unit = self._faults_per_unit(n_nodes, faulty)
        usable = 0
        for unit in range(self.n_units(n_nodes)):
            healthy = self.hbd_size - faults_per_unit.get(unit, 0) * self.gpus_per_node
            usable += self._fit(healthy, tp_size)
        # Nodes beyond the last complete unit (partial unit) are treated as a
        # smaller switch domain of their own.
        leftover_nodes = n_nodes % self.nodes_per_unit
        if leftover_nodes:
            start = self.n_units(n_nodes) * self.nodes_per_unit
            healthy_leftover = sum(
                self.gpus_per_node
                for node in range(start, n_nodes)
                if node not in faulty
            )
            usable += self._fit(healthy_leftover, tp_size)
        return usable

    def fault_count_decomposition(
        self, n_nodes: int, tp_size: int
    ) -> CountDecomposition:
        """One domain per HBD unit, one more for the partial trailing unit."""
        if tp_size > self.hbd_size:
            # Infeasible TP size: usable is pinned at zero, no domains.
            return CountDecomposition(
                domain_of_node=(-1,) * n_nodes, tables=(), table_of_domain=()
            )
        npu = self.nodes_per_unit
        n_units = self.n_units(n_nodes)
        unit_table = tuple(
            self._fit(self.hbd_size - count * self.gpus_per_node, tp_size)
            for count in range(npu + 1)
        )
        domain_of_node = tuple(
            min(node // npu, n_units) for node in range(n_nodes)
        )
        leftover = n_nodes % npu
        if leftover:
            leftover_table = tuple(
                self._fit((leftover - count) * self.gpus_per_node, tp_size)
                for count in range(leftover + 1)
            )
            return CountDecomposition(
                domain_of_node=domain_of_node,
                tables=(unit_table, leftover_table),
                table_of_domain=(0,) * n_units + (1,),
            )
        return CountDecomposition(
            domain_of_node=domain_of_node,
            tables=(unit_table,),
            table_of_domain=(0,) * n_units,
        )

    # ------------------------------------------------------------- placement
    def placement_groups(
        self, n_nodes: int, faulty_nodes: Iterable[int], tp_size: int
    ) -> tuple[PlacementGroup, ...]:
        """One domain per HBD unit (plus the partial trailing unit).

        Unit boundaries never move, so the all-healthy skeleton is cached
        per ``(n_nodes, tp_size)`` and a fault set only rebuilds the units
        it touches -- O(faults + units) per distinct fault set instead of
        O(n_nodes), and untouched units keep their identity (callers can
        reuse per-domain bookkeeping across fault transitions).
        """
        if tp_size > self.hbd_size:
            return ()
        faulty = self._clean_faults(n_nodes, faulty_nodes)
        npu = self.nodes_per_unit
        npg = self.nodes_per_tp_group(tp_size)
        key = (n_nodes, tp_size)
        skeleton = self._skeleton_cache.get(key)
        if skeleton is None:
            skeleton = tuple(
                PlacementGroup(
                    nodes=tuple(range(start, min(start + npu, n_nodes))),
                    nodes_per_group=npg,
                    tp_size=tp_size,
                )
                for start in range(0, n_nodes, npu)
            )
            self._skeleton_cache[key] = skeleton
        if not faulty:
            return skeleton
        groups: list = list(skeleton)
        for unit in {node // npu for node in faulty}:
            healthy = tuple(
                node for node in skeleton[unit].nodes if node not in faulty
            )
            # A fully faulty unit stays as an empty domain so unit indices
            # never shift (identity-stable positions for the reuse above).
            groups[unit] = PlacementGroup(
                nodes=healthy, nodes_per_group=npg, tp_size=tp_size
            )
        return tuple(groups)

    # ------------------------------------------------------------ delta replay
    def _delta_init(
        self, n_nodes: int, faulty: frozenset[int], tp_size: int
    ) -> tuple[int, _NVLDelta]:
        if tp_size > self.hbd_size:
            return 0, _NVLDelta(True, self.nodes_per_unit, 0, {}, 0)
        n_units = self.n_units(n_nodes)
        unit_faults = self._faults_per_unit(n_nodes, faulty)
        leftover_start = n_units * self.nodes_per_unit
        leftover_healthy = sum(
            self.gpus_per_node
            for node in range(leftover_start, n_nodes)
            if node not in faulty
        )
        usable = sum(
            self._fit(self.hbd_size - unit_faults.get(u, 0) * self.gpus_per_node, tp_size)
            for u in range(n_units)
        ) + self._fit(leftover_healthy, tp_size)
        aux = _NVLDelta(False, self.nodes_per_unit, n_units, unit_faults, leftover_healthy)
        return usable, aux

    def _delta_flip(self, state: DeltaReplayState, node: int, failed: bool) -> int:
        aux: _NVLDelta = state.aux
        if aux.infeasible:
            return 0
        tp_size = state.tp_size
        step = self.gpus_per_node if failed else -self.gpus_per_node
        unit = node // aux.nodes_per_unit
        if unit < aux.n_units:
            count = aux.unit_faults.get(unit, 0)
            old = self._fit(self.hbd_size - count * self.gpus_per_node, tp_size)
            count += 1 if failed else -1
            if count:
                aux.unit_faults[unit] = count
            else:
                del aux.unit_faults[unit]
            return self._fit(self.hbd_size - count * self.gpus_per_node, tp_size) - old
        old = self._fit(aux.leftover_healthy_gpus, tp_size)
        aux.leftover_healthy_gpus -= step
        return self._fit(aux.leftover_healthy_gpus, tp_size) - old

    # --------------------------------------------------------------- helpers
    def _faults_per_unit(self, n_nodes: int, faulty) -> dict[int, int]:
        counts: dict[int, int] = {}
        for node in faulty:
            unit = node // self.nodes_per_unit
            if unit < self.n_units(n_nodes):
                counts[unit] = counts.get(unit, 0) + 1
        return counts


def nvl36(gpus_per_node: int = 4) -> NVLHBD:
    """NVIDIA GB200 NVL-36."""
    return NVLHBD(36, gpus_per_node)


def nvl72(gpus_per_node: int = 4) -> NVLHBD:
    """NVIDIA GB200 NVL-72."""
    return NVLHBD(72, gpus_per_node)


def nvl576(gpus_per_node: int = 4) -> NVLHBD:
    """NVIDIA GB200 NVL-576."""
    return NVLHBD(576, gpus_per_node)
