"""repro -- a from-scratch reproduction of InfiniteHBD (SIGCOMM 2025).

InfiniteHBD is a transceiver-centric High-Bandwidth Domain architecture for
LLM training: optical circuit switching embedded in every transceiver
(OCSTrx), a reconfigurable K-Hop Ring topology, and an HBD-DCN orchestration
algorithm.  This package implements the full system plus every substrate and
baseline its evaluation depends on:

* ``repro.hardware``    -- OCSTrx / MZI device models (section 4.1, 5.1).
* ``repro.core``        -- nodes, the K-Hop Ring topology, ring construction
  and the orchestration algorithms (sections 4.2, 4.3, Appendix D).
* ``repro.hbd``         -- architecture models: InfiniteHBD, Big-Switch,
  NVL-36/72/576, TPUv4, SiP-Ring (section 6.2).
* ``repro.faults``      -- fault trace substrate (Appendix A).
* ``repro.simulation``  -- trace-driven cluster simulation (section 6.2).
* ``repro.scheduler``   -- multi-job cluster scheduling over the exact
  fault timeline (FIFO / smallest-first / shortest-remaining policies,
  Poisson + heavy-tailed workload generation, per-job + cluster metrics).
* ``repro.dcn``         -- Fat-Tree DCN and cross-ToR traffic model (6.4).
* ``repro.training``    -- LLM training MFU simulator (sections 2.3, 6.3).
* ``repro.collectives`` -- ring AllReduce and AllToAll algorithms (5.2, App G).
* ``repro.cost``        -- interconnect cost / power analysis (section 6.5).
* ``repro.analysis``    -- theoretical waste-ratio bound (Appendix C).
* ``repro.api``         -- the Unified Experiment API: declarative scenario
  specs, a plugin architecture registry, and a parallel experiment runner.

Quickstart -- declare a scenario, run it, serialize the results::

    from repro.api import ExperimentSpec, Scenario, TraceSpec, run_experiment

    spec = ExperimentSpec.of(
        scenario=Scenario.default(
            "quickstart",                      # the paper's 8-architecture line-up
            trace=TraceSpec(days=120, seed=348, gpus_per_node=4),
            tp_sizes=(32,),
            n_nodes=720,                       # a 2,880-GPU cluster
        ),
        experiments=("waste", "goodput"),
    )
    results = run_experiment(spec)             # parallel across architectures
    for r in results.filter(experiment="waste"):
        print(f"{r.architecture:18s} mean waste {r.metric('mean_waste_ratio'):.2%}")
    open("results.json", "w").write(results.to_json())   # round-trippable

The same spec runs from the shell: save ``spec.to_json()`` to a file and
``python -m repro.cli run --spec spec.json --output results.json``.  New HBD
variants plug in by name through the registry (see :mod:`repro.api.registry`)
without touching core code; the lower-level building blocks
(:class:`ClusterSimulator`, the architecture classes, the fault substrate)
remain importable for bespoke studies.
"""

from repro.core import (
    GPU,
    Node,
    KHopRingTopology,
    KHopTopologyConfig,
    RingBuilder,
    Orchestrator,
)
from repro.core.orchestrator import JobSpec
from repro.hardware import OCSTrx, OCSTrxBundle, OCSTrxConfig, PathState
from repro.hbd import (
    BigSwitchHBD,
    InfiniteHBDArchitecture,
    NVLHBD,
    SiPRingHBD,
    TPUv4HBD,
    architecture_by_name,
    default_architectures,
    list_architectures,
)
from repro.api import (
    REGISTRY,
    ArchitectureSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    ResultSet,
    Scenario,
    TraceSpec,
    run_experiment,
)
from repro.faults import (
    FaultTrace,
    generate_synthetic_trace,
    convert_trace_8gpu_to_4gpu,
)
from repro.simulation import ClusterSimulator
from repro.training import (
    MFUSimulator,
    ParallelismConfig,
    HardwareSpec,
    llama31_405b,
    gpt_moe_1t,
)

__version__ = "1.0.0"

__all__ = [
    "GPU",
    "Node",
    "KHopRingTopology",
    "KHopTopologyConfig",
    "RingBuilder",
    "Orchestrator",
    "JobSpec",
    "OCSTrx",
    "OCSTrxBundle",
    "OCSTrxConfig",
    "PathState",
    "BigSwitchHBD",
    "InfiniteHBDArchitecture",
    "NVLHBD",
    "SiPRingHBD",
    "TPUv4HBD",
    "architecture_by_name",
    "default_architectures",
    "list_architectures",
    "REGISTRY",
    "ArchitectureSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "ResultSet",
    "Scenario",
    "TraceSpec",
    "run_experiment",
    "FaultTrace",
    "generate_synthetic_trace",
    "convert_trace_8gpu_to_4gpu",
    "ClusterSimulator",
    "MFUSimulator",
    "ParallelismConfig",
    "HardwareSpec",
    "llama31_405b",
    "gpt_moe_1t",
    "__version__",
]
