"""Event-driven fault timeline engine (sweep-line over fault boundaries).

The section 6.2 metrics were originally computed by sampling the fault trace
on a fixed grid, with every sample doing a full O(n_events) scan -- so cost
grew as O(samples x events) and every aggregate depended on an arbitrary
``sample_interval_hours`` (short faults between grid points were invisible).

This module replaces the grid with the *exact* representation of the fault
process: a sweep-line over the sorted fault start/end boundaries yields the
piecewise-constant sequence of ``(interval_start, interval_end,
frozenset(faulty_nodes))`` in O(events log events), independent of the trace
duration.  Every downstream metric (waste CDF, supported job scale, waiting
fraction, fault-ratio statistics) becomes a duration-weighted exact quantity
over these intervals, and the old grid API is a thin compatibility layer that
resamples the intervals (:meth:`IntervalTimeline.resample`).

The sweep itself runs over the *columnar event log*
(:mod:`repro.faults.events`): the normalized ``(time, node, kind)`` numpy
structured array built once per trace and shared -- zero copy -- with the
replay layer, the scheduler's capacity walk and the batched Monte-Carlo
engine (:mod:`repro.mc`).  :attr:`IntervalTimeline.event_log` exposes that
array, and :attr:`IntervalTimeline.columnar` the per-interval
``starts/ends/fault_counts`` column view.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from collections.abc import Iterable, Iterator, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.analysis.cdf import weighted_quantile
from repro.faults.events import (
    ColumnarIntervals,
    ShmEventLog,
    columnar_event_log,
    event_log_from_intervals,
    shm_available,
)
from repro.faults.trace import FaultEvent, FaultTrace


@dataclass(frozen=True)
class FaultInterval:
    """One maximal interval ``[start_hour, end_hour)`` of a constant fault set."""

    start_hour: float
    end_hour: float
    nodes: frozenset[int]

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    @property
    def fault_count(self) -> int:
        return len(self.nodes)


def sweep_intervals(
    events: Iterable[FaultEvent], duration_hours: float
) -> tuple[FaultInterval, ...]:
    """Exact piecewise-constant fault-set sequence covering ``[0, duration)``.

    Events are clipped to the trace window; overlapping events on the same
    node are unioned (columnar-log normalization), so every boundary changes
    the fault set and consecutive intervals always differ.
    """
    log = columnar_event_log(events, duration_hours)
    return intervals_from_event_log(log, duration_hours)


def intervals_from_event_log(
    log: NDArray[np.void], duration_hours: float
) -> tuple[FaultInterval, ...]:
    """Sweep a normalized columnar event log into the interval sequence.

    The log must be normalized (see :mod:`repro.faults.events`): each record
    flips one node's state, records are sorted by time, and no record sits
    at or beyond ``duration_hours``.  Because every distinct timestamp
    genuinely changes the fault set, no adjacent-interval merging is needed.
    """
    if duration_hours <= 0:
        raise ValueError("duration_hours must be positive")
    times: list[float] = log["time"].tolist()
    node_ids: list[int] = log["node"].tolist()
    kinds: list[int] = log["kind"].tolist()

    intervals: list[FaultInterval] = []
    open_nodes: set[int] = set()
    cursor = 0.0
    index = 0
    n = len(times)
    while index < n:
        t = times[index]
        if t > cursor:
            intervals.append(FaultInterval(cursor, t, frozenset(open_nodes)))
            cursor = t
        while index < n and times[index] == t:
            if kinds[index] > 0:
                open_nodes.add(node_ids[index])
            else:
                open_nodes.discard(node_ids[index])
            index += 1
    if cursor < duration_hours:
        intervals.append(FaultInterval(cursor, duration_hours, frozenset(open_nodes)))
    return tuple(intervals)


@dataclass
class IntervalStream:
    """A lazily produced interval timeline for streaming replay.

    Quacks like :class:`IntervalTimeline` as far as the replay layer needs
    (``intervals`` / ``n_nodes`` / ``gpus_per_node``), but ``intervals`` may
    be any iterable -- typically a generator -- so traces far too long to
    materialise can still be replayed with ``streaming=True`` (see
    :func:`repro.simulation.cluster.replay_intervals`).  Single-shot when
    backed by a generator: each replay consumes it.
    """

    intervals: Iterable[FaultInterval]
    n_nodes: int
    gpus_per_node: int


@dataclass(frozen=True)
class IntervalTimeline:
    """The exact fault timeline of a trace over a (possibly restricted) cluster.

    Computed once per (trace, cluster size) and shared across every
    architecture x TP replay -- unlike a sampled grid it is lossless, so any
    grid can be recovered from it (:meth:`resample`) while every aggregate can
    be computed exactly as a duration-weighted quantity.
    """

    intervals: tuple[FaultInterval, ...]
    n_nodes: int
    gpus_per_node: int

    @classmethod
    def from_trace(
        cls, trace: FaultTrace, n_nodes: int | None = None
    ) -> IntervalTimeline:
        nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        restricted = trace if nodes == trace.n_nodes else trace.restrict_nodes(nodes)
        log = columnar_event_log(restricted.events, restricted.duration_hours)
        timeline = cls(
            intervals=intervals_from_event_log(log, restricted.duration_hours),
            n_nodes=nodes,
            gpus_per_node=trace.gpus_per_node,
        )
        # The log is canonical, so pre-seed the cached property rather than
        # re-deriving it from the swept intervals later.
        timeline.__dict__["event_log"] = log
        return timeline

    # ------------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[FaultInterval]:
        return iter(self.intervals)

    @property
    def duration_hours(self) -> float:
        return self.intervals[-1].end_hour if self.intervals else 0.0

    @cached_property
    def event_log(self) -> NDArray[np.void]:
        """The normalized columnar ``(time, node, kind)`` event log.

        Pre-seeded by :meth:`from_trace` (the log the sweep consumed);
        recovered from the intervals otherwise.  Shared zero-copy with every
        consumer -- treat it as immutable.
        """
        return event_log_from_intervals(self.intervals)

    @cached_property
    def columnar(self) -> ColumnarIntervals:
        """Zero-copy per-interval column view (starts / ends / fault counts)."""
        return ColumnarIntervals.from_intervals(self.intervals)

    @cached_property
    def _starts(self) -> list[float]:
        return [interval.start_hour for interval in self.intervals]

    @property
    def durations_hours(self) -> list[float]:
        return [interval.duration_hours for interval in self.intervals]

    @property
    def fault_ratios(self) -> list[float]:
        return [len(interval.nodes) / self.n_nodes for interval in self.intervals]

    def fault_set_at(self, hour: float) -> frozenset[int]:
        """The exact fault set at ``hour`` (O(log intervals))."""
        if not self.intervals or not 0.0 <= hour < self.duration_hours:
            return frozenset()
        index = bisect_right(self._starts, hour) - 1
        return self.intervals[index].nodes

    def resample(self, times_hours: Sequence[float]) -> list[frozenset[int]]:
        """Fault sets at the given instants (the grid compatibility layer).

        For sorted ``times_hours`` this is a linear merge over the intervals;
        the result is bit-for-bit what per-instant trace scans would produce.
        """
        sets: list[frozenset[int]] = []
        index = 0
        last = len(self.intervals) - 1
        previous_t = None
        for t in times_hours:
            if previous_t is not None and t < previous_t:  # unsorted: fall back
                return [self.fault_set_at(t) for t in times_hours]
            previous_t = t
            while index < last and self.intervals[index].end_hour <= t:
                index += 1
            if self.intervals and self.intervals[index].start_hour <= t < self.intervals[index].end_hour:
                sets.append(self.intervals[index].nodes)
            else:
                sets.append(frozenset())
        return sets

    # ------------------------------------------------------------- statistics
    def mean_fault_ratio(self) -> float:
        """Duration-weighted (exact) mean of the faulty-node ratio."""
        total = self.duration_hours
        if total == 0:
            return 0.0
        weighted = sum(
            len(interval.nodes) * interval.duration_hours for interval in self.intervals
        )
        return weighted / (self.n_nodes * total)

    def fault_ratio_quantile(self, q: float) -> float:
        """Duration-weighted quantile (in [0, 1]) of the faulty-node ratio."""
        return weighted_quantile(self.fault_ratios, self.durations_hours, q)

    def max_fault_ratio(self) -> float:
        if not self.intervals:
            return 0.0
        return max(len(interval.nodes) for interval in self.intervals) / self.n_nodes


# --------------------------------------------------------------- transport
def _timeline_from_log(
    log: NDArray[np.void], duration_hours: float, n_nodes: int, gpus_per_node: int
) -> IntervalTimeline:
    """Rebuild the exact timeline of a transported event log.

    The sweep re-runs locally (it is cheap relative to shipping intervals);
    the log itself -- the bulky part -- is adopted as the pre-seeded
    ``event_log``, so a shared-memory log stays zero-copy end to end.
    """
    intervals = (
        intervals_from_event_log(log, duration_hours) if duration_hours > 0 else ()
    )
    timeline = IntervalTimeline(
        intervals=intervals, n_nodes=n_nodes, gpus_per_node=gpus_per_node
    )
    timeline.__dict__["event_log"] = log
    return timeline


@dataclass(frozen=True, eq=False)
class ShmTimeline:
    """A picklable :class:`IntervalTimeline` riding a shared-memory log.

    Pickles to the tiny :class:`~repro.faults.events.ShmEventLog` handle
    plus three scalars; :meth:`timeline` reconstructs the exact timeline in
    the receiving process over a zero-copy view of the shared pages.  The
    creating process must :meth:`unlink` once every consumer is done.
    """

    handle: ShmEventLog
    duration_hours: float
    n_nodes: int
    gpus_per_node: int

    def timeline(self) -> IntervalTimeline:
        return _timeline_from_log(
            self.handle.log(), self.duration_hours, self.n_nodes, self.gpus_per_node
        )

    def unlink(self) -> None:
        self.handle.unlink()


@dataclass(frozen=True, eq=False)
class PickledTimeline:
    """Fallback transport when shared memory is unavailable: the log pickles.

    Same interface as :class:`ShmTimeline`; the event log travels by value
    (one pickle copy per receiving process) instead of by reference.
    """

    log: NDArray[np.void]
    duration_hours: float
    n_nodes: int
    gpus_per_node: int

    def timeline(self) -> IntervalTimeline:
        return _timeline_from_log(
            self.log, self.duration_hours, self.n_nodes, self.gpus_per_node
        )

    def unlink(self) -> None:
        """Nothing to release: the log travelled by value."""


#: What :func:`serialize_timeline` hands back: shm when possible, pickle otherwise.
TimelineTransport = ShmTimeline | PickledTimeline


def serialize_timeline(timeline: IntervalTimeline) -> TimelineTransport:
    """Package ``timeline`` for cheap transport to worker processes.

    Serializes the columnar event log **once** into a shared-memory segment
    (every worker then maps the same pages zero-copy); falls back to a
    by-value :class:`PickledTimeline` when shared memory is unavailable or
    segment creation fails.  Call ``unlink()`` on the result when done.
    """
    log = timeline.event_log
    if shm_available():
        try:
            handle = ShmEventLog.from_log(log)
        except OSError:
            pass
        else:
            return ShmTimeline(
                handle=handle,
                duration_hours=timeline.duration_hours,
                n_nodes=timeline.n_nodes,
                gpus_per_node=timeline.gpus_per_node,
            )
    return PickledTimeline(
        log=log,
        duration_hours=timeline.duration_hours,
        n_nodes=timeline.n_nodes,
        gpus_per_node=timeline.gpus_per_node,
    )


__all__ = [
    "FaultInterval",
    "IntervalStream",
    "IntervalTimeline",
    "PickledTimeline",
    "ShmTimeline",
    "TimelineTransport",
    "intervals_from_event_log",
    "serialize_timeline",
    "sweep_intervals",
]
