"""Event-driven fault timeline engine (sweep-line over fault boundaries).

The section 6.2 metrics were originally computed by sampling the fault trace
on a fixed grid, with every sample doing a full O(n_events) scan -- so cost
grew as O(samples x events) and every aggregate depended on an arbitrary
``sample_interval_hours`` (short faults between grid points were invisible).

This module replaces the grid with the *exact* representation of the fault
process: a sweep-line over the sorted fault start/end boundaries yields the
piecewise-constant sequence of ``(interval_start, interval_end,
frozenset(faulty_nodes))`` in O(events log events), independent of the trace
duration.  Every downstream metric (waste CDF, supported job scale, waiting
fraction, fault-ratio statistics) becomes a duration-weighted exact quantity
over these intervals, and the old grid API is a thin compatibility layer that
resamples the intervals (:meth:`IntervalTimeline.resample`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from collections.abc import Iterable, Iterator, Sequence

from repro.analysis.cdf import weighted_quantile
from repro.faults.trace import FaultEvent, FaultTrace


@dataclass(frozen=True)
class FaultInterval:
    """One maximal interval ``[start_hour, end_hour)`` of a constant fault set."""

    start_hour: float
    end_hour: float
    nodes: frozenset[int]

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    @property
    def fault_count(self) -> int:
        return len(self.nodes)


def sweep_intervals(
    events: Iterable[FaultEvent], duration_hours: float
) -> tuple[FaultInterval, ...]:
    """Exact piecewise-constant fault-set sequence covering ``[0, duration)``.

    Events are clipped to the trace window; overlapping events on the same
    node are handled with per-node open counters; adjacent intervals with an
    identical fault set are merged, so consecutive intervals always differ.
    """
    if duration_hours <= 0:
        raise ValueError("duration_hours must be positive")
    # time -> list of (node, +1 open / -1 close) deltas at that boundary
    boundaries: dict[float, list[tuple[int, int]]] = {}
    for event in events:
        start = max(0.0, event.start_hour)
        end = min(duration_hours, event.end_hour)
        if end <= start:
            continue
        boundaries.setdefault(start, []).append((event.node_id, +1))
        boundaries.setdefault(end, []).append((event.node_id, -1))

    intervals: list[FaultInterval] = []
    open_counts: dict[int, int] = {}
    cursor = 0.0
    current: frozenset[int] = frozenset()
    for t in sorted(boundaries):
        if t > cursor:
            _append_merged(intervals, cursor, t, current)
            cursor = t
        for node, delta in boundaries[t]:
            count = open_counts.get(node, 0) + delta
            if count:
                open_counts[node] = count
            else:
                open_counts.pop(node, None)
        current = frozenset(open_counts)
    if cursor < duration_hours:
        _append_merged(intervals, cursor, duration_hours, current)
    return tuple(intervals)


def _append_merged(
    intervals: list[FaultInterval], start: float, end: float, nodes: frozenset[int]
) -> None:
    if intervals and intervals[-1].nodes == nodes and intervals[-1].end_hour == start:
        intervals[-1] = FaultInterval(intervals[-1].start_hour, end, nodes)
    else:
        intervals.append(FaultInterval(start, end, nodes))


@dataclass
class IntervalStream:
    """A lazily produced interval timeline for streaming replay.

    Quacks like :class:`IntervalTimeline` as far as the replay layer needs
    (``intervals`` / ``n_nodes`` / ``gpus_per_node``), but ``intervals`` may
    be any iterable -- typically a generator -- so traces far too long to
    materialise can still be replayed with ``streaming=True`` (see
    :func:`repro.simulation.cluster.replay_intervals`).  Single-shot when
    backed by a generator: each replay consumes it.
    """

    intervals: Iterable[FaultInterval]
    n_nodes: int
    gpus_per_node: int


@dataclass(frozen=True)
class IntervalTimeline:
    """The exact fault timeline of a trace over a (possibly restricted) cluster.

    Computed once per (trace, cluster size) and shared across every
    architecture x TP replay -- unlike a sampled grid it is lossless, so any
    grid can be recovered from it (:meth:`resample`) while every aggregate can
    be computed exactly as a duration-weighted quantity.
    """

    intervals: tuple[FaultInterval, ...]
    n_nodes: int
    gpus_per_node: int

    @classmethod
    def from_trace(
        cls, trace: FaultTrace, n_nodes: int | None = None
    ) -> IntervalTimeline:
        nodes = n_nodes if n_nodes is not None else trace.n_nodes
        if nodes > trace.n_nodes:
            raise ValueError("simulated cluster larger than the fault trace")
        restricted = trace if nodes == trace.n_nodes else trace.restrict_nodes(nodes)
        return cls(
            intervals=sweep_intervals(restricted.events, restricted.duration_hours),
            n_nodes=nodes,
            gpus_per_node=trace.gpus_per_node,
        )

    # ------------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[FaultInterval]:
        return iter(self.intervals)

    @property
    def duration_hours(self) -> float:
        return self.intervals[-1].end_hour if self.intervals else 0.0

    @cached_property
    def _starts(self) -> list[float]:
        return [interval.start_hour for interval in self.intervals]

    @property
    def durations_hours(self) -> list[float]:
        return [interval.duration_hours for interval in self.intervals]

    @property
    def fault_ratios(self) -> list[float]:
        return [len(interval.nodes) / self.n_nodes for interval in self.intervals]

    def fault_set_at(self, hour: float) -> frozenset[int]:
        """The exact fault set at ``hour`` (O(log intervals))."""
        if not self.intervals or not 0.0 <= hour < self.duration_hours:
            return frozenset()
        index = bisect_right(self._starts, hour) - 1
        return self.intervals[index].nodes

    def resample(self, times_hours: Sequence[float]) -> list[frozenset[int]]:
        """Fault sets at the given instants (the grid compatibility layer).

        For sorted ``times_hours`` this is a linear merge over the intervals;
        the result is bit-for-bit what per-instant trace scans would produce.
        """
        sets: list[frozenset[int]] = []
        index = 0
        last = len(self.intervals) - 1
        previous_t = None
        for t in times_hours:
            if previous_t is not None and t < previous_t:  # unsorted: fall back
                return [self.fault_set_at(t) for t in times_hours]
            previous_t = t
            while index < last and self.intervals[index].end_hour <= t:
                index += 1
            if self.intervals and self.intervals[index].start_hour <= t < self.intervals[index].end_hour:
                sets.append(self.intervals[index].nodes)
            else:
                sets.append(frozenset())
        return sets

    # ------------------------------------------------------------- statistics
    def mean_fault_ratio(self) -> float:
        """Duration-weighted (exact) mean of the faulty-node ratio."""
        total = self.duration_hours
        if total == 0:
            return 0.0
        weighted = sum(
            len(interval.nodes) * interval.duration_hours for interval in self.intervals
        )
        return weighted / (self.n_nodes * total)

    def fault_ratio_quantile(self, q: float) -> float:
        """Duration-weighted quantile (in [0, 1]) of the faulty-node ratio."""
        return weighted_quantile(self.fault_ratios, self.durations_hours, q)

    def max_fault_ratio(self) -> float:
        if not self.intervals:
            return 0.0
        return max(len(interval.nodes) for interval in self.intervals) / self.n_nodes


__all__ = [
    "FaultInterval",
    "IntervalStream",
    "IntervalTimeline",
    "sweep_intervals",
]
