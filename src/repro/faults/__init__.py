"""Fault substrate: traces, synthetic generation and fault models.

The paper's trace-driven experiments (Figures 13, 15, 16, 18, 20, 21) replay
a 348-day production fault trace from a ~3K-GPU cluster of 8-GPU nodes with a
mean faulty-node ratio of 2.33% and a p99 of 7.22% (Appendix A).  The trace
itself is not bundled here, so :mod:`repro.faults.synthetic` generates a
statistically equivalent trace; :mod:`repro.faults.convert` applies the
paper's Bayes-rule conversion from 8-GPU-node faults to 4-GPU-node faults,
and :mod:`repro.faults.model` draws i.i.d. fault sets at a target node-fault
ratio for the sweep-style experiments (Figures 14, 17c, 17d, 22).
"""

from repro.faults.trace import (
    FaultEvent,
    FaultTrace,
    TraceStatistics,
    merge_overlapping_events,
)
from repro.faults.events import (
    EVENT_DTYPE,
    ColumnarIntervals,
    columnar_event_log,
    event_log_from_intervals,
)
from repro.faults.timeline import (
    FaultInterval,
    IntervalTimeline,
    intervals_from_event_log,
    sweep_intervals,
)
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.correlated import (
    CorrelatedFaultConfig,
    DomainOutage,
    architecture_domains,
    correlated_trace_with_outages,
    fault_domains,
    generate_correlated_trace,
    sample_domain_outages,
)
from repro.faults.calibrate import (
    CalibrationResult,
    detect_domain_outages,
    fit_correlated_config,
)
from repro.faults.convert import convert_trace_8gpu_to_4gpu, node_fault_probability
from repro.faults.model import IIDFaultModel, sample_fault_set

__all__ = [
    "FaultEvent",
    "FaultTrace",
    "TraceStatistics",
    "merge_overlapping_events",
    "EVENT_DTYPE",
    "ColumnarIntervals",
    "columnar_event_log",
    "event_log_from_intervals",
    "FaultInterval",
    "IntervalTimeline",
    "intervals_from_event_log",
    "sweep_intervals",
    "SyntheticTraceConfig",
    "generate_synthetic_trace",
    "CorrelatedFaultConfig",
    "DomainOutage",
    "architecture_domains",
    "correlated_trace_with_outages",
    "fault_domains",
    "generate_correlated_trace",
    "sample_domain_outages",
    "CalibrationResult",
    "detect_domain_outages",
    "fit_correlated_config",
    "convert_trace_8gpu_to_4gpu",
    "node_fault_probability",
    "IIDFaultModel",
    "sample_fault_set",
]
