"""Parametric i.i.d. node-fault model for sweep experiments.

The sweep-style figures (14, 17c, 17d, 22) vary the node fault ratio directly
rather than replaying the trace: "fault traces generated based on this trace
statistics are also derived" (section 6.1) and "as node faults are assumed to
be i.i.d., the simulator linearly maps the fault trace onto different network
architectures" (Appendix A).  :class:`IIDFaultModel` draws independent node
fault sets at a target ratio and provides Monte-Carlo averaging helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np


def sample_fault_set(
    n_nodes: int, fault_ratio: float, rng: np.random.Generator
) -> set[int]:
    """Draw one i.i.d. node fault set at ``fault_ratio``.

    The number of faulty nodes is the rounded expectation (the evaluation
    sweeps the ratio deterministically); which nodes fail is uniform.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not 0.0 <= fault_ratio <= 1.0:
        raise ValueError("fault_ratio must be in [0, 1]")
    count = int(round(fault_ratio * n_nodes))
    count = min(count, n_nodes)
    if count == 0:
        return set()
    chosen = rng.choice(n_nodes, size=count, replace=False)
    return {int(n) for n in chosen}


@dataclass
class IIDFaultModel:
    """Monte-Carlo driver over i.i.d. node fault sets."""

    n_nodes: int
    seed: int = 0
    n_samples: int = 20

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")

    def fault_sets(self, fault_ratio: float) -> list[set[int]]:
        """``n_samples`` independent fault sets at ``fault_ratio``."""
        rng = np.random.default_rng(self.seed)
        return [
            sample_fault_set(self.n_nodes, fault_ratio, rng)
            for _ in range(self.n_samples)
        ]

    def expectation(
        self, fault_ratio: float, metric: Callable[[set[int]], float]
    ) -> float:
        """Monte-Carlo mean of ``metric`` over fault sets at ``fault_ratio``."""
        sets = self.fault_sets(fault_ratio)
        return float(np.mean([metric(s) for s in sets]))

    def sweep(
        self,
        fault_ratios: Sequence[float],
        metric: Callable[[set[int]], float],
    ) -> list[float]:
        """Monte-Carlo mean of ``metric`` across a sweep of fault ratios."""
        return [self.expectation(ratio, metric) for ratio in fault_ratios]
