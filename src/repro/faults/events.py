"""Columnar fault event log: the shared numpy representation of a trace.

Three engines used to re-derive the fault process independently -- the
sweep line in :mod:`repro.faults.timeline`, the interval replay in
:func:`repro.simulation.cluster.replay_intervals` and the scheduler's
capacity walk.  This module is the one representation all of them (and the
batched Monte-Carlo engine in :mod:`repro.mc`) now consume: a numpy
structured array of **normalized node-state transitions**.

The log is *normalized*: overlapping or touching raw fault events on the
same node are unioned into maximal downtime runs before emission, so

* every ``kind=+1`` record is a healthy node becoming faulty and every
  ``kind=-1`` record a faulty node recovering (per-node counts are plain
  cumulative sums -- no open-counter bookkeeping needed downstream),
* every distinct timestamp changes the fault set, so the interval walk
  never has to merge adjacent identical intervals, and
* recoveries at or beyond the trace end are dropped (they cannot start a
  new interval inside ``[0, duration)``), making the log canonical: the
  log derived back from the swept intervals is array-equal to the log
  built from the raw events.

Records are sorted by ``(time, node, kind)``.  The array is shared
zero-copy between consumers -- treat it as immutable.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from functools import cached_property
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import NDArray

from repro.faults.trace import FaultEvent

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from multiprocessing.shared_memory import SharedMemory

    from repro.faults.timeline import FaultInterval

#: One normalized fault transition: ``kind=+1`` the node goes down at
#: ``time``, ``kind=-1`` it recovers.  Times are hours from the trace start.
EVENT_DTYPE = np.dtype([("time", np.float64), ("node", np.int64), ("kind", np.int8)])


def _log_from_runs(
    node_ids: list[int], starts: list[float], ends: list[float], duration_hours: float
) -> NDArray[np.void]:
    """Normalized event log from clipped per-event downtime runs.

    The runs may overlap or touch per node; they are unioned into maximal
    disjoint windows first, exactly matching the open-counter semantics of
    the original sweep (a node is faulty while *any* run covers it).
    """
    runs: dict[int, list[tuple[float, float]]] = {}
    for node, start, end in zip(node_ids, starts, ends, strict=True):
        runs.setdefault(node, []).append((start, end))

    times: list[float] = []
    nodes: list[int] = []
    kinds: list[int] = []
    for node in sorted(runs):
        windows = sorted(runs[node])
        merged_start, merged_end = windows[0]
        merged: list[tuple[float, float]] = []
        for start, end in windows[1:]:
            if start <= merged_end:  # overlapping or touching: one outage
                merged_end = max(merged_end, end)
            else:
                merged.append((merged_start, merged_end))
                merged_start, merged_end = start, end
        merged.append((merged_start, merged_end))
        for start, end in merged:
            times.append(start)
            nodes.append(node)
            kinds.append(1)
            if end < duration_hours:
                times.append(end)
                nodes.append(node)
                kinds.append(-1)

    log = np.empty(len(times), dtype=EVENT_DTYPE)
    log["time"] = times
    log["node"] = nodes
    log["kind"] = kinds
    order = np.lexsort((log["kind"], log["node"], log["time"]))
    return log[order]


def columnar_event_log(
    events: Iterable[FaultEvent], duration_hours: float
) -> NDArray[np.void]:
    """The normalized columnar event log of a raw fault event list.

    Events are clipped to ``[0, duration_hours)``; empty and out-of-window
    events are dropped.  See the module docstring for the normalization
    guarantees.
    """
    if duration_hours <= 0:
        raise ValueError("duration_hours must be positive")
    node_ids: list[int] = []
    starts: list[float] = []
    ends: list[float] = []
    for event in events:
        start = max(0.0, event.start_hour)
        end = min(duration_hours, event.end_hour)
        if end <= start:
            continue
        node_ids.append(event.node_id)
        starts.append(start)
        ends.append(end)
    return _log_from_runs(node_ids, starts, ends, duration_hours)


def event_log_from_intervals(
    intervals: Sequence[FaultInterval],
) -> NDArray[np.void]:
    """Recover the canonical event log from a swept interval sequence.

    Consecutive intervals differ exactly by the transitions at their shared
    boundary, so this is the inverse of the sweep: for a timeline built
    from raw events, the result is array-equal to
    :func:`columnar_event_log` over those events.
    """
    times: list[float] = []
    nodes: list[int] = []
    kinds: list[int] = []
    previous: frozenset[int] = frozenset()
    for interval in intervals:
        t = interval.start_hour
        current = interval.nodes
        for node in sorted(previous ^ current):
            times.append(t)
            nodes.append(node)
            kinds.append(1 if node in current else -1)
        previous = current
    log = np.empty(len(times), dtype=EVENT_DTYPE)
    log["time"] = times
    log["node"] = nodes
    log["kind"] = kinds
    return log


@dataclass(frozen=True, eq=False)
class ColumnarIntervals:
    """Zero-copy columnar view of a swept interval sequence.

    Parallel numpy arrays, one entry per interval.  Built once per
    :class:`~repro.faults.timeline.IntervalTimeline` (cached) and shared by
    the replay and scheduler engines; ``tolist()`` on the float columns
    yields bit-identical Python floats, so consumers that need lists get
    the exact same values.  Treat the arrays as immutable.
    """

    starts_hours: NDArray[np.float64]
    ends_hours: NDArray[np.float64]
    fault_counts: NDArray[np.int64]

    @classmethod
    def from_intervals(cls, intervals: Sequence[FaultInterval]) -> ColumnarIntervals:
        n = len(intervals)
        starts = np.fromiter(
            (interval.start_hour for interval in intervals), dtype=np.float64, count=n
        )
        ends = np.fromiter(
            (interval.end_hour for interval in intervals), dtype=np.float64, count=n
        )
        counts = np.fromiter(
            (len(interval.nodes) for interval in intervals), dtype=np.int64, count=n
        )
        return cls(starts_hours=starts, ends_hours=ends, fault_counts=counts)

    def __len__(self) -> int:
        return len(self.starts_hours)

    @cached_property
    def durations_hours(self) -> NDArray[np.float64]:
        result: NDArray[np.float64] = self.ends_hours - self.starts_hours
        return result

    @cached_property
    def ends_list(self) -> list[float]:
        """Interval end hours as Python floats (cached; do not mutate)."""
        result: list[float] = self.ends_hours.tolist()
        return result


# --------------------------------------------------------------- transport
@dataclass
class TransportStats:
    """Process-wide counters for the shared-memory transport.

    ``serialized`` counts event logs copied *into* shared memory (one per
    :meth:`ShmEventLog.from_log`); ``attached`` counts zero-copy
    reconstructions (one per first :meth:`ShmEventLog.log` call on an
    unpickled handle).  Tests use the deltas to assert the runner serializes
    each distinct (trace, cluster) log exactly once.
    """

    serialized: int = 0
    attached: int = 0

    def reset(self) -> None:
        self.serialized = 0
        self.attached = 0


#: The module-wide transport counters (per process).
TRANSPORT_STATS = TransportStats()

# Keep-alive registry: every segment this process created or attached.  The
# zero-copy numpy views handed out below do NOT keep the underlying mmap
# alive (SharedMemory.__del__ unmaps it, leaving live views dangling), so
# segments are pinned here for the life of the process and only the *name*
# is ever unlinked.  Bounded by the number of distinct event logs shipped --
# a handful per experiment run.
_SEGMENTS: list[SharedMemory] = []

_SHM_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform.

    Probed once per process by creating (and immediately destroying) a
    one-byte segment; some sandboxes import the module fine but fail at
    ``shm_open``.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
        except Exception:
            _SHM_AVAILABLE = False
        else:
            _SHM_AVAILABLE = True
    return _SHM_AVAILABLE


def _attach(name: str) -> SharedMemory:
    """Open an existing segment without taking cleanup ownership.

    CPython <= 3.12 registers a segment with the resource tracker on
    *attach* as well as on create (bpo-39959).  Under the fork start method
    -- the only one the runner fans out with -- every process shares the
    parent's tracker, where the duplicate registration is a set-add no-op,
    so a plain attach is already safe; 3.13+ makes the intent explicit with
    ``track=False``.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python <= 3.12: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


class ShmEventLog:
    """A picklable handle to a columnar event log in shared memory.

    Created once from a concrete log (:meth:`from_log` copies the records
    into a fresh segment); pickles down to ``(name, n_events)`` -- a few
    dozen bytes regardless of log size -- and reconstructs a **zero-copy**
    numpy view over the same physical pages in any process that unpickles
    it (:meth:`log`).

    Lifecycle: the creating process owns the segment and must call
    :meth:`unlink` when every consumer is done (POSIX keeps the pages alive
    for processes that still have them mapped).  Attached processes never
    close or unlink -- their mappings are released at process exit.
    """

    def __init__(self, name: str, n_events: int) -> None:
        self.name = name
        self.n_events = n_events
        self._segment: SharedMemory | None = None
        self._view: NDArray[np.void] | None = None

    @classmethod
    def from_log(cls, log: NDArray[np.void]) -> ShmEventLog:
        """Copy ``log`` into a new shared-memory segment (one serialization)."""
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(1, log.nbytes))
        _SEGMENTS.append(segment)
        handle = cls(segment.name, len(log))
        handle._segment = segment
        view: NDArray[np.void] = np.ndarray(len(log), dtype=EVENT_DTYPE, buffer=segment.buf)
        view[:] = log
        handle._view = view
        TRANSPORT_STATS.serialized += 1
        return handle

    def log(self) -> NDArray[np.void]:
        """The event log as a zero-copy view over the shared segment.

        In the creating process this is the view the records were written
        through; in a consumer it attaches to the segment by name (counted
        in :data:`TRANSPORT_STATS`) and maps the same pages -- no copy, no
        deserialization.
        """
        if self._view is None:
            segment = _attach(self.name)
            _SEGMENTS.append(segment)
            self._segment = segment
            self._view = np.ndarray(self.n_events, dtype=EVENT_DTYPE, buffer=segment.buf)
            TRANSPORT_STATS.attached += 1
        return self._view

    def unlink(self) -> None:
        """Destroy the segment (creator side; best-effort, idempotent)."""
        segment = self._segment
        if segment is None:
            try:
                segment = _attach(self.name)
            except (OSError, ValueError):
                return
        with contextlib.suppress(OSError, ValueError):
            segment.unlink()

    def __getstate__(self) -> dict[str, Any]:
        return {"name": self.name, "n_events": self.n_events}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.name = str(state["name"])
        self.n_events = int(state["n_events"])
        self._segment = None
        self._view = None

    def __repr__(self) -> str:
        return f"ShmEventLog(name={self.name!r}, n_events={self.n_events})"


__all__ = [
    "EVENT_DTYPE",
    "TRANSPORT_STATS",
    "ColumnarIntervals",
    "ShmEventLog",
    "TransportStats",
    "columnar_event_log",
    "event_log_from_intervals",
    "shm_available",
]
