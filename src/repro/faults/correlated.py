"""Correlated (domain-level) fault generation over placement domains.

The independent generator (:mod:`repro.faults.synthetic`) draws node faults
one at a time, which makes every architecture's blast radius look the same:
a fault never takes out more than one node.  Real clusters fail differently
-- a power-domain or switch incident takes out a whole rack/domain at once,
and incidents arrive in bursts (a bad firmware rollout, a cooling event)
separated by long quiet stretches.  This module layers exactly that
structure on top of the independent trace:

1. **Failure domains.**  The cluster is partitioned into domains -- by
   default contiguous ``domain_size``-node blocks, or the node sets of an
   architecture's fault-free
   :meth:`~repro.hbd.base.HBDArchitecture.placement_groups` via
   :func:`architecture_domains` -- and every correlated event takes out one
   whole domain.
2. **Burst arrivals.**  Domain outages arrive from a two-state
   Markov-modulated Poisson process (quiet / burst): exponential state
   holding times, a ``burst_multiplier``-times higher arrival rate while in
   the burst state, and a time-averaged cluster-wide rate of
   ``correlation * domain_rate_per_day`` outages per day.
3. **Heavy-tailed, sub-daily repairs.**  Each outage's repair time is drawn
   from a lognormal (``repair_median_hours``, ``repair_sigma``) -- median
   well under a day with a heavy upper tail, matching Philly/Helios-style
   repair logs; the parameters are fittable from an ingested CSV trace via
   :mod:`repro.faults.calibrate`.

The output is an ordinary :class:`~repro.faults.trace.FaultTrace` of
per-node :class:`~repro.faults.trace.FaultEvent` records: the columnar event
log, the sweep-line timeline, the Monte-Carlo batch engine, cache keys and
the scheduler all consume correlated traces unchanged.  At
``correlation=0`` the generator *is* the independent generator -- it returns
``generate_synthetic_trace(config.base)`` verbatim, event for event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.trace import HOURS_PER_DAY, FaultEvent, FaultTrace

#: Seed-stream tag for the correlated overlay, so the overlay draws never
#: perturb the base generator's stream (correlation=0 stays byte-identical).
_OVERLAY_STREAM = 0x436F7272  # "Corr"


@dataclass(frozen=True)
class CorrelatedFaultConfig:
    """Parameters of the correlated overlay on top of a base config.

    ``correlation`` scales the cluster-wide domain-outage rate from zero
    (``generate_correlated_trace`` returns the plain independent trace) to
    ``domain_rate_per_day`` outages per day at ``correlation=1``.

    >>> config = CorrelatedFaultConfig(
    ...     base=SyntheticTraceConfig(n_nodes=64, duration_days=20, seed=7),
    ...     correlation=0.5,
    ... )
    >>> config.correlation
    0.5
    """

    base: SyntheticTraceConfig = field(default_factory=SyntheticTraceConfig)
    correlation: float = 0.0
    domain_size: int = 8
    domain_rate_per_day: float = 0.25
    burst_multiplier: float = 4.0
    mean_quiet_days: float = 7.0
    mean_burst_days: float = 1.0
    repair_median_hours: float = 4.0
    repair_sigma: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")
        if self.domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        if self.domain_rate_per_day <= 0.0:
            raise ValueError("domain_rate_per_day must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.mean_quiet_days <= 0.0 or self.mean_burst_days <= 0.0:
            raise ValueError("mean_quiet_days and mean_burst_days must be positive")
        if self.repair_median_hours <= 0.0:
            raise ValueError("repair_median_hours must be positive")
        if self.repair_sigma < 0.0:
            raise ValueError("repair_sigma must be >= 0")


@dataclass(frozen=True)
class DomainOutage:
    """One correlated event: every node of one domain is down together."""

    domain: int
    nodes: tuple[int, ...]
    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a domain outage must cover at least one node")
        if self.end_hour < self.start_hour:
            raise ValueError("end_hour must be >= start_hour")


def fault_domains(n_nodes: int, domain_size: int) -> tuple[tuple[int, ...], ...]:
    """Partition ``n_nodes`` into contiguous ``domain_size``-node domains.

    The last domain absorbs the remainder, so every node belongs to exactly
    one domain.

    >>> fault_domains(7, 3)
    ((0, 1, 2), (3, 4, 5, 6))
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if domain_size < 1:
        raise ValueError("domain_size must be >= 1")
    starts = list(range(0, n_nodes, domain_size))
    if len(starts) > 1 and n_nodes - starts[-1] < domain_size:
        starts.pop()  # fold the short tail into the previous domain
    return tuple(
        tuple(range(start, min(start + domain_size, n_nodes) if i + 1 < len(starts) else n_nodes))
        for i, start in enumerate(starts)
    )


def architecture_domains(
    architecture: object, n_nodes: int, tp_size: int
) -> tuple[tuple[int, ...], ...]:
    """Failure domains from an architecture's fault-free placement domains.

    Wraps :meth:`~repro.hbd.base.HBDArchitecture.placement_groups` on a
    fault-free cluster, so a correlated event takes out exactly one ring /
    cube / unit / segment of the architecture under study.

    >>> from repro.hbd import NVLHBD
    >>> domains = architecture_domains(NVLHBD(36, 4), n_nodes=18, tp_size=4)
    >>> [len(d) for d in domains]
    [9, 9]
    """
    from repro.hbd.base import HBDArchitecture

    if not isinstance(architecture, HBDArchitecture):
        raise TypeError("architecture must be an HBDArchitecture")
    groups = architecture.placement_groups(n_nodes, frozenset(), tp_size)
    return tuple(tuple(sorted(group.nodes)) for group in groups)


def _mmpp_arrival_hours(
    config: CorrelatedFaultConfig, duration_hours: float, rng: np.random.Generator
) -> list[float]:
    """Arrival instants of a two-state Markov-modulated Poisson process.

    State holding times are exponential (means ``mean_quiet_days`` /
    ``mean_burst_days``); the burst-state arrival rate is
    ``burst_multiplier`` times the quiet rate, and the rates are normalized
    so the *time-averaged* cluster-wide rate equals
    ``correlation * domain_rate_per_day`` outages per day.
    """
    mean_quiet_h = config.mean_quiet_days * HOURS_PER_DAY
    mean_burst_h = config.mean_burst_days * HOURS_PER_DAY
    burst_share = mean_burst_h / (mean_quiet_h + mean_burst_h)
    average_per_hour = config.correlation * config.domain_rate_per_day / HOURS_PER_DAY
    quiet_rate = average_per_hour / (
        (1.0 - burst_share) + config.burst_multiplier * burst_share
    )
    rates = (quiet_rate, config.burst_multiplier * quiet_rate)
    holds = (mean_quiet_h, mean_burst_h)

    arrivals: list[float] = []
    t = 0.0
    state = 0  # start quiet: bursts are the exceptional state
    while t < duration_hours:
        state_end = min(t + rng.exponential(holds[state]), duration_hours)
        rate = rates[state]
        if rate > 0.0:
            clock = t
            while True:
                clock += rng.exponential(1.0 / rate)
                if clock >= state_end:
                    break
                arrivals.append(clock)
        t = state_end
        state = 1 - state
    return arrivals


def sample_domain_outages(
    config: CorrelatedFaultConfig,
    domains: tuple[tuple[int, ...], ...],
    rng: np.random.Generator,
) -> list[DomainOutage]:
    """Draw the correlated overlay: burst-arriving whole-domain outages."""
    duration_hours = config.base.duration_days * HOURS_PER_DAY
    outages: list[DomainOutage] = []
    for start in _mmpp_arrival_hours(config, duration_hours, rng):
        index = int(rng.integers(len(domains)))
        repair = config.repair_median_hours * float(
            np.exp(config.repair_sigma * rng.standard_normal())
        )
        outages.append(
            DomainOutage(
                domain=index,
                nodes=domains[index],
                start_hour=start,
                end_hour=min(start + repair, duration_hours),
            )
        )
    return outages


def correlated_trace_with_outages(
    config: CorrelatedFaultConfig,
    domains: tuple[tuple[int, ...], ...] | None = None,
) -> tuple[FaultTrace, tuple[DomainOutage, ...]]:
    """Generate the correlated trace plus its domain-outage ground truth.

    The returned trace merges the independent base trace with one per-node
    :class:`~repro.faults.trace.FaultEvent` for every node of every domain
    outage; the outage tuple is the generator's own record of which events
    were correlated (used by blast-radius studies and the property tests).

    Determinism: the overlay draws from a dedicated seed stream
    (``(base.seed, overlay tag)``), so the base trace is bit-identical to
    ``generate_synthetic_trace(config.base)`` at every correlation level and
    the whole output is a pure function of the config.

    >>> config = CorrelatedFaultConfig(
    ...     base=SyntheticTraceConfig(n_nodes=32, duration_days=30, seed=3),
    ...     correlation=1.0, domain_size=8, domain_rate_per_day=0.5)
    >>> trace, outages = correlated_trace_with_outages(config)
    >>> len(outages) > 0 and all(len(o.nodes) == 8 for o in outages)
    True
    """
    base = generate_synthetic_trace(config.base)
    if config.correlation == 0.0:
        return base, ()
    if domains is None:
        domains = fault_domains(config.base.n_nodes, config.domain_size)
    for domain in domains:
        for node in domain:
            if not 0 <= node < config.base.n_nodes:
                raise ValueError(f"domain node {node} outside cluster of {config.base.n_nodes}")
    rng = np.random.default_rng((config.base.seed, _OVERLAY_STREAM))
    outages = sample_domain_outages(config, domains, rng)
    events = list(base.events)
    for outage in outages:
        events.extend(
            FaultEvent(node_id=node, start_hour=outage.start_hour, end_hour=outage.end_hour)
            for node in outage.nodes
        )
    trace = FaultTrace(
        n_nodes=config.base.n_nodes,
        duration_days=config.base.duration_days,
        events=events,
        gpus_per_node=config.base.gpus_per_node,
    )
    return trace, tuple(outages)


def generate_correlated_trace(
    config: CorrelatedFaultConfig,
    domains: tuple[tuple[int, ...], ...] | None = None,
) -> FaultTrace:
    """Generate a correlated fault trace (see :func:`correlated_trace_with_outages`).

    >>> base = SyntheticTraceConfig(n_nodes=32, duration_days=10, seed=3)
    >>> independent = generate_synthetic_trace(base)
    >>> same = generate_correlated_trace(CorrelatedFaultConfig(base=base))
    >>> same.events == independent.events   # correlation=0 is a pass-through
    True
    """
    trace, _ = correlated_trace_with_outages(config, domains)
    return trace


__all__ = [
    "CorrelatedFaultConfig",
    "DomainOutage",
    "architecture_domains",
    "correlated_trace_with_outages",
    "fault_domains",
    "generate_correlated_trace",
    "sample_domain_outages",
]
