"""Fault trace data structures.

A fault trace is a list of :class:`FaultEvent` records (node id, start time,
end time) plus the number of nodes in the traced cluster and the trace
duration, mirroring the schema described in Appendix A ("fault start time,
fault end time, and the ID of the faulty node").

:class:`FaultTrace` supports the queries the simulations need:

* the set of faulty nodes at a given time,
* a sampled time series of the faulty-node ratio (Figure 18a),
* the CDF of that ratio (Figure 18b),
* summary statistics (mean, p50, p99) and the mean repair duration,
* (de)serialisation to a simple CSV format so generated traces can be saved
  alongside benchmark outputs.

Point queries, series and statistics are backed by the event-driven interval
engine (:mod:`repro.faults.timeline`): the trace is swept once into its exact
piecewise-constant fault-set sequence, statistics default to exact
duration-weighted quantities, and grid sampling is a thin resampling layer
kept for compatibility (pass ``interval_hours`` to get the legacy
equal-weight-per-sample behaviour).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.faults.timeline import IntervalTimeline

#: Hours per day -- trace times are expressed in hours from the trace start.
HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class FaultEvent:
    """One node fault: the node is down in ``[start_hour, end_hour)``."""

    node_id: int
    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.end_hour < self.start_hour:
            raise ValueError("end_hour must be >= start_hour")

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour

    def active_at(self, hour: float) -> bool:
        """Whether the node is faulty at ``hour``."""
        return self.start_hour <= hour < self.end_hour


def merge_overlapping_events(events: Iterable[FaultEvent]) -> list[FaultEvent]:
    """Merge overlapping or touching events on the same node.

    The sweep-line timeline already handles overlaps exactly (per-node open
    counters), but *event-level* statistics -- ``mean_repair_hours``,
    ``n_events`` -- would silently double-count a node whose single outage
    was logged as several overlapping rows.  Merging turns each node's event
    list into its maximal disjoint downtime windows; disjoint events are
    returned unchanged.
    """
    per_node: dict[int, list[FaultEvent]] = {}
    for event in events:
        per_node.setdefault(event.node_id, []).append(event)
    merged: list[FaultEvent] = []
    for node_id, node_events in per_node.items():
        node_events.sort(key=lambda e: (e.start_hour, e.end_hour))
        current_start = current_end = None
        for event in node_events:
            if current_start is None:
                current_start, current_end = event.start_hour, event.end_hour
            elif event.start_hour <= current_end:
                current_end = max(current_end, event.end_hour)
            else:
                merged.append(
                    FaultEvent(node_id=node_id, start_hour=current_start, end_hour=current_end)
                )
                current_start, current_end = event.start_hour, event.end_hour
        if current_start is not None:
            merged.append(
                FaultEvent(node_id=node_id, start_hour=current_start, end_hour=current_end)
            )
    merged.sort(key=lambda e: (e.start_hour, e.node_id))
    return merged


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of the faulty-node-ratio process."""

    mean_fault_ratio: float
    p50_fault_ratio: float
    p99_fault_ratio: float
    max_fault_ratio: float
    mean_repair_hours: float
    n_events: int


class FaultTrace:
    """A node-level fault trace over a fixed-size cluster."""

    def __init__(
        self,
        n_nodes: int,
        duration_days: float,
        events: Iterable[FaultEvent],
        gpus_per_node: int = 8,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        self.n_nodes = n_nodes
        self.duration_days = duration_days
        self.gpus_per_node = gpus_per_node
        self.events: list[FaultEvent] = sorted(
            events, key=lambda e: (e.start_hour, e.node_id)
        )
        for event in self.events:
            if event.node_id >= n_nodes:
                raise ValueError(
                    f"event node {event.node_id} outside cluster of {n_nodes} nodes"
                )
        # Lazily swept exact timelines, keyed by simulated cluster size so
        # every consumer of the same (trace, n_nodes) shares one sweep.
        self._interval_timelines: dict[int, IntervalTimeline] = {}

    # ------------------------------------------------------------------ query
    @property
    def duration_hours(self) -> float:
        return self.duration_days * HOURS_PER_DAY

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    def interval_timeline(self, n_nodes: int | None = None) -> IntervalTimeline:
        """The exact piecewise-constant fault timeline (swept once, cached).

        ``n_nodes`` restricts the timeline to the first ``n_nodes`` nodes
        (the simulated-cluster projection) without the caller having to hold
        a restricted trace copy -- each distinct size is swept once and
        shared across every simulator replaying this trace.
        """
        nodes = n_nodes if n_nodes is not None else self.n_nodes
        timeline = self._interval_timelines.get(nodes)
        if timeline is None:
            from repro.faults.timeline import IntervalTimeline

            timeline = IntervalTimeline.from_trace(self, n_nodes=nodes)
            self._interval_timelines[nodes] = timeline
        return timeline

    def faulty_nodes_at(self, hour: float) -> set[int]:
        """Set of node ids faulty at time ``hour``."""
        if 0.0 <= hour < self.duration_hours:
            return set(self.interval_timeline().fault_set_at(hour))
        return {e.node_id for e in self.events if e.active_at(hour)}

    def fault_ratio_at(self, hour: float) -> float:
        """Faulty-node ratio at time ``hour``."""
        return len(self.faulty_nodes_at(hour)) / self.n_nodes

    def sample_times(self, interval_hours: float = 24.0) -> list[float]:
        """Sampling grid covering the trace at ``interval_hours`` spacing.

        The grid is generated by integer multiplication (``i * interval``)
        rather than repeated addition, so no float drift accumulates and the
        final sample is never added or dropped spuriously when the interval
        does not divide the duration.
        """
        if interval_hours <= 0:
            raise ValueError("interval_hours must be positive")
        # Largest n with (n - 1) * interval < duration, robust to fp rounding
        # of the division (each correction can only be needed once).
        n = int(self.duration_hours // interval_hours) + 1
        if n > 1 and (n - 1) * interval_hours >= self.duration_hours:
            n -= 1
        elif n * interval_hours < self.duration_hours:
            n += 1
        return [i * interval_hours for i in range(n)]

    def fault_ratio_series(
        self, interval_hours: float = 24.0
    ) -> tuple[list[float], list[float]]:
        """(times_in_days, faulty-node ratio) time series (Figure 18a).

        Grid compatibility layer: the exact interval timeline is resampled at
        ``interval_hours`` spacing, which is bit-for-bit what per-instant
        trace scans produce but costs O(samples + events) instead of
        O(samples x events).
        """
        times = self.sample_times(interval_hours)
        sets = self.interval_timeline().resample(times)
        ratios = [len(s) / self.n_nodes for s in sets]
        return [t / HOURS_PER_DAY for t in times], ratios

    def fault_ratio_cdf(
        self, interval_hours: float | None = None
    ) -> tuple[list[float], list[float]]:
        """CDF of the faulty-node ratio (Figure 18b): (ratios, cumulative).

        By default this is the exact duration-weighted CDF over the interval
        timeline; pass ``interval_hours`` for the legacy grid-sampled
        equal-weight CDF.
        """
        from repro.analysis.cdf import empirical_cdf

        if interval_hours is not None:
            _, ratios = self.fault_ratio_series(interval_hours)
            return empirical_cdf(ratios)
        timeline = self.interval_timeline()
        return empirical_cdf(timeline.fault_ratios, timeline.durations_hours)

    def statistics(self, interval_hours: float | None = None) -> TraceStatistics:
        """Summary statistics of the trace (Appendix A numbers).

        By default every ratio statistic is exact: duration-weighted over the
        interval timeline, independent of any sampling grid.  Pass
        ``interval_hours`` to reproduce the legacy equal-weight-per-sample
        statistics on that grid.
        """
        repairs = [e.duration_hours for e in self.events]
        mean_repair = float(np.mean(repairs)) if repairs else 0.0
        if interval_hours is not None:
            _, ratios = self.fault_ratio_series(interval_hours)
            arr = np.asarray(ratios, dtype=float)
            return TraceStatistics(
                mean_fault_ratio=float(arr.mean()) if arr.size else 0.0,
                p50_fault_ratio=float(np.percentile(arr, 50)) if arr.size else 0.0,
                p99_fault_ratio=float(np.percentile(arr, 99)) if arr.size else 0.0,
                max_fault_ratio=float(arr.max()) if arr.size else 0.0,
                mean_repair_hours=mean_repair,
                n_events=len(self.events),
            )
        timeline = self.interval_timeline()
        return TraceStatistics(
            mean_fault_ratio=timeline.mean_fault_ratio(),
            p50_fault_ratio=timeline.fault_ratio_quantile(0.50),
            p99_fault_ratio=timeline.fault_ratio_quantile(0.99),
            max_fault_ratio=timeline.max_fault_ratio(),
            mean_repair_hours=mean_repair,
            n_events=len(self.events),
        )

    def restrict_nodes(self, n_nodes: int) -> FaultTrace:
        """Project the trace onto the first ``n_nodes`` nodes.

        Used when the simulated cluster is smaller than the traced one (the
        paper simulates 2,880 GPUs against a ~3,200-GPU trace); events on
        nodes beyond the new size are dropped.
        """
        if n_nodes > self.n_nodes:
            raise ValueError("cannot restrict to more nodes than the trace has")
        events = [e for e in self.events if e.node_id < n_nodes]
        return FaultTrace(
            n_nodes=n_nodes,
            duration_days=self.duration_days,
            events=events,
            gpus_per_node=self.gpus_per_node,
        )

    # -------------------------------------------------------------- serialise
    def to_csv(self) -> str:
        """Serialise to CSV (header + one row per event)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["node_id", "start_hour", "end_hour"])
        for event in self.events:
            writer.writerow([event.node_id, event.start_hour, event.end_hour])
        return buffer.getvalue()

    @classmethod
    def from_csv(
        cls,
        text: str,
        n_nodes: int,
        duration_days: float,
        gpus_per_node: int = 8,
        merge_overlaps: bool = True,
    ) -> FaultTrace:
        """Parse a trace from the CSV schema of :meth:`to_csv`.

        Built for real-trace ingestion, so malformed rows fail with the row
        number and the offending value rather than a bare ``ValueError``:
        missing columns, non-numeric fields, negative durations
        (``end_hour < start_hour``), negative start times and node ids
        outside ``[0, n_nodes)`` are all rejected.  Overlapping (or touching)
        events on the same node -- common in operational logs where one
        incident is recorded by several monitors -- are merged into one
        downtime window by default so repair-time statistics do not
        double-count them; pass ``merge_overlaps=False`` to keep the rows
        verbatim.
        """
        reader = csv.DictReader(io.StringIO(text))
        required = {"node_id", "start_hour", "end_hour"}
        header = set(reader.fieldnames or ())
        missing = sorted(required - header)
        if missing:
            raise ValueError(
                f"trace CSV is missing column(s) {missing}; "
                f"expected header: node_id,start_hour,end_hour"
            )
        events: list[FaultEvent] = []
        for line, row in enumerate(reader, start=2):  # line 1 is the header
            try:
                node_id = int(row["node_id"])
                start_hour = float(row["start_hour"])
                end_hour = float(row["end_hour"])
            except (TypeError, ValueError):
                raise ValueError(
                    f"trace CSV row {line}: malformed values "
                    f"(node_id={row['node_id']!r}, start_hour={row['start_hour']!r}, "
                    f"end_hour={row['end_hour']!r})"
                ) from None
            if not 0 <= node_id < n_nodes:
                raise ValueError(
                    f"trace CSV row {line}: node_id {node_id} outside the "
                    f"cluster [0, {n_nodes})"
                )
            if start_hour < 0:
                raise ValueError(
                    f"trace CSV row {line}: negative start_hour ({start_hour})"
                )
            if end_hour < start_hour:
                raise ValueError(
                    f"trace CSV row {line}: negative duration "
                    f"(start_hour={start_hour}, end_hour={end_hour})"
                )
            events.append(
                FaultEvent(node_id=node_id, start_hour=start_hour, end_hour=end_hour)
            )
        if merge_overlaps:
            events = merge_overlapping_events(events)
        return cls(
            n_nodes=n_nodes,
            duration_days=duration_days,
            events=events,
            gpus_per_node=gpus_per_node,
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FaultTrace(n_nodes={self.n_nodes}, days={self.duration_days}, "
            f"events={len(self.events)})"
        )
