"""Fit correlated-generator parameters to an ingested fault trace.

Real failure logs (Philly / Helios style CSVs, loaded through the hardened
:meth:`~repro.faults.trace.FaultTrace.from_csv`) mix two processes: isolated
node churn and correlated domain incidents.  :func:`fit_correlated_config`
separates them and moment-matches every knob of
:class:`~repro.faults.correlated.CorrelatedFaultConfig`:

* **Domain outages** are detected structurally: events of one domain whose
  start times fall within ``start_window_hours`` of each other and that
  cover at least ``min_coverage`` of the domain are grouped into one
  incident.
* **Correlation** is the share of node-downtime attributable to those
  incidents; **domain_rate_per_day** recovers the generator's rate knob
  from the detected incident count.
* **Burst structure** is moment-matched through the index of dispersion of
  the daily incident counts (a Poisson process has dispersion 1; an MMPP's
  excess dispersion comes from the burst state).
* **Repair times** get a lognormal fit on the incident durations, with a
  Kolmogorov-Smirnov distance reported as goodness-of-fit.

The result carries the fitted config plus the goodness-of-fit numbers, so a
calibration can be accepted or rejected programmatically::

    trace = FaultTrace.from_csv(text, n_nodes=400, duration_days=90)
    fit = fit_correlated_config(trace, domain_size=8)
    if fit.repair_ks_distance < 0.2:
        synthetic = generate_correlated_trace(fit.config)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.correlated import (
    CorrelatedFaultConfig,
    DomainOutage,
    fault_domains,
    generate_correlated_trace,
)
from repro.faults.synthetic import SyntheticTraceConfig
from repro.faults.trace import HOURS_PER_DAY, FaultTrace


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted generator config plus how well it explains the input trace."""

    config: CorrelatedFaultConfig
    n_domain_outages: int
    #: Share of total node-downtime attributed to detected domain outages.
    correlated_downtime_share: float
    #: Kolmogorov-Smirnov distance of incident durations vs the fitted lognormal.
    repair_ks_distance: float
    #: Relative error of the mean fault ratio when the fitted config is
    #: regenerated and compared against the input trace (round-trip check).
    fault_ratio_rel_error: float
    #: Index of dispersion of daily incident counts (1.0 = Poisson).
    dispersion_index: float

    def report(self) -> list[str]:
        """Human-readable fit summary (one string per line)."""
        config = self.config
        return [
            f"correlation={config.correlation:.4f} "
            f"(correlated downtime share {self.correlated_downtime_share:.4f})",
            f"domain outages detected: {self.n_domain_outages} "
            f"(domain_size={config.domain_size}, "
            f"rate={config.domain_rate_per_day:.4f}/day at correlation=1)",
            f"burst: multiplier={config.burst_multiplier:.2f} "
            f"(daily dispersion index {self.dispersion_index:.2f})",
            f"repair: median={config.repair_median_hours:.2f}h "
            f"sigma={config.repair_sigma:.3f} "
            f"KS distance={self.repair_ks_distance:.4f}",
            f"base: mean_ratio={config.base.mean_fault_ratio:.4f} "
            f"p99_ratio={config.base.p99_fault_ratio:.4f} "
            f"mean_repair={config.base.mean_repair_days:.2f}d "
            f"(rel. error {self.fault_ratio_rel_error:.4f})",
        ]


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _lognormal_ks_distance(durations: list[float], median: float, sigma: float) -> float:
    """KS distance between positive ``durations`` and Lognormal(median, sigma)."""
    positive = sorted(d for d in durations if d > 0.0)
    if not positive or median <= 0.0:
        return 0.0
    n = len(positive)
    distance = 0.0
    for i, value in enumerate(positive):
        if sigma > 0.0:
            model = _normal_cdf((math.log(value) - math.log(median)) / sigma)
        else:
            model = 0.0 if value < median else 1.0
        distance = max(distance, abs((i + 1) / n - model), abs(i / n - model))
    return distance


def detect_domain_outages(
    trace: FaultTrace,
    domain_size: int,
    start_window_hours: float = 1.0,
    min_coverage: float = 0.75,
) -> list[DomainOutage]:
    """Group near-simultaneous same-domain events into domain incidents.

    Events of one domain whose starts fall within ``start_window_hours`` of
    the incident's first start form a candidate; it is kept when it covers
    at least ``min_coverage`` of the domain (and at least two nodes).  The
    incident spans the earliest start to the latest end of its events.
    """
    if not 0.0 < min_coverage <= 1.0:
        raise ValueError("min_coverage must be in (0, 1]")
    if start_window_hours < 0.0:
        raise ValueError("start_window_hours must be >= 0")
    domains = fault_domains(trace.n_nodes, domain_size)
    domain_of = {node: i for i, nodes in enumerate(domains) for node in nodes}
    per_domain: dict[int, list[tuple[float, float, int]]] = {}
    for event in trace.events:
        per_domain.setdefault(domain_of[event.node_id], []).append(
            (event.start_hour, event.end_hour, event.node_id)
        )
    outages: list[DomainOutage] = []
    for index in sorted(per_domain):
        rows = sorted(per_domain[index])
        required = max(2, math.ceil(min_coverage * len(domains[index])))
        cluster: list[tuple[float, float, int]] = []
        for row in rows + [(math.inf, math.inf, -1)]:
            if cluster and row[0] - cluster[0][0] > start_window_hours:
                nodes = tuple(sorted({node for _, _, node in cluster}))
                if len(nodes) >= required:
                    outages.append(
                        DomainOutage(
                            domain=index,
                            nodes=nodes,
                            start_hour=min(start for start, _, _ in cluster),
                            end_hour=max(end for _, end, _ in cluster),
                        )
                    )
                cluster = []
            if row[2] >= 0:
                cluster.append(row)
    outages.sort(key=lambda o: (o.start_hour, o.domain))
    return outages


def fit_correlated_config(
    trace: FaultTrace,
    domain_size: int = 8,
    start_window_hours: float = 1.0,
    min_coverage: float = 0.75,
) -> CalibrationResult:
    """Moment-match a :class:`CorrelatedFaultConfig` to an ingested trace.

    >>> from repro.faults.correlated import (
    ...     CorrelatedFaultConfig, generate_correlated_trace)
    >>> truth = CorrelatedFaultConfig(
    ...     base=SyntheticTraceConfig(n_nodes=64, duration_days=120, seed=11),
    ...     correlation=1.0, domain_size=8, domain_rate_per_day=0.5)
    >>> fit = fit_correlated_config(generate_correlated_trace(truth), domain_size=8)
    >>> fit.n_domain_outages > 0 and 0.0 < fit.config.correlation <= 1.0
    True
    """
    stats = trace.statistics()
    outages = detect_domain_outages(trace, domain_size, start_window_hours, min_coverage)

    total_downtime = sum(e.duration_hours for e in trace.events)
    correlated_downtime = sum(
        (o.end_hour - o.start_hour) * len(o.nodes) for o in outages
    )
    share = correlated_downtime / total_downtime if total_downtime > 0.0 else 0.0
    correlation = min(1.0, max(0.0, share))

    # Generator arrival rate is correlation * domain_rate_per_day; invert it
    # so regenerating from the fit reproduces the detected incident count.
    observed_rate = len(outages) / trace.duration_days
    domain_rate = observed_rate / correlation if correlation > 0.0 else 0.25

    # Daily incident counts: a Poisson process has dispersion (var/mean) 1;
    # the MMPP's excess dispersion is produced by the burst state, so the
    # dispersion index itself is the moment-matched multiplier.
    n_days = max(1, int(math.ceil(trace.duration_days)))
    daily = np.zeros(n_days)
    for outage in outages:
        daily[min(n_days - 1, int(outage.start_hour // HOURS_PER_DAY))] += 1
    mean_daily = float(daily.mean())
    dispersion = float(daily.var() / mean_daily) if mean_daily > 0.0 else 1.0
    burst_multiplier = max(1.0, dispersion)

    durations = [o.end_hour - o.start_hour for o in outages if o.end_hour > o.start_hour]
    if durations:
        logs = np.log(np.asarray(durations, dtype=float))
        repair_median = float(np.exp(logs.mean()))
        repair_sigma = float(logs.std(ddof=0))
    else:
        repair_median, repair_sigma = 4.0, 1.2
    ks = _lognormal_ks_distance(durations, repair_median, repair_sigma)

    base = SyntheticTraceConfig(
        n_nodes=trace.n_nodes,
        duration_days=max(1, int(round(trace.duration_days))),
        gpus_per_node=trace.gpus_per_node,
        mean_fault_ratio=min(max(stats.mean_fault_ratio, 1e-6), 0.49),
        p99_fault_ratio=min(
            max(stats.p99_fault_ratio, max(stats.mean_fault_ratio, 1e-6)), 0.5 - 1e-9
        ),
        mean_repair_days=max(1.0, stats.mean_repair_hours / HOURS_PER_DAY),
    )
    config = CorrelatedFaultConfig(
        base=base,
        correlation=correlation,
        domain_size=domain_size,
        domain_rate_per_day=max(domain_rate, 1e-9),
        burst_multiplier=burst_multiplier,
        mean_quiet_days=7.0,
        mean_burst_days=1.0,
        repair_median_hours=repair_median,
        repair_sigma=repair_sigma,
    )
    # Round-trip goodness-of-fit: regenerate from the fitted config and
    # compare the exact duration-weighted mean fault ratio to the input's.
    regenerated = generate_correlated_trace(config).statistics().mean_fault_ratio
    rel_error = (
        abs(regenerated - stats.mean_fault_ratio) / stats.mean_fault_ratio
        if stats.mean_fault_ratio > 0.0
        else 0.0
    )
    return CalibrationResult(
        config=config,
        n_domain_outages=len(outages),
        correlated_downtime_share=share,
        repair_ks_distance=ks,
        fault_ratio_rel_error=rel_error,
        dispersion_index=dispersion,
    )


__all__ = ["CalibrationResult", "detect_domain_outages", "fit_correlated_config"]
