"""Synthetic fault-trace generation calibrated to the paper's statistics.

The production trace (Appendix A) covers 348 days of a ~400-node (3K-GPU,
8 GPUs/node) cluster with a mean faulty-node ratio of 2.33% and a p99 of
7.22%.  The trace itself is not available offline, so this module generates a
statistically equivalent one:

1. A daily faulty-node-ratio target series is drawn from an AR(1) latent
   Gaussian process pushed through a lognormal marginal whose mean / p99
   match the published numbers (heavy-ish upper tail, strong day-to-day
   correlation -- failures persist until repaired).
2. Day-level node membership is made *sticky*: a node that is faulty today
   stays faulty tomorrow with a persistence probability derived from the mean
   repair time, and nodes are added / repaired to hit the daily target count.
3. Contiguous runs of faulty days per node are merged into
   :class:`~repro.faults.trace.FaultEvent` records.

The result reproduces the marginal fault-ratio process (Figure 18) that all
trace-driven experiments depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.trace import FaultEvent, FaultTrace, HOURS_PER_DAY


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Calibration targets and knobs for the synthetic trace generator.

    Defaults reproduce the Appendix A statistics of the production trace.
    """

    n_nodes: int = 400
    duration_days: int = 348
    gpus_per_node: int = 8
    mean_fault_ratio: float = 0.0233
    p99_fault_ratio: float = 0.0722
    ar1_coefficient: float = 0.8
    mean_repair_days: float = 2.5
    seed: int = 348

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.duration_days < 1:
            raise ValueError("duration_days must be >= 1")
        if not 0.0 < self.mean_fault_ratio < 1.0:
            raise ValueError("mean_fault_ratio must be in (0, 1)")
        if not self.mean_fault_ratio <= self.p99_fault_ratio < 1.0:
            raise ValueError("p99_fault_ratio must be >= mean and < 1")
        if not 0.0 <= self.ar1_coefficient < 1.0:
            raise ValueError("ar1_coefficient must be in [0, 1)")
        if self.mean_repair_days < 1.0:
            raise ValueError("mean_repair_days must be >= 1 day")


def _lognormal_sigma(mean: float, p99: float) -> float:
    """Sigma of a lognormal whose p99/mean ratio matches ``p99/mean``.

    For ``X = mean * exp(sigma*Z - sigma^2/2)`` the p99/mean ratio equals
    ``exp(2.326*sigma - sigma^2/2)``; we solve for sigma with a bisection.
    """
    target = p99 / mean
    if target <= 1.0:
        return 0.0
    z99 = 2.326347874  # 99th percentile of the standard normal

    def ratio(sigma: float) -> float:
        return math.exp(z99 * sigma - sigma * sigma / 2.0)

    lo, hi = 0.0, z99  # ratio is increasing on [0, z99]
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if ratio(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _daily_ratio_targets(config: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Correlated daily faulty-node-ratio targets matching mean and p99."""
    sigma = _lognormal_sigma(config.mean_fault_ratio, config.p99_fault_ratio)
    rho = config.ar1_coefficient
    innovations = rng.normal(size=config.duration_days)
    latent = np.empty(config.duration_days)
    latent[0] = innovations[0]
    scale = math.sqrt(1.0 - rho * rho)
    for day in range(1, config.duration_days):
        latent[day] = rho * latent[day - 1] + scale * innovations[day]
    ratios = config.mean_fault_ratio * np.exp(sigma * latent - sigma * sigma / 2.0)
    # Exact mean calibration (the lognormal transform is already mean-correct
    # in expectation; rescaling removes the sampling error of a finite trace).
    ratios *= config.mean_fault_ratio / ratios.mean()
    return np.clip(ratios, 0.0, 0.5)


def generate_synthetic_trace(config: SyntheticTraceConfig | None = None) -> FaultTrace:
    """Generate a synthetic node-fault trace matching ``config``'s statistics."""
    config = config if config is not None else SyntheticTraceConfig()
    rng = np.random.default_rng(config.seed)
    targets = _daily_ratio_targets(config, rng)
    persistence = 1.0 - 1.0 / config.mean_repair_days

    faulty: set[int] = set()
    membership: list[set[int]] = []
    all_nodes = np.arange(config.n_nodes)

    for day in range(config.duration_days):
        target_count = int(round(targets[day] * config.n_nodes))
        target_count = min(target_count, config.n_nodes)

        # Nodes repaired today (those that do not persist).  Iterate the
        # fault set in sorted order so the node-to-draw pairing is a pure
        # function of the seed, not of set-insertion history.
        survivors = {
            node for node in sorted(faulty) if rng.random() < persistence
        }
        faulty = survivors

        if len(faulty) > target_count:
            # Repair surplus nodes (oldest-first is irrelevant for the
            # marginal statistics; repair uniformly at random).
            surplus = len(faulty) - target_count
            to_repair = rng.choice(sorted(faulty), size=surplus, replace=False)
            faulty.difference_update(int(n) for n in to_repair)
        elif len(faulty) < target_count:
            healthy = np.setdiff1d(all_nodes, np.fromiter(faulty, dtype=int, count=len(faulty)))
            needed = min(target_count - len(faulty), healthy.size)
            if needed > 0:
                new_faults = rng.choice(healthy, size=needed, replace=False)
                faulty.update(int(n) for n in new_faults)

        membership.append(set(faulty))

    events = _membership_to_events(membership)
    return FaultTrace(
        n_nodes=config.n_nodes,
        duration_days=config.duration_days,
        events=events,
        gpus_per_node=config.gpus_per_node,
    )


def _membership_to_events(membership: list[set[int]]) -> list[FaultEvent]:
    """Merge per-day faulty membership into contiguous fault events."""
    events: list[FaultEvent] = []
    open_since: dict = {}
    for day, members in enumerate(membership):
        # Close events for nodes that recovered.
        for node in list(open_since):
            if node not in members:
                events.append(
                    FaultEvent(
                        node_id=node,
                        start_hour=open_since.pop(node) * HOURS_PER_DAY,
                        end_hour=day * HOURS_PER_DAY,
                    )
                )
        # Open events for newly faulty nodes.
        for node in members:
            if node not in open_since:
                open_since[node] = day
    horizon = len(membership)
    for node, start_day in open_since.items():
        events.append(
            FaultEvent(
                node_id=node,
                start_hour=start_day * HOURS_PER_DAY,
                end_hour=horizon * HOURS_PER_DAY,
            )
        )
    events.sort(key=lambda e: (e.start_hour, e.node_id))
    return events
