"""Conversion of the 8-GPU-node fault trace to 4-GPU nodes (Appendix A).

The production trace is collected on 8-GPU nodes, while most of section 6
simulates 4-GPU nodes (matching GB200 NVL and TPUv4 node sizes).  The paper
derives the conversion as follows:

1. GPU faults are i.i.d. with per-GPU probability ``p``; a node is faulty if
   any GPU inside it is, so ``P_fault(8-GPU) = 1 - (1-p)^8 = 2.33%`` gives
   ``p = 0.29%`` and ``P_fault(4-GPU) = 1 - (1-p)^4 = 1.17%``.
2. By Bayes' rule, conditioned on an 8-GPU node being faulty, each of the two
   co-located 4-GPU nodes is faulty with probability
   ``P(4-GPU | 8-GPU) = P(4-GPU) / P(8-GPU) = 50.21%``.
3. Every event of the original trace is therefore mapped to zero, one or two
   events on the corresponding 4-GPU nodes by two independent coin flips.
"""

from __future__ import annotations


import numpy as np

from repro.faults.trace import FaultEvent, FaultTrace


def per_gpu_fault_probability(node_fault_ratio: float, gpus_per_node: int) -> float:
    """Per-GPU fault probability implied by a node-level fault ratio."""
    if not 0.0 <= node_fault_ratio < 1.0:
        raise ValueError("node_fault_ratio must be in [0, 1)")
    if gpus_per_node < 1:
        raise ValueError("gpus_per_node must be >= 1")
    return 1.0 - (1.0 - node_fault_ratio) ** (1.0 / gpus_per_node)


def node_fault_probability(per_gpu_probability: float, gpus_per_node: int) -> float:
    """Node-level fault probability for i.i.d. GPU faults."""
    if not 0.0 <= per_gpu_probability < 1.0:
        raise ValueError("per_gpu_probability must be in [0, 1)")
    if gpus_per_node < 1:
        raise ValueError("gpus_per_node must be >= 1")
    return 1.0 - (1.0 - per_gpu_probability) ** gpus_per_node


def conversion_probability(
    source_node_ratio: float = 0.0233,
    source_gpus_per_node: int = 8,
    target_gpus_per_node: int = 4,
) -> float:
    """``P(target-node faulty | source-node faulty)`` (50.21% in the paper)."""
    p_gpu = per_gpu_fault_probability(source_node_ratio, source_gpus_per_node)
    p_target = node_fault_probability(p_gpu, target_gpus_per_node)
    if source_node_ratio == 0:
        return 0.0
    return p_target / source_node_ratio


def convert_trace_8gpu_to_4gpu(
    trace: FaultTrace,
    seed: int = 0,
    mean_node_fault_ratio: float | None = None,
) -> FaultTrace:
    """Convert an 8-GPU-node trace into a 4-GPU-node trace.

    Each source node ``n`` maps to target nodes ``2n`` and ``2n + 1``.  For
    every source fault event, each target node independently inherits the
    event with the Bayes conversion probability.

    Parameters
    ----------
    trace:
        The source trace (must use 8 GPUs per node).
    seed:
        Seed for the per-event coin flips.
    mean_node_fault_ratio:
        Mean faulty-node ratio of the source trace used to derive the
        conversion probability.  Defaults to the trace's own measured mean.
    """
    if trace.gpus_per_node != 8:
        raise ValueError("convert_trace_8gpu_to_4gpu expects an 8-GPU-node trace")
    rng = np.random.default_rng(seed)
    if mean_node_fault_ratio is None:
        mean_node_fault_ratio = trace.statistics().mean_fault_ratio
    p_convert = conversion_probability(
        source_node_ratio=mean_node_fault_ratio,
        source_gpus_per_node=8,
        target_gpus_per_node=4,
    )

    events: list[FaultEvent] = []
    for event in trace.events:
        for half in (0, 1):
            if rng.random() < p_convert:
                events.append(
                    FaultEvent(
                        node_id=event.node_id * 2 + half,
                        start_hour=event.start_hour,
                        end_hour=event.end_hour,
                    )
                )
    return FaultTrace(
        n_nodes=trace.n_nodes * 2,
        duration_days=trace.duration_days,
        events=events,
        gpus_per_node=4,
    )
