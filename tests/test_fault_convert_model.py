"""Tests for the 8-GPU to 4-GPU trace conversion and the i.i.d. fault model."""

import numpy as np
import pytest

from repro.faults.convert import (
    conversion_probability,
    convert_trace_8gpu_to_4gpu,
    node_fault_probability,
    per_gpu_fault_probability,
)
from repro.faults.model import IIDFaultModel, sample_fault_set
from repro.faults.synthetic import SyntheticTraceConfig, generate_synthetic_trace
from repro.faults.trace import FaultEvent, FaultTrace


class TestProbabilityMath:
    def test_per_gpu_probability_matches_appendix_a(self):
        p = per_gpu_fault_probability(0.0233, 8)
        assert p == pytest.approx(0.0029, abs=2e-4)

    def test_node_probability_4gpu(self):
        p = per_gpu_fault_probability(0.0233, 8)
        assert node_fault_probability(p, 4) == pytest.approx(0.0117, abs=5e-4)

    def test_conversion_probability_matches_paper(self):
        assert conversion_probability(0.0233, 8, 4) == pytest.approx(0.5021, abs=0.005)

    def test_roundtrip_consistency(self):
        p_gpu = per_gpu_fault_probability(0.05, 8)
        assert node_fault_probability(p_gpu, 8) == pytest.approx(0.05)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            per_gpu_fault_probability(1.5, 8)
        with pytest.raises(ValueError):
            node_fault_probability(-0.1, 8)
        with pytest.raises(ValueError):
            per_gpu_fault_probability(0.1, 0)


class TestTraceConversion:
    @pytest.fixture(scope="class")
    def source(self):
        return generate_synthetic_trace(
            SyntheticTraceConfig(n_nodes=200, duration_days=120, seed=5)
        )

    def test_converted_shape(self, source):
        converted = convert_trace_8gpu_to_4gpu(source, seed=1)
        assert converted.n_nodes == 2 * source.n_nodes
        assert converted.gpus_per_node == 4
        assert converted.duration_days == source.duration_days

    def test_converted_fault_ratio_roughly_halved(self, source):
        converted = convert_trace_8gpu_to_4gpu(source, seed=1)
        source_mean = source.statistics().mean_fault_ratio
        converted_mean = converted.statistics().mean_fault_ratio
        assert converted_mean == pytest.approx(source_mean * 0.50, rel=0.25)

    def test_converted_events_map_to_child_nodes(self, source):
        converted = convert_trace_8gpu_to_4gpu(source, seed=1)
        source_nodes = {e.node_id for e in source.events}
        for event in converted.events:
            assert event.node_id // 2 in source_nodes

    def test_requires_8gpu_trace(self):
        trace = FaultTrace(
            n_nodes=4,
            duration_days=1,
            events=[FaultEvent(0, 0.0, 1.0)],
            gpus_per_node=4,
        )
        with pytest.raises(ValueError):
            convert_trace_8gpu_to_4gpu(trace)

    def test_deterministic_per_seed(self, source):
        a = convert_trace_8gpu_to_4gpu(source, seed=3)
        b = convert_trace_8gpu_to_4gpu(source, seed=3)
        assert a.to_csv() == b.to_csv()


class TestIIDFaultModel:
    def test_sample_count_matches_ratio(self):
        rng = np.random.default_rng(0)
        faults = sample_fault_set(1000, 0.05, rng)
        assert len(faults) == 50
        assert all(0 <= f < 1000 for f in faults)

    def test_zero_ratio(self):
        rng = np.random.default_rng(0)
        assert sample_fault_set(100, 0.0, rng) == set()

    def test_full_ratio(self):
        rng = np.random.default_rng(0)
        assert len(sample_fault_set(100, 1.0, rng)) == 100

    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_fault_set(0, 0.1, rng)
        with pytest.raises(ValueError):
            sample_fault_set(10, 1.5, rng)

    def test_expectation_of_indicator(self):
        model = IIDFaultModel(n_nodes=100, seed=1, n_samples=30)
        mean_size = model.expectation(0.1, lambda s: len(s))
        assert mean_size == pytest.approx(10.0)

    def test_sweep_shape_and_monotonicity(self):
        model = IIDFaultModel(n_nodes=200, seed=2, n_samples=10)
        ratios = [0.0, 0.05, 0.1, 0.2]
        sizes = model.sweep(ratios, lambda s: len(s))
        assert len(sizes) == 4
        assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            IIDFaultModel(n_nodes=0)
        with pytest.raises(ValueError):
            IIDFaultModel(n_nodes=10, n_samples=0)
