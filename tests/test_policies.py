"""Tests for the advanced scheduling policies (gittins, lookahead, optimizer).

Complements :mod:`tests.test_scheduler` (engine mechanics and the classic
queue orders) with the policy-specific behavior of the three advanced
policies:

* **gittins** -- discretized attained-service levels, the stateful PROMOTE
  rule (promotion resets the demotion clock, so it cannot oscillate), the
  dynamic-priority wake-up math, and the no-starvation guarantee on finite
  workloads;
* **lookahead** -- the k-job window admits by fill score rather than
  arrival order, but never reaches past the window;
* **optimizer** -- the greedy-LP utility densities, and the stability
  bonus's churn hysteresis (marginal gains do not migrate, large gains do);

plus the shared invariants: wall-clock conservation under random traces
and workloads in both capacity modes, and byte-identical ClusterReport
JSON across fresh runs (the policies' per-run state must not leak).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SchedulerSpec
from repro.faults.trace import FaultEvent, FaultTrace
from repro.hbd import BigSwitchHBD
from repro.scheduler import ClusterScheduler, JobSpec, WorkloadConfig, generate_workload
from repro.scheduler.policies import (
    POLICY_NAMES,
    GittinsPolicy,
    LookaheadPolicy,
    OptimizerPolicy,
    policy_by_name,
)

NEW_POLICIES = ("gittins", "lookahead", "optimizer")


def quiet_trace(n_nodes=4, days=30, events=(), gpus_per_node=4):
    return FaultTrace(
        n_nodes=n_nodes,
        duration_days=days,
        events=list(events),
        gpus_per_node=gpus_per_node,
    )


def run_jobs(jobs, policy, n_nodes=4, days=30, horizon=None, **scheduler_kwargs):
    return ClusterScheduler(
        BigSwitchHBD(4),
        quiet_trace(n_nodes=n_nodes, days=days).interval_timeline(),
        jobs,
        policy=policy,
        horizon_hours=horizon,
        **scheduler_kwargs,
    ).run()


def job(name, gpus, work, submit=0.0, overhead=0.25):
    return JobSpec(
        name=name,
        gpus=gpus,
        tp_size=4,
        work_hours=work,
        submit_hour=submit,
        restart_overhead_hours=overhead,
    )


class TestRegistry:
    def test_all_six_registered(self):
        assert POLICY_NAMES == (
            "fifo",
            "smallest-first",
            "shortest-remaining",
            "gittins",
            "lookahead",
            "optimizer",
        )

    def test_default_preemption_modes(self):
        assert policy_by_name("gittins").preemptive
        assert policy_by_name("optimizer").preemptive
        assert not policy_by_name("lookahead").preemptive
        assert not policy_by_name("fifo").preemptive
        # Explicit preemptive overrides the per-policy default.
        assert not policy_by_name("gittins", preemptive=False).preemptive
        assert policy_by_name("lookahead", preemptive=True).preemptive

    def test_knobs_pass_through(self):
        gittins = policy_by_name(
            "gittins", threshold_gpu_hours=64.0, levels=2, starve_limit=8.0
        )
        assert isinstance(gittins, GittinsPolicy)
        assert gittins.threshold_gpu_hours == 64.0
        assert gittins.levels == 2
        assert gittins.starve_limit == 8.0
        lookahead = policy_by_name("lookahead", k=2)
        assert isinstance(lookahead, LookaheadPolicy)
        assert lookahead.lookahead_k == 2
        optimizer = policy_by_name("optimizer", horizon_hours=4.0, stability_bonus=0.1)
        assert isinstance(optimizer, OptimizerPolicy)
        assert optimizer.horizon_hours == 4.0
        assert optimizer.stability_bonus == 0.1

    def test_unknown_knob_rejected(self):
        with pytest.raises(TypeError):
            policy_by_name("gittins", window=3)

    def test_validations(self):
        with pytest.raises(ValueError, match="threshold"):
            GittinsPolicy(threshold_gpu_hours=0.0)
        with pytest.raises(ValueError, match="levels"):
            GittinsPolicy(levels=0)
        with pytest.raises(ValueError, match="starve"):
            GittinsPolicy(starve_limit=0.0)
        with pytest.raises(ValueError, match="k must be"):
            LookaheadPolicy(k=0)
        with pytest.raises(ValueError, match="horizon"):
            OptimizerPolicy(horizon_hours=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            OptimizerPolicy(stability_bonus=-0.1)


class TestGittinsMath:
    def test_level_boundaries_double(self):
        policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3)
        assert policy.level_of(0.0) == 0
        assert policy.level_of(63.9) == 0
        assert policy.level_of(64.0) == 1
        assert policy.level_of(127.9) == 1  # boundaries at 64 * 2**level
        assert policy.level_of(128.0) == 2
        assert policy.level_of(1e9) == 2  # capped at levels - 1

    def test_promotion_resets_demotion_clock(self):
        policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3, starve_limit=4.0)
        j = job("j", gpus=16, work=100.0)
        # Demoted: 80 GPU-h attained, not yet starved.
        assert policy.runtime_key(j, 95.0, 0, attained_hours=5.0)[0] == 1
        # Starved past starve_limit x attained -> promoted to the top queue.
        assert (
            policy.runtime_key(j, 95.0, 0, attained_hours=5.0, waiting_hours=20.0)[0]
            == 0
        )
        # The demotion clock restarted: the same cumulative attained service
        # now counts from the promotion baseline, so the job keeps its fresh
        # quantum instead of oscillating back to the demoted level.
        assert (
            policy.runtime_key(j, 95.0, 0, attained_hours=5.5, waiting_hours=30.0)[0]
            == 0
        )
        # A full fresh quantum later it demotes again.
        assert (
            policy.runtime_key(j, 90.0, 0, attained_hours=10.0, waiting_hours=30.0)[0]
            == 1
        )

    def test_reset_clears_promotion_state(self):
        policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3)
        j = job("j", gpus=16, work=100.0)
        policy.runtime_key(j, 95.0, 0, attained_hours=5.0, waiting_hours=20.0)
        assert policy._promo_base
        policy.reset()
        assert not policy._promo_base

    def test_next_change_while_allocated_is_demotion_boundary(self):
        policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3)
        j = job("j", gpus=16, work=100.0)
        # Level 0 with 32 GPU-h attained: 32 GPU-h to the 64 boundary = 2h.
        assert policy.next_priority_change_hours(
            j, 98.0, 0, attained_hours=2.0, waiting_hours=0.0, allocated=True
        ) == pytest.approx(2.0)
        # Level 1 at 80 GPU-h: 48 GPU-h to the 128 boundary = 3h.
        assert policy.next_priority_change_hours(
            j, 95.0, 0, attained_hours=5.0, waiting_hours=0.0, allocated=True
        ) == pytest.approx(3.0)
        # Bottom level never demotes further.
        assert (
            policy.next_priority_change_hours(
                j, 80.0, 0, attained_hours=20.0, waiting_hours=0.0, allocated=True
            )
            is None
        )

    def test_next_change_while_waiting_is_promotion(self):
        policy = GittinsPolicy(threshold_gpu_hours=64.0, levels=3, starve_limit=4.0)
        j = job("j", gpus=16, work=100.0)
        # Top-queue jobs have no promotion pending.
        assert (
            policy.next_priority_change_hours(
                j, 99.0, 0, attained_hours=1.0, waiting_hours=5.0, allocated=False
            )
            is None
        )
        # Demoted job: promotes at starve_limit * attained = 20h of waiting.
        assert policy.next_priority_change_hours(
            j, 95.0, 0, attained_hours=5.0, waiting_hours=12.0, allocated=False
        ) == pytest.approx(8.0)


class TestLookaheadAdmission:
    JOBS = [
        job("running", gpus=16, work=10.0, submit=0.0),
        job("narrow", gpus=8, work=5.0, submit=1.0),
        job("wide", gpus=12, work=5.0, submit=2.0),
    ]

    @staticmethod
    def starts(report):
        return {j.name: j.first_start_hour for j in report.jobs}

    def test_admits_best_fill_within_window(self):
        # At t=10 the whole 16-GPU cluster frees up; "wide" fills 12/16
        # versus "narrow" 8/16 at equal remaining work, so look-ahead
        # admits it first even though "narrow" arrived earlier.
        starts = self.starts(run_jobs(self.JOBS, policy_by_name("lookahead")))
        assert starts["wide"] == pytest.approx(10.0)
        assert starts["narrow"] == pytest.approx(15.0)

    def test_fifo_admits_in_arrival_order(self):
        starts = self.starts(run_jobs(self.JOBS, policy_by_name("fifo")))
        assert starts["narrow"] == pytest.approx(10.0)
        assert starts["wide"] == pytest.approx(15.0)

    def test_k1_never_reaches_past_the_head(self):
        # A one-job window degenerates to arrival order: "wide" cannot be
        # scored while "narrow" heads the queue.
        starts = self.starts(run_jobs(self.JOBS, policy_by_name("lookahead", k=1)))
        assert starts["narrow"] == pytest.approx(10.0)
        assert starts["wide"] == pytest.approx(15.0)

    def test_score_shape(self):
        policy = LookaheadPolicy(k=3)
        assert policy.lookahead_score(self.JOBS[1], 4.0, fill=0.5) == pytest.approx(0.1)
        assert policy.lookahead_score(self.JOBS[1], float("inf"), fill=0.5) == 0.0
        # Tighter fill wins at equal remaining work.
        assert policy.lookahead_score(self.JOBS[2], 4.0, fill=0.75) > (
            policy.lookahead_score(self.JOBS[1], 4.0, fill=0.5)
        )


class TestOptimizerReallocation:
    def test_density_shape(self):
        policy = OptimizerPolicy(horizon_hours=8.0, stability_bonus=0.5)
        assert policy.utility_density(0.0, allocated=False) == pytest.approx(1.0)
        assert policy.utility_density(8.0, allocated=False) == pytest.approx(0.5)
        assert policy.utility_density(8.0, allocated=True) == pytest.approx(1.0)
        # Monotone decreasing in remaining work.
        assert policy.utility_density(24.0, allocated=False) < (
            policy.utility_density(8.0, allocated=False)
        )

    def test_stability_bonus_prevents_marginal_churn(self):
        # b is 1h shorter than a's remaining work: without the bonus the
        # LP would migrate, with it the running job is kept.
        report = run_jobs(
            [job("a", gpus=8, work=10.0), job("b", gpus=8, work=9.0, submit=1.0)],
            policy_by_name("optimizer"),
            n_nodes=2,
            days=40,
        )
        outcomes = {j.name: j for j in report.jobs}
        assert outcomes["a"].preemptions == 0
        assert outcomes["a"].completion_hour == pytest.approx(10.0)
        assert outcomes["b"].completion_hour == pytest.approx(19.0)

    def test_large_gain_preempts_despite_bonus(self):
        report = run_jobs(
            [job("a", gpus=8, work=100.0), job("b", gpus=8, work=1.0, submit=1.0)],
            policy_by_name("optimizer"),
            n_nodes=2,
            days=40,
        )
        outcomes = {j.name: j for j in report.jobs}
        assert outcomes["a"].preemptions == 1
        assert outcomes["b"].completion_hour == pytest.approx(2.0)
        assert report.all_finished


class TestGittinsNoStarvation:
    def test_promotion_rescues_demoted_job_from_short_stream(self):
        # A continuous 120h stream of 2h jobs would hold a demoted job off
        # the cluster forever without PROMOTE; with it the big job finishes
        # long before the stream drains, and earlier for lower starve
        # limits.
        stream = [job(f"s{i}", gpus=16, work=2.0, submit=2.0 * i) for i in range(60)]
        completions = []
        for starve_limit in (1.0, 2.0, 4.0):
            report = run_jobs(
                [job("big", gpus=16, work=10.0)] + stream,
                policy_by_name(
                    "gittins", threshold_gpu_hours=64.0, starve_limit=starve_limit
                ),
                days=60,
            )
            assert report.all_finished
            big = next(j for j in report.jobs if j.name == "big")
            assert big.completion_hour < 120.0
            completions.append(big.completion_hour)
        assert completions == sorted(completions)

    def test_finite_contended_workload_always_finishes(self):
        # No horizon: every job must complete on its own merits.
        jobs = [job("big", gpus=16, work=100.0)] + [
            job(f"s{i}", gpus=16, work=2.0, submit=5.0 * i) for i in range(20)
        ]
        report = run_jobs(
            jobs, policy_by_name("gittins", threshold_gpu_hours=64.0), days=60
        )
        assert report.all_finished


# --------------------------------------------------------------- properties
@st.composite
def fault_traces(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    duration_days = draw(st.integers(min_value=1, max_value=4))
    duration_hours = duration_days * 24.0
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        node = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        start = draw(st.floats(min_value=0.0, max_value=duration_hours, allow_nan=False))
        length = draw(st.floats(min_value=0.1, max_value=36.0, allow_nan=False))
        events.append(FaultEvent(node_id=node, start_hour=start, end_hour=start + length))
    return FaultTrace(
        n_nodes=n_nodes, duration_days=duration_days, events=events, gpus_per_node=4
    )


@st.composite
def workloads(draw, n_nodes):
    total = n_nodes * 4
    jobs = []
    for i in range(draw(st.integers(min_value=1, max_value=5))):
        tp = draw(st.sampled_from([1, 2, 4]))
        groups = draw(st.integers(min_value=1, max_value=max(1, total // tp)))
        jobs.append(
            JobSpec(
                name=f"j{i}",
                gpus=min(groups * tp, total // tp * tp),
                tp_size=tp,
                work_hours=draw(st.floats(min_value=0.5, max_value=48.0)),
                submit_hour=draw(st.floats(min_value=0.0, max_value=72.0)),
                checkpoint_interval_hours=draw(st.floats(min_value=0.25, max_value=4.0)),
                restart_overhead_hours=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return jobs


class TestNewPolicyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_time_buckets_partition_wall_clock(self, data):
        trace = data.draw(fault_traces())
        jobs = data.draw(workloads(trace.n_nodes))
        name = data.draw(st.sampled_from(NEW_POLICIES))
        placement = data.draw(st.sampled_from([None, "packed", "spread"]))
        horizon = trace.duration_hours * 3.0

        report = ClusterScheduler(
            BigSwitchHBD(4),
            trace.interval_timeline(),
            jobs,
            policy=policy_by_name(name),
            placement=placement,
            horizon_hours=horizon,
        ).run()

        for outcome in report.jobs:
            buckets = (
                outcome.productive_hours + outcome.waiting_hours + outcome.restart_hours
            )
            assert buckets == pytest.approx(outcome.wall_clock_hours, abs=1e-6), (
                f"{outcome.name}: {buckets} != wall clock {outcome.wall_clock_hours} "
                f"under {name} (placement={placement})"
            )
            if outcome.finished:
                assert outcome.productive_hours == pytest.approx(
                    outcome.work_hours, abs=1e-6
                )

    @pytest.mark.parametrize("name", NEW_POLICIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_report_json_byte_identical_across_fresh_runs(self, name, seed):
        trace = quiet_trace(n_nodes=6, days=10)
        jobs = generate_workload(
            WorkloadConfig(n_jobs=15, seed=seed, tp_size=4, max_gpus=16)
        )

        def one_run():
            report = ClusterScheduler(
                BigSwitchHBD(4),
                trace.interval_timeline(),
                jobs,
                policy=policy_by_name(name),
                horizon_hours=2000.0,
            ).run()
            return json.dumps(report.to_dict(), sort_keys=True)

        assert one_run() == one_run()

    @pytest.mark.parametrize("name", NEW_POLICIES)
    def test_reused_policy_instance_replays_identically(self, name):
        # reset() must clear any per-run state (gittins promotion
        # baselines): running the same engine twice with one policy object
        # must give byte-identical reports.
        trace = quiet_trace(n_nodes=6, days=10)
        jobs = generate_workload(
            WorkloadConfig(n_jobs=15, seed=3, tp_size=4, max_gpus=16)
        )
        if name == "gittins":
            policy = policy_by_name(name, threshold_gpu_hours=16.0)
        else:
            policy = policy_by_name(name)
        runs = [
            json.dumps(
                ClusterScheduler(
                    BigSwitchHBD(4),
                    trace.interval_timeline(),
                    jobs,
                    policy=policy,
                    horizon_hours=2000.0,
                )
                .run()
                .to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestSchedulerSpecKnobs:
    def test_default_dict_shape_is_stable(self):
        # Pre-existing specs must digest identically: knob fields only
        # appear in to_dict() when they differ from their defaults.
        assert sorted(SchedulerSpec().to_dict()) == [
            "backfill",
            "horizon_hours",
            "placement",
            "policy",
            "preemptive",
        ]
        assert sorted(SchedulerSpec(policy="gittins").to_dict()) == [
            "backfill",
            "horizon_hours",
            "placement",
            "policy",
            "preemptive",
        ]

    def test_non_default_knobs_round_trip(self):
        spec = SchedulerSpec(
            policy="gittins",
            gittins_threshold_gpu_hours=64.0,
            gittins_levels=4,
            gittins_starve_limit=2.0,
        )
        data = spec.to_dict()
        assert data["gittins_threshold_gpu_hours"] == 64.0
        assert SchedulerSpec.from_dict(data) == spec

    def test_build_routes_knobs(self):
        gittins = SchedulerSpec(
            policy="gittins", gittins_threshold_gpu_hours=64.0, gittins_levels=2
        ).build()
        assert isinstance(gittins, GittinsPolicy)
        assert gittins.threshold_gpu_hours == 64.0
        assert gittins.levels == 2
        assert gittins.preemptive  # policy default applies

        lookahead = SchedulerSpec(policy="lookahead", lookahead_k=2).build()
        assert isinstance(lookahead, LookaheadPolicy)
        assert lookahead.lookahead_k == 2
        assert not lookahead.preemptive

        optimizer = SchedulerSpec(
            policy="optimizer",
            optimizer_horizon_hours=4.0,
            optimizer_stability_bonus=0.25,
            preemptive=True,
        ).build()
        assert isinstance(optimizer, OptimizerPolicy)
        assert optimizer.horizon_hours == 4.0
        assert optimizer.stability_bonus == 0.25

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SchedulerSpec(gittins_threshold_gpu_hours=0.0)
        with pytest.raises(ValueError):
            SchedulerSpec(gittins_levels=0)
        with pytest.raises(ValueError):
            SchedulerSpec(lookahead_k=0)
        with pytest.raises(ValueError):
            SchedulerSpec(optimizer_horizon_hours=-1.0)
        with pytest.raises(ValueError):
            SchedulerSpec(optimizer_stability_bonus=-0.5)
